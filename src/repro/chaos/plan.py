"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a list of timed :class:`FaultEvent`\\ s that an
:class:`~repro.chaos.injector.Injector` replays deterministically
against a :class:`~repro.tsdb.ingest.TsdbCluster`'s simulator.  Plans
are plain frozen data — they can be built inline in a test, printed,
compared, and rerun bit-identically (the only randomness, overload
burst payloads and background crash schedules, derives from
``plan.seed``).

Supported actions
-----------------
``tsd_crash`` / ``tsd_restart``
    Kill / revive one TSD daemon by name (a crashed TSD swallows
    batches silently — no acks).
``rs_crash`` / ``rs_restart``
    Kill / revive one RegionServer by name (the master runs WAL-replay
    recovery, as on a real crash).
``partition`` / ``heal``
    Cut a host (``node.hostname``) off the network / restore it.
``slow_link`` / ``restore_link``
    Inflate latency on every link touching a host by ``factor``.
``overload_burst``
    Inject ``points`` synthetic data points through the cluster
    ingress, spread over ``duration`` seconds — the §III-B overload
    that exercises :class:`~repro.cluster.failures.OverflowCrashPolicy`.
``random_crashes``
    Arm a :class:`~repro.cluster.failures.RandomCrashInjector`
    (Poisson ``mtbf``/``mttr``) against one RegionServer for
    ``duration`` seconds.
``wal_lag`` / ``wal_lag_clear``
    Multiply the WAL-shipping delay out of one RegionServer by
    ``factor`` — follower replicas fed from it fall behind, widening
    timeline-read staleness bounds (degraded, not down).
``replica_stall`` / ``replica_resume``
    Freeze the follower apply loops hosted on one RegionServer — its
    replicas stop draining shipped entries entirely until resumed
    (degraded, not down).
``lifecycle_expire``
    Fire a full lifecycle maintenance pass (rollup advance + TTL
    expiry + tombstone purge) at an adversarial moment — e.g. between
    an ``rs_crash`` and its recovery — to probe the retention
    conservation invariant under partial availability.  Instantaneous;
    needs no target (the cluster's lifecycle manager is the target).

Events that model an outage (``tsd_crash``, ``rs_crash``,
``partition``, ``slow_link``, ``wal_lag``, ``replica_stall``) accept a
``duration``; the injector derives the matching recovery event
automatically.  Omitting it leaves the component down (or degraded)
for the rest of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

__all__ = ["FaultEvent", "FaultPlan", "ACTIONS", "RECOVERY_ACTIONS"]

#: Action -> the recovery action the injector schedules after ``duration``.
RECOVERY_ACTIONS = {
    "tsd_crash": "tsd_restart",
    "rs_crash": "rs_restart",
    "partition": "heal",
    "slow_link": "restore_link",
    "wal_lag": "wal_lag_clear",
    "replica_stall": "replica_resume",
}

ACTIONS = frozenset(RECOVERY_ACTIONS) | frozenset(RECOVERY_ACTIONS.values()) | {
    "overload_burst",
    "random_crashes",
    "lifecycle_expire",
}


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: *at* ``at`` sim-seconds, do ``action`` to ``target``.

    ``target`` is a component name (``tsd01``, ``rs02``) or hostname
    (``node00`` for ``partition``/``slow_link``).  ``duration`` turns
    an outage action into a bounded one (recovery is auto-scheduled).
    ``factor`` parameterises ``slow_link``; ``points``/``batch_size``
    parameterise ``overload_burst``; ``mtbf``/``mttr`` parameterise
    ``random_crashes``.
    """

    at: float
    action: str
    target: str
    duration: Optional[float] = None
    factor: float = 4.0
    points: int = 0
    batch_size: int = 100
    mtbf: float = 1.0
    mttr: float = 0.5

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("event time must be non-negative")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if not self.target and self.action not in ("overload_burst", "lifecycle_expire"):
            raise ValueError(f"action {self.action!r} needs a target")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.action in ("slow_link", "wal_lag") and self.factor < 1.0:
            raise ValueError(f"{self.action} factor must be >= 1")
        if self.action == "overload_burst" and self.points < 1:
            raise ValueError("overload_burst needs points >= 1")
        if self.action == "random_crashes":
            if self.duration is None:
                raise ValueError("random_crashes needs a duration")
            if self.mtbf <= 0 or self.mttr < 0:
                raise ValueError("mtbf must be positive and mttr non-negative")

    @property
    def recovery(self) -> Optional["FaultEvent"]:
        """The auto-derived recovery event, if this outage is bounded."""
        action = RECOVERY_ACTIONS.get(self.action)
        if action is None or self.duration is None:
            return None
        return FaultEvent(at=self.at + self.duration, action=action, target=self.target)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded set of fault events (frozen; safe to reuse)."""

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    name: str = "chaos-plan"

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def expanded(self) -> Tuple[FaultEvent, ...]:
        """All events including auto-derived recoveries, sorted by time.

        Ties are broken by position in the plan, so replays are
        deterministic regardless of how the plan was assembled.
        """
        out: List[Tuple[float, int, int, FaultEvent]] = []
        for i, event in enumerate(self.events):
            out.append((event.at, i, 0, event))
            rec = event.recovery
            if rec is not None:
                out.append((rec.at, i, 1, rec))
        out.sort(key=lambda item: (item[0], item[1], item[2]))
        return tuple(event for _, _, _, event in out)

    def horizon(self) -> float:
        """Time of the last event (including recoveries)."""
        expanded = self.expanded()
        return expanded[-1].at if expanded else 0.0

    def with_event(self, event: FaultEvent) -> "FaultPlan":
        """A copy of the plan with one more event appended."""
        return FaultPlan(events=self.events + (event,), seed=self.seed, name=self.name)
