"""Chaos-engineering harness for the simulated ingestion cluster.

Declarative, seeded fault plans (:mod:`repro.chaos.plan`) replayed
deterministically against a :class:`~repro.tsdb.ingest.TsdbCluster` by
an :class:`~repro.chaos.injector.Injector`, with per-run accounting in
a :class:`~repro.chaos.report.ChaosReport`.  See DESIGN.md ("Failure
model and delivery guarantees") for the fault taxonomy and the ingest
hardening it exercises.
"""

from .injector import Injector
from .plan import ACTIONS, FaultEvent, FaultPlan
from .report import ChaosReport, FiredEvent

__all__ = [
    "ACTIONS",
    "ChaosReport",
    "FaultEvent",
    "FaultPlan",
    "FiredEvent",
    "Injector",
]
