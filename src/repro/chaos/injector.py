"""Deterministic replay of a :class:`~repro.chaos.plan.FaultPlan`.

The :class:`Injector` binds a plan to a live
:class:`~repro.tsdb.ingest.TsdbCluster`: ``arm()`` validates every
target against the cluster's actual components, then schedules each
event (and each auto-derived recovery) on the cluster's simulator.
Everything the injector does is recorded in a per-run
:class:`~repro.chaos.report.ChaosReport` so tests can assert that the
faults genuinely fired and measure how long each component was down.

Replay is fully deterministic: event times come from the plan, and the
only random elements — overload-burst payload values and the
background :class:`~repro.cluster.failures.RandomCrashInjector`
schedule — are seeded from ``plan.seed`` and the event's position in
the plan.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..cluster.failures import RandomCrashInjector
from ..hbase.regionserver import RegionServer
from ..tsdb.ingest import TsdbCluster
from ..tsdb.tsd import DataPoint, TSDaemon
from .plan import FaultEvent, FaultPlan
from .report import ChaosReport

__all__ = ["Injector"]


class Injector:
    """Schedules a fault plan's events against one cluster's simulator."""

    def __init__(self, cluster: TsdbCluster, plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self.report = ChaosReport(plan_name=plan.name)
        self._tsds: Dict[str, TSDaemon] = {tsd.name: tsd for tsd in cluster.tsds}
        self._servers: Dict[str, RegionServer] = {rs.name: rs for rs in cluster.servers}
        self._hosts = {node.hostname for node in cluster.nodes}
        self._crash_injectors: List[RandomCrashInjector] = []
        self._armed = False
        self.burst_points_offered = 0

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self) -> ChaosReport:
        """Validate targets and schedule every (expanded) plan event.

        Events are scheduled relative to the current sim time; an event
        whose ``at`` is already in the past fires immediately.  Returns
        the (live) report for convenience.
        """
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        sim = self.cluster.sim
        for index, event in enumerate(self.plan.expanded()):
            self._validate(event)
            delay = max(0.0, event.at - sim.now)
            sim.schedule(delay, self._fire, event, index)
        return self.report

    def _validate(self, event: FaultEvent) -> None:
        if event.action in ("tsd_crash", "tsd_restart"):
            if event.target not in self._tsds:
                raise ValueError(f"unknown TSD {event.target!r}")
        elif event.action in ("rs_crash", "rs_restart", "random_crashes"):
            if event.target not in self._servers:
                raise ValueError(f"unknown RegionServer {event.target!r}")
        elif event.action in ("partition", "heal", "slow_link", "restore_link"):
            if event.target not in self._hosts:
                raise ValueError(f"unknown host {event.target!r}")
        elif event.action in ("wal_lag", "wal_lag_clear", "replica_stall", "replica_resume"):
            if event.target not in self._servers:
                raise ValueError(f"unknown RegionServer {event.target!r}")
            if self.cluster.replication is None:
                raise ValueError(
                    f"{event.action!r} needs a replicated cluster (replication_factor >= 2)"
                )
        elif event.action == "lifecycle_expire":
            if self.cluster.lifecycle is None:
                raise ValueError(
                    "'lifecycle_expire' needs a cluster with a lifecycle policy"
                )

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _fire(self, event: FaultEvent, index: int) -> None:
        now = self.cluster.sim.now
        action = event.action
        if action == "tsd_crash":
            self._tsds[event.target].crash()
            self.report.mark_down(event.target, now)
        elif action == "tsd_restart":
            self._tsds[event.target].restart()
            self.report.mark_up(event.target, now)
        elif action == "rs_crash":
            self._servers[event.target].crash()
            self.report.mark_down(event.target, now)
        elif action == "rs_restart":
            self._servers[event.target].restart()
            self.report.mark_up(event.target, now)
        elif action == "partition":
            self.cluster.network.partition(event.target)
            self.report.mark_down(event.target, now)
        elif action == "heal":
            self.cluster.network.heal(event.target)
            self.report.mark_up(event.target, now)
        elif action == "slow_link":
            # Degraded, not down: recorded as fired but not as downtime.
            self.cluster.network.slow_host(event.target, event.factor)
        elif action == "restore_link":
            self.cluster.network.restore_host(event.target)
        elif action == "wal_lag":
            # Degraded, not down: followers fall behind but stay readable.
            self.cluster.replication.set_ship_lag(event.target, event.factor)
        elif action == "wal_lag_clear":
            self.cluster.replication.clear_ship_lag(event.target)
        elif action == "replica_stall":
            self.cluster.replication.stall_followers(event.target)
        elif action == "replica_resume":
            self.cluster.replication.resume_followers(event.target)
        elif action == "lifecycle_expire":
            # Instantaneous: rollup advance + TTL expiry + purge, fired
            # mid-fault to probe the retention conservation invariant.
            self.cluster.lifecycle.run_maintenance(purge=True)
        elif action == "overload_burst":
            self._start_burst(event, index)
        elif action == "random_crashes":
            self._start_random_crashes(event, index)
        self.report.record(now, action, event.target)

    # ------------------------------------------------------------------
    # composite faults
    # ------------------------------------------------------------------
    def _start_burst(self, event: FaultEvent, index: int) -> None:
        """Inject ``event.points`` synthetic points through the ingress.

        Batches are spread evenly over ``event.duration`` (all at once
        when no duration is given); payload values derive from
        ``(plan.seed, index)`` so reruns are bit-identical.
        """
        rng = np.random.default_rng([self.plan.seed, index])
        n_batches = -(-event.points // event.batch_size)  # ceil
        interval = (event.duration / n_batches) if event.duration else 0.0
        remaining = event.points
        for j in range(n_batches):
            size = min(event.batch_size, remaining)
            remaining -= size
            batch = [
                DataPoint.make(
                    "chaos.burst",
                    1_000_000 + index * 1_000_000 + j * event.batch_size + k,
                    float(rng.standard_normal()),
                    {"burst": f"b{index:02d}"},
                )
                for k in range(size)
            ]
            self.cluster.sim.schedule(j * interval, self._submit_burst, batch)

    def _submit_burst(self, batch: List[DataPoint]) -> None:
        self.burst_points_offered += len(batch)
        # Fire-and-forget: burst points are load, not accounted payload.
        self.cluster.submit(batch, on_ack=None)

    def _start_random_crashes(self, event: FaultEvent, index: int) -> None:
        server = self._servers[event.target]
        target = event.target

        def crash() -> None:
            server.crash()
            self.report.mark_down(target, self.cluster.sim.now)
            self.report.record(self.cluster.sim.now, "rs_crash", target)

        def restart() -> None:
            server.restart()
            self.report.mark_up(target, self.cluster.sim.now)
            self.report.record(self.cluster.sim.now, "rs_restart", target)

        injector = RandomCrashInjector(
            self.cluster.sim,
            crash=crash,
            restart=restart,
            mtbf=event.mtbf,
            mttr=event.mttr,
            seed=self.plan.seed + index,
        )
        self._crash_injectors.append(injector)
        injector.arm()
        if event.duration is not None:
            self.cluster.sim.schedule(event.duration, injector.disarm)

    # ------------------------------------------------------------------
    def finalize(self) -> ChaosReport:
        """Disarm background injectors, close open outages, return the report."""
        for injector in self._crash_injectors:
            injector.disarm()
        self.report.close(self.cluster.sim.now)
        return self.report
