"""Per-run chaos accounting: what fired, and who was down for how long.

The :class:`~repro.chaos.injector.Injector` feeds a
:class:`ChaosReport` as its plan replays: every fault that actually
fires is recorded with its sim timestamp, and outage actions
open/close per-component downtime intervals.  After the run the report
answers the two questions a chaos experiment always asks — *did the
faults really happen?* and *how long was each component degraded?* —
so tests can assert on injected failure rather than hoping for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ChaosReport", "FiredEvent"]


@dataclass(frozen=True)
class FiredEvent:
    """One fault that actually fired during the run."""

    at: float
    action: str
    target: str


@dataclass
class ChaosReport:
    """Mutable per-run ledger of injected faults and component downtime."""

    plan_name: str = "chaos-plan"
    fired: List[FiredEvent] = field(default_factory=list)
    #: component -> closed downtime intervals [(down_at, up_at), ...]
    intervals: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: component -> time it went down, for outages still open
    _open: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording (called by the injector)
    # ------------------------------------------------------------------
    def record(self, at: float, action: str, target: str) -> None:
        self.fired.append(FiredEvent(at, action, target))

    def mark_down(self, component: str, at: float) -> None:
        """Open a downtime interval (idempotent while already down)."""
        self._open.setdefault(component, at)

    def mark_up(self, component: str, at: float) -> None:
        """Close the open downtime interval, if any."""
        down_at = self._open.pop(component, None)
        if down_at is None:
            return
        self.intervals.setdefault(component, []).append((down_at, at))

    def close(self, now: float) -> None:
        """Close every still-open outage at ``now`` (end-of-run sweep)."""
        for component in list(self._open):
            self.mark_up(component, now)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def events_fired(self, action: Optional[str] = None) -> int:
        if action is None:
            return len(self.fired)
        return sum(1 for event in self.fired if event.action == action)

    def downtime(self, component: str, now: Optional[float] = None) -> float:
        """Total downtime for one component, in sim-seconds.

        An outage still open is counted up to ``now`` when given
        (without mutating the report).
        """
        total = sum(up - down for down, up in self.intervals.get(component, []))
        if now is not None and component in self._open:
            total += max(0.0, now - self._open[component])
        return total

    def total_downtime(self, now: Optional[float] = None) -> float:
        components = set(self.intervals) | set(self._open)
        return sum(self.downtime(component, now) for component in components)

    def still_down(self) -> Tuple[str, ...]:
        return tuple(sorted(self._open))

    def edges(self, now: Optional[float] = None) -> List[Tuple[float, str, int]]:
        """Downtime windows as ``(time, component, state)`` transitions.

        ``state`` is 1 at a down edge and 0 at the matching up edge —
        the 0/1 square-wave shape the self-telemetry write-back stores
        as ``chaos.down`` so fault windows overlay on platform metrics.
        Still-open outages contribute their down edge (and, when ``now``
        is given, a trailing still-down sample at ``now``) without
        mutating the report.  Sorted by time.
        """
        out: List[Tuple[float, str, int]] = []
        for component, windows in self.intervals.items():
            for down_at, up_at in windows:
                out.append((down_at, component, 1))
                out.append((up_at, component, 0))
        for component, down_at in self._open.items():
            out.append((down_at, component, 1))
            if now is not None and now > down_at:
                out.append((now, component, 1))
        out.sort()
        return out

    def summary(self) -> str:
        """Human-readable per-run digest (one line per component)."""
        lines = [f"chaos plan {self.plan_name!r}: {len(self.fired)} events fired"]
        for event in self.fired:
            lines.append(f"  t={event.at:8.3f}s  {event.action:<14} {event.target}")
        components = sorted(set(self.intervals) | set(self._open))
        if components:
            lines.append("downtime:")
            for component in components:
                open_note = "  (still down)" if component in self._open else ""
                lines.append(
                    f"  {component:<10} {self.downtime(component):8.3f}s{open_note}"
                )
        return "\n".join(lines)
