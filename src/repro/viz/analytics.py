"""Real-time fleet analytics over the TSDB.

"Analytics summarize global system status across a large deployment of
power-generating assets.  By selectively surfacing the most concerning
anomalies, we allow users to focus only on what is important." (§V)

Everything here is computed from TSDB queries — the same store the
ingestion pipeline writes — so the dashboard is a pure read-side
consumer, as in the paper's architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pipeline import ANOMALY_METRIC, UNIT_ALARM_METRIC
from ..simdata.workload import METRIC, unit_tag
from ..tsdb.aggregation import Series
from ..tsdb.query import QueryEngine, TsdbQuery
from .statusbar import HealthGrade, UnitStatus, grade_unit

__all__ = ["FleetAnalytics", "SensorActivity", "FleetSummary"]


@dataclass
class SensorActivity:
    """Anomaly activity on one sensor of one unit."""

    sensor: str
    anomaly_count: int
    last_anomaly_time: int
    peak_score: float


@dataclass
class FleetSummary:
    """Global numbers for the overview header."""

    n_units: int
    total_anomalies: int
    units_with_anomalies: int
    units_critical: int
    worst_unit: Optional[int]


class FleetAnalytics:
    """Computes unit statuses and anomaly rankings from TSDB queries."""

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine

    # ------------------------------------------------------------------
    def anomaly_series(self, unit_id: int, start: int, end: int) -> List[Series]:
        """Per-sensor anomaly event series for one unit."""
        return self.engine.run(
            TsdbQuery(
                metric=ANOMALY_METRIC,
                start=start,
                end=end,
                tag_filters={"unit": unit_tag(unit_id)},
                group_by=("sensor",),
                aggregator="max",
            )
        )

    def sensor_series(self, unit_id: int, start: int, end: int) -> List[Series]:
        """Per-sensor raw data series for one unit."""
        return self.engine.run(
            TsdbQuery(
                metric=METRIC,
                start=start,
                end=end,
                tag_filters={"unit": unit_tag(unit_id)},
                group_by=("sensor",),
                aggregator="avg",
            )
        )

    def unit_alarm_times(self, unit_id: int, start: int, end: int) -> np.ndarray:
        series = self.engine.run(
            TsdbQuery(
                metric=UNIT_ALARM_METRIC,
                start=start,
                end=end,
                tag_filters={"unit": unit_tag(unit_id)},
                aggregator="max",
            )
        )
        if not series:
            return np.empty(0, dtype=np.int64)
        return series[0].timestamps

    # ------------------------------------------------------------------
    @staticmethod
    def unit_status_from(
        unit_id: int, anomalies: Sequence[Series], alarms: np.ndarray
    ) -> UnitStatus:
        """Roll a unit's status up from already-fetched query results.

        The dashboard fetches each unit's anomaly series once and feeds
        the same result to the status roll-up, the trend sparkline and
        the top-sensor ranking — one engine call per unit instead of
        one per consumer.
        """
        count = int(sum(len(s) for s in anomalies))
        sensors = len([s for s in anomalies if len(s)])
        return UnitStatus(
            unit_id=unit_id,
            grade=grade_unit(count, sensors, int(len(alarms))),
            anomaly_count=count,
            sensors_affected=sensors,
            unit_alarms=int(len(alarms)),
        )

    def unit_status(self, unit_id: int, start: int, end: int) -> UnitStatus:
        status, _ = self.unit_overview(unit_id, start, end)
        return status

    def unit_overview(
        self, unit_id: int, start: int, end: int
    ) -> Tuple[UnitStatus, List[Series]]:
        """Status roll-up plus the per-sensor anomaly series behind it."""
        anomalies = self.anomaly_series(unit_id, start, end)
        alarms = self.unit_alarm_times(unit_id, start, end)
        return self.unit_status_from(unit_id, anomalies, alarms), anomalies

    def fleet_statuses(
        self, unit_ids: Sequence[int], start: int, end: int
    ) -> List[UnitStatus]:
        return [status for status, _ in self.fleet_overview(unit_ids, start, end)]

    def fleet_overview(
        self, unit_ids: Sequence[int], start: int, end: int
    ) -> List[Tuple[UnitStatus, List[Series]]]:
        """Per-unit ``(status, anomaly_series)`` with one anomaly query each."""
        return [self.unit_overview(u, start, end) for u in unit_ids]

    def summary(self, statuses: Sequence[UnitStatus]) -> FleetSummary:
        with_anoms = [s for s in statuses if s.anomaly_count > 0]
        worst = max(statuses, key=lambda s: s.anomaly_count, default=None)
        return FleetSummary(
            n_units=len(statuses),
            total_anomalies=sum(s.anomaly_count for s in statuses),
            units_with_anomalies=len(with_anoms),
            units_critical=sum(1 for s in statuses if s.grade is HealthGrade.CRITICAL),
            worst_unit=worst.unit_id if worst and worst.anomaly_count else None,
        )

    # ------------------------------------------------------------------
    def top_sensors(
        self, unit_id: int, start: int, end: int, k: int = 8
    ) -> List[SensorActivity]:
        """The unit's most anomalous sensors, by flag count then severity."""
        return self.top_sensors_from(self.anomaly_series(unit_id, start, end), k)

    @staticmethod
    def top_sensors_from(
        anomalies: Sequence[Series], k: int = 8
    ) -> List[SensorActivity]:
        """Rank sensors from an already-fetched anomaly result set."""
        activities: List[SensorActivity] = []
        for series in anomalies:
            if not len(series):
                continue
            sensor = series.tag_dict.get("sensor", "?")
            activities.append(
                SensorActivity(
                    sensor=sensor,
                    anomaly_count=len(series),
                    last_anomaly_time=int(series.timestamps[-1]),
                    peak_score=float(np.max(np.abs(series.values))),
                )
            )
        activities.sort(key=lambda a: (-a.anomaly_count, -a.peak_score))
        return activities[:k]
