"""Visualization: the static web control centre (Figure 3).

SVG sparklines with anomaly annotations, fleet/unit status bars,
TSDB-backed analytics, and the dashboard builder producing
self-contained HTML for desktop and mobile browsers.
"""

from .analytics import FleetAnalytics, FleetSummary, SensorActivity
from .dashboard import Dashboard, DashboardConfig
from .figures import render_stability_figure, render_throughput_figure
from .sparkline import SparklineStyle, render_detail_chart, render_sparkline
from .statusbar import (
    HealthGrade,
    UnitStatus,
    grade_counts,
    grade_unit,
    render_status_bar,
)
from .svg import Svg, path_from_points, polyline_points

__all__ = [
    "Dashboard",
    "DashboardConfig",
    "FleetAnalytics",
    "FleetSummary",
    "HealthGrade",
    "SensorActivity",
    "SparklineStyle",
    "Svg",
    "UnitStatus",
    "grade_counts",
    "grade_unit",
    "path_from_points",
    "polyline_points",
    "render_detail_chart",
    "render_sparkline",
    "render_stability_figure",
    "render_status_bar",
    "render_throughput_figure",
]
