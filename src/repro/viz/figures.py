"""Paper-figure rendering: regenerate Figure 2 as SVG charts.

The evaluation harness produces :class:`~repro.tsdb.ingest.IngestionReport`
objects; this module turns them into the two panels of the paper's
Figure 2 — (left) throughput vs node count with per-point labels,
(right) cumulative samples-ingested vs time, one line per cluster
configuration — as self-contained SVG files that drop into the
dashboard or any browser.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tsdb.ingest import IngestionReport
from .sparkline import GRID_COLOR, LINE_COLOR, TEXT_COLOR
from .svg import Svg, path_from_points

__all__ = ["render_throughput_figure", "render_stability_figure"]

SERIES_COLORS = ["#4878a8", "#e1812c", "#3a923a", "#c03d3e", "#9372b2", "#7f7f7f"]


class _Axes:
    """Shared scaffolding: padded plot area, linear scales, ticks."""

    def __init__(
        self,
        width: int,
        height: int,
        x_range: Tuple[float, float],
        y_range: Tuple[float, float],
        pad_left: int = 64,
        pad_right: int = 16,
        pad_top: int = 28,
        pad_bottom: int = 40,
    ) -> None:
        self.svg = Svg(width, height)
        self.width, self.height = width, height
        self.pad_left, self.pad_right = pad_left, pad_right
        self.pad_top, self.pad_bottom = pad_top, pad_bottom
        self.plot_w = width - pad_left - pad_right
        self.plot_h = height - pad_top - pad_bottom
        x_lo, x_hi = x_range
        y_lo, y_hi = y_range
        if x_hi <= x_lo or y_hi <= y_lo:
            raise ValueError("axis ranges must be non-degenerate")
        self.x_lo, self.x_hi = x_lo, x_hi
        self.y_lo, self.y_hi = y_lo, y_hi

    def sx(self, x: float) -> float:
        return self.pad_left + (x - self.x_lo) / (self.x_hi - self.x_lo) * self.plot_w

    def sy(self, y: float) -> float:
        return self.pad_top + (self.y_hi - y) / (self.y_hi - self.y_lo) * self.plot_h

    def title(self, text: str) -> None:
        self.svg.text(self.pad_left, 16, text, fill=TEXT_COLOR,
                      font_size=13, font_weight="bold")

    def x_label(self, text: str) -> None:
        self.svg.text(self.pad_left + self.plot_w / 2, self.height - 8, text,
                      fill=TEXT_COLOR, font_size=11, text_anchor="middle")

    def y_ticks(self, ticks: Sequence[float], fmt=lambda v: f"{v:g}") -> None:
        for tick in ticks:
            y = self.sy(tick)
            self.svg.line(self.pad_left, y, self.pad_left + self.plot_w, y,
                          stroke=GRID_COLOR, stroke_width=0.6)
            self.svg.text(self.pad_left - 6, y + 3.5, fmt(tick), fill=TEXT_COLOR,
                          font_size=10, text_anchor="end")

    def x_ticks(self, ticks: Sequence[float], fmt=lambda v: f"{v:g}") -> None:
        for tick in ticks:
            x = self.sx(tick)
            self.svg.line(x, self.pad_top + self.plot_h, x,
                          self.pad_top + self.plot_h + 4, stroke=TEXT_COLOR,
                          stroke_width=0.8)
            self.svg.text(x, self.pad_top + self.plot_h + 16, fmt(tick),
                          fill=TEXT_COLOR, font_size=10, text_anchor="middle")

    def frame(self) -> None:
        self.svg.rect(self.pad_left, self.pad_top, self.plot_w, self.plot_h,
                      fill="none", stroke=TEXT_COLOR, stroke_width=0.8)


def render_throughput_figure(
    reports: Sequence[IngestionReport],
    paper_points: Optional[Dict[int, float]] = None,
    width: int = 640,
    height: int = 400,
) -> str:
    """Figure 2 (left): throughput vs number of nodes.

    Measured points are drawn as a labelled line; the paper's published
    points (if given) overlay as hollow markers for direct comparison.
    """
    if not reports:
        raise ValueError("need at least one report")
    nodes = [r.n_nodes for r in reports]
    rates = [r.throughput for r in reports]
    all_rates = rates + (list(paper_points.values()) if paper_points else [])
    axes = _Axes(
        width, height,
        x_range=(0, max(nodes) * 1.1),
        y_range=(0, max(all_rates) * 1.15),
    )
    axes.title("Ingestion throughput vs cluster size (Figure 2, left)")
    axes.x_label("# of nodes")
    max_rate = max(all_rates)
    step = 50_000 if max_rate > 150_000 else 10_000
    axes.y_ticks(np.arange(0, max_rate * 1.15, step),
                 fmt=lambda v: f"{v/1000:.0f}k")
    axes.x_ticks(sorted(set(nodes)))
    axes.frame()

    if paper_points:
        for n, rate in sorted(paper_points.items()):
            axes.svg.circle(axes.sx(n), axes.sy(rate), 4.5, fill="white",
                            stroke="#c03d3e", stroke_width=1.5)
        axes.svg.text(axes.pad_left + 10, axes.pad_top + 14,
                      "○ paper  ● measured", fill=TEXT_COLOR, font_size=10)

    points = [(axes.sx(n), axes.sy(r)) for n, r in zip(nodes, rates)]
    axes.svg.path(path_from_points(points), fill="none", stroke=LINE_COLOR,
                  stroke_width=1.8)
    for (x, y), rate, n in zip(points, rates, nodes):
        axes.svg.circle(x, y, 3.5, fill=LINE_COLOR)
        axes.svg.text(x, y - 9, f"{rate/1000:.0f}k", fill=TEXT_COLOR,
                      font_size=10, text_anchor="middle")
    return axes.svg.to_string("figure-throughput")


def render_stability_figure(
    reports: Sequence[IngestionReport],
    step: float = 0.25,
    width: int = 640,
    height: int = 400,
) -> str:
    """Figure 2 (right): cumulative samples ingested vs duration.

    One line per cluster configuration, labelled at the line's end —
    straight lines of differing slope, as in the paper.
    """
    if not reports:
        raise ValueError("need at least one report")
    curves: List[Tuple[int, List[Tuple[float, float]]]] = []
    max_t = max_v = 0.0
    for report in reports:
        resampled = report.timeline.resample(step)
        if not resampled:
            continue
        curves.append((report.n_nodes, resampled))
        max_t = max(max_t, resampled[-1][0])
        max_v = max(max_v, resampled[-1][1])
    if not curves or max_v <= 0:
        raise ValueError("reports carry no timeline data")
    axes = _Axes(width, height, x_range=(0, max_t * 1.12), y_range=(0, max_v * 1.1))
    axes.title("Samples ingested vs ingestion duration (Figure 2, right)")
    axes.x_label("ingestion duration (sim s)")
    axes.y_ticks(np.linspace(0, max_v, 5), fmt=lambda v: f"{v/1e6:.2f}M")
    axes.x_ticks(np.arange(0, max_t + step, max(step * 2, max_t / 6)),
                 fmt=lambda v: f"{v:.1f}")
    axes.frame()

    for i, (n_nodes, samples) in enumerate(sorted(curves, key=lambda c: c[0])):
        color = SERIES_COLORS[i % len(SERIES_COLORS)]
        pts = [(axes.sx(t), axes.sy(v)) for t, v in samples]
        axes.svg.path(path_from_points(pts), fill="none", stroke=color,
                      stroke_width=1.8)
        end_x, end_y = pts[-1]
        axes.svg.text(min(end_x + 4, width - 4), end_y + 3, f"{n_nodes} nodes",
                      fill=color, font_size=10)
    return axes.svg.to_string("figure-stability")
