"""Fleet/unit status summarisation.

"Unit status is summarized neatly into a single status bar as seen at
the top of Figure 3."  A unit's health grade is derived from its recent
anomaly activity; the fleet status bar shows the grade mix as coloured
segments.
"""

from __future__ import annotations

import enum
import html
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .svg import Svg

__all__ = ["HealthGrade", "UnitStatus", "grade_unit", "render_status_bar"]


class HealthGrade(enum.Enum):
    """Traffic-light health grade of a unit (drives status-bar colours)."""

    OK = "ok"
    WARNING = "warning"
    CRITICAL = "critical"

    @property
    def color(self) -> str:
        return {
            HealthGrade.OK: "#2da44e",
            HealthGrade.WARNING: "#d4a72c",
            HealthGrade.CRITICAL: "#cf222e",
        }[self]


@dataclass
class UnitStatus:
    """Health summary for one unit over the displayed window."""

    unit_id: int
    grade: HealthGrade
    anomaly_count: int
    sensors_affected: int
    unit_alarms: int

    @property
    def label(self) -> str:
        return f"unit{self.unit_id:03d}"


def grade_unit(
    anomaly_count: int,
    sensors_affected: int,
    unit_alarms: int,
    warning_threshold: int = 1,
    critical_threshold: int = 25,
) -> HealthGrade:
    """Grade from anomaly activity.

    CRITICAL when the unit-level T² alarm fired or per-sensor flags are
    heavy; WARNING on any flag; OK otherwise.  Thresholds are in flag
    counts over the displayed window.
    """
    if unit_alarms > 0 or anomaly_count >= critical_threshold:
        return HealthGrade.CRITICAL
    if anomaly_count >= warning_threshold or sensors_affected > 0:
        return HealthGrade.WARNING
    return HealthGrade.OK


def render_status_bar(
    statuses: Sequence[UnitStatus], width: int = 960, height: int = 26
) -> str:
    """The fleet status strip: one segment per unit, coloured by grade.

    Hovering a segment names the unit and its anomaly count.
    """
    svg = Svg(width, height)
    n = len(statuses)
    if n == 0:
        svg.text(width / 2, height / 2 + 4, "no units", fill="#57606a",
                 font_size=11, text_anchor="middle")
        return svg.to_string("status-bar")
    seg_w = width / n
    for i, status in enumerate(statuses):
        tooltip = (
            f"{status.label}: {status.grade.value}, "
            f"{status.anomaly_count} anomalies on {status.sensors_affected} sensors"
        )
        svg.raw(
            f'<g><title>{html.escape(tooltip)}</title>'
            f'<rect x="{i * seg_w:.2f}" y="0" width="{max(seg_w - 1, 1):.2f}" '
            f'height="{height}" fill="{status.grade.color}" rx="2"/></g>'
        )
    return svg.to_string("status-bar")


def grade_counts(statuses: Sequence[UnitStatus]) -> Dict[HealthGrade, int]:
    """How many units hold each grade."""
    out: Dict[HealthGrade, int] = {g: 0 for g in HealthGrade}
    for status in statuses:
        out[status.grade] += 1
    return out
