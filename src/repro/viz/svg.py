"""Minimal SVG document builder.

The visualization tool renders to self-contained HTML with inline SVG —
no JavaScript frameworks, no external assets — so a dashboard file
opens anywhere (including the mobile browsers §V targets).  This module
is the drawing primitive layer: elements are built as escaped strings
with numeric attributes rounded to keep files compact.
"""

from __future__ import annotations

import html
from typing import Iterable, List, Sequence, Tuple

__all__ = ["Svg", "polyline_points", "path_from_points"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


def _attrs(kwargs: dict) -> str:
    parts = []
    for key, value in kwargs.items():
        name = key.rstrip("_").replace("_", "-")
        parts.append(f'{name}="{html.escape(_fmt(value), quote=True)}"')
    return " ".join(parts)


class Svg:
    """An SVG fragment of fixed size, composed of stacked elements."""

    def __init__(self, width: float, height: float, view_box: str | None = None) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("SVG dimensions must be positive")
        self.width = width
        self.height = height
        self.view_box = view_box or f"0 0 {_fmt(width)} {_fmt(height)}"
        self._elements: List[str] = []

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def rect(self, x: float, y: float, w: float, h: float, **kwargs) -> "Svg":
        self._elements.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" height="{_fmt(h)}" '
            f"{_attrs(kwargs)}/>"
        )
        return self

    def line(self, x1: float, y1: float, x2: float, y2: float, **kwargs) -> "Svg":
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" y2="{_fmt(y2)}" '
            f"{_attrs(kwargs)}/>"
        )
        return self

    def circle(self, cx: float, cy: float, r: float, **kwargs) -> "Svg":
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" {_attrs(kwargs)}/>'
        )
        return self

    def polyline(self, points: Sequence[Tuple[float, float]], **kwargs) -> "Svg":
        self._elements.append(
            f'<polyline points="{polyline_points(points)}" {_attrs(kwargs)}/>'
        )
        return self

    def path(self, d: str, **kwargs) -> "Svg":
        self._elements.append(f'<path d="{html.escape(d, quote=True)}" {_attrs(kwargs)}/>')
        return self

    def text(self, x: float, y: float, content: str, **kwargs) -> "Svg":
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" {_attrs(kwargs)}>'
            f"{html.escape(content)}</text>"
        )
        return self

    def title(self, content: str) -> "Svg":
        """Accessible hover tooltip for the whole fragment."""
        self._elements.append(f"<title>{html.escape(content)}</title>")
        return self

    def raw(self, fragment: str) -> "Svg":
        """Append a pre-built SVG fragment (caller responsible for escaping)."""
        self._elements.append(fragment)
        return self

    # ------------------------------------------------------------------
    def to_string(self, css_class: str | None = None) -> str:
        cls = f' class="{html.escape(css_class, quote=True)}"' if css_class else ""
        body = "".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_fmt(self.width)}" '
            f'height="{_fmt(self.height)}" viewBox="{self.view_box}"{cls}>{body}</svg>'
        )


def polyline_points(points: Iterable[Tuple[float, float]]) -> str:
    """Format an (x, y) sequence for a ``points`` attribute."""
    return " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)


def path_from_points(points: Sequence[Tuple[float, float]]) -> str:
    """A move-then-line path through the points (empty string if < 2)."""
    if len(points) < 2:
        return ""
    head = points[0]
    segments = [f"M {_fmt(head[0])} {_fmt(head[1])}"]
    segments.extend(f"L {_fmt(x)} {_fmt(y)}" for x, y in points[1:])
    return " ".join(segments)
