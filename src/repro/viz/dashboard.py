"""Dashboard generation: the Figure 3 web application, statically.

Produces a self-contained HTML control centre:

* **fleet overview** (``index.html``) — global analytics header, the
  fleet status bar, and a per-unit table linking to machine pages;
* **machine pages** (``machine-XXX.html``) — Figure 3's layout: the
  unit status strip on top, a grid of per-sensor sparklines with
  anomalies flagged in red in the centre, and drill-down detail charts
  (control band, axes, severity) for the most anomalous sensors at the
  bottom.

Everything is read back from the TSDB through
:class:`~repro.viz.analytics.FleetAnalytics`; the builder never touches
the generator's ground truth.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..tsdb.query import QueryEngine, TsdbQuery
from .analytics import FleetAnalytics, SensorActivity
from .sparkline import SparklineStyle, render_detail_chart, render_sparkline
from .statusbar import HealthGrade, UnitStatus, grade_counts, render_status_bar

__all__ = ["DashboardConfig", "Dashboard"]

#: Metric-name prefixes that identify SelfReporter write-back series
#: (one per telemetry routing namespace, plus the chaos edge series).
_SELF_METRIC_PREFIXES = (
    "proxy.",
    "tsd.",
    "client.",
    "regionserver.",
    "rpc.",
    "cells.",
    "engine.",
    "pipeline.",
    "publish.",
    "chaos.",
    "serve.",
    "master.",
    "replication.",
    # Server-level load metrics land in the unrouted "cluster" tree but
    # are written back by SelfReporter like every other namespace; the
    # platform panel silently dropped them until telemetry-drift
    # (repro.analysis cross rule) flagged the missing prefix.
    "server.",
    "alerting.",
    "lifecycle.",
)

#: Incident-history series the alerting tier writes back into the TSDB
#: (``alert.incident`` opens, ``alert.resolve`` closes).  These ride
#: the data timeline, not the simulator clock, and get their own panel.
_ALERT_METRIC_PREFIXES = ("alert.",)

#: Self-telemetry timestamps run on the simulator clock, not the data
#: timeline, so the platform panel scans the whole axis by default.
_SELF_METRIC_HORIZON = 2**31 - 1

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 0; background: #f6f8fa; color: #1f2328; }
header { background: #24292f; color: #fff; padding: 14px 24px; }
header h1 { margin: 0; font-size: 18px; font-weight: 600; }
header .sub { color: #8b949e; font-size: 12px; margin-top: 2px; }
main { max-width: 1040px; margin: 0 auto; padding: 18px 24px 48px; }
.panel { background: #fff; border: 1px solid #d0d7de; border-radius: 6px;
         padding: 16px; margin-bottom: 18px; }
.panel h2 { margin: 0 0 10px; font-size: 14px; font-weight: 600; color: #57606a;
            text-transform: uppercase; letter-spacing: .04em; }
.kpis { display: flex; gap: 28px; flex-wrap: wrap; }
.kpi .num { font-size: 26px; font-weight: 700; }
.kpi .lbl { font-size: 11px; color: #57606a; text-transform: uppercase; }
.kpi.crit .num { color: #cf222e; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: 6px 10px; border-bottom: 1px solid #e6e9ec; }
th { color: #57606a; font-weight: 600; }
tr:hover { background: #f0f4f8; }
.grade { display: inline-block; padding: 1px 8px; border-radius: 10px;
         font-size: 11px; color: #fff; }
.grid { display: flex; flex-wrap: wrap; gap: 10px; }
.cell { border: 1px solid #e6e9ec; border-radius: 4px; padding: 6px 8px;
        background: #fff; }
.cell .name { font-size: 11px; color: #57606a; margin-bottom: 2px; }
.cell.flagged { border-color: #d62728; }
.cell.flagged .name { color: #d62728; font-weight: 600; }
a { color: #0969da; text-decoration: none; }
a:hover { text-decoration: underline; }
.detail { margin-bottom: 14px; }
.meta { font-size: 12px; color: #57606a; margin: 4px 0 10px; }
"""


@dataclass
class DashboardConfig:
    """Rendering knobs."""

    title: str = "Power Asset Monitor"
    max_sparklines: int = 60  # sensors shown in the machine-page grid
    max_details: int = 4  # drill-down charts per machine page
    sparkline_style: SparklineStyle = SparklineStyle()
    show_platform_health: bool = True  # self-telemetry panel on the index
    max_health_rows: int = 40  # (metric, host) rows in that panel
    show_incidents: bool = True  # alert-history panel on the index
    max_incident_rows: int = 30  # incident rows in that panel


class Dashboard:
    """Builds the static dashboard from a TSDB query engine.

    ``engine`` may equally be a
    :class:`~repro.serve.gateway.QueryGateway` — it exposes the same
    ``run``/``uids`` surface — so the control centre renders through
    the serving tier (cached, admission-controlled) instead of raw
    storage scans.
    """

    def __init__(self, engine: QueryEngine, config: Optional[DashboardConfig] = None) -> None:
        self.engine = engine
        self.analytics = FleetAnalytics(engine)
        self.config = config if config is not None else DashboardConfig()

    # ------------------------------------------------------------------
    # page assembly
    # ------------------------------------------------------------------
    def _page(self, title: str, subtitle: str, body: str) -> str:
        return (
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<meta name='viewport' content='width=device-width, initial-scale=1'>"
            f"<title>{html.escape(title)}</title><style>{_CSS}</style></head>"
            f"<body><header><h1>{html.escape(title)}</h1>"
            f"<div class='sub'>{html.escape(subtitle)}</div></header>"
            f"<main>{body}</main></body></html>"
        )

    def fleet_overview_html(
        self, unit_ids: Sequence[int], start: int, end: int
    ) -> str:
        """The index page: KPIs, status bar, unit table.

        Each unit's anomaly series is fetched **once** and shared by the
        status roll-up and the trend sparkline (previously two identical
        engine calls per unit).
        """
        overview = self.analytics.fleet_overview(unit_ids, start, end)
        statuses = [status for status, _ in overview]
        summary = self.analytics.summary(statuses)
        counts = grade_counts(statuses)
        kpis = (
            "<div class='kpis'>"
            f"<div class='kpi'><div class='num'>{summary.n_units}</div>"
            "<div class='lbl'>units</div></div>"
            f"<div class='kpi'><div class='num'>{summary.total_anomalies}</div>"
            "<div class='lbl'>anomalies</div></div>"
            f"<div class='kpi'><div class='num'>{summary.units_with_anomalies}</div>"
            "<div class='lbl'>units flagged</div></div>"
            f"<div class='kpi crit'><div class='num'>{summary.units_critical}</div>"
            "<div class='lbl'>critical</div></div>"
            "</div>"
        )
        rows = []
        for status, anomalies in overview:
            grade = status.grade
            trend = self._anomaly_trend_sparkline(status.unit_id, anomalies)
            rows.append(
                "<tr>"
                f"<td><a href='machine-{status.unit_id:03d}.html'>{status.label}</a></td>"
                f"<td><span class='grade' style='background:{grade.color}'>"
                f"{grade.value}</span></td>"
                f"<td>{status.anomaly_count}</td>"
                f"<td>{status.sensors_affected}</td>"
                f"<td>{status.unit_alarms}</td>"
                f"<td>{trend}</td>"
                "</tr>"
            )
        body = (
            f"<div class='panel'><h2>Global analytics</h2>{kpis}</div>"
            "<div class='panel'><h2>Fleet status</h2>"
            f"{render_status_bar(statuses)}"
            f"<div class='meta'>ok: {counts[HealthGrade.OK]} &middot; "
            f"warning: {counts[HealthGrade.WARNING]} &middot; "
            f"critical: {counts[HealthGrade.CRITICAL]}</div></div>"
            "<div class='panel'><h2>Units</h2><table>"
            "<tr><th>unit</th><th>status</th><th>anomalies</th>"
            "<th>sensors affected</th><th>unit alarms</th><th>trend</th></tr>"
            f"{''.join(rows)}</table></div>"
        )
        if self.config.show_incidents:
            body += self.incidents_html()
        if self.config.show_platform_health:
            body += self.platform_health_html()
        return self._page(
            self.config.title, f"fleet overview · t ∈ [{start}, {end})", body
        )

    def incidents_html(self, start: int = 0, end: Optional[int] = None) -> str:
        """The incident panel: alert history read back from the TSDB.

        Discovers the ``alert.*`` series the alerting tier persisted
        (``alert.incident`` value = peak severity score at open,
        ``alert.resolve`` value = duration) and renders one row per
        incident event, newest first, tagged with scope / severity /
        unit.  Returns an empty string when no alert series exist, so
        deployments without the alerting tier render unchanged.
        """
        horizon = _SELF_METRIC_HORIZON if end is None else end
        names = sorted(
            name
            for name in self.engine.uids.names("metric")
            if name.startswith(_ALERT_METRIC_PREFIXES)
        )
        events: List[tuple] = []
        for name in names:
            # Incident history rides the data timeline but must show
            # every open incident regardless of panel window; the open
            # horizon is the point of the panel, not an oversight.
            query = TsdbQuery(  # repro-lint: ignore[unbounded-time-range]
                metric=name,
                start=start,
                end=horizon,
                group_by=("scope", "severity", "unit"),
            )
            for series in self.engine.run(query):
                tags = series.tag_dict
                for t, v in zip(series.timestamps, series.values):
                    events.append(
                        (
                            int(t),
                            name,
                            tags.get("scope", "?"),
                            tags.get("severity", "?"),
                            tags.get("unit", "?"),
                            float(v),
                        )
                    )
        if not events:
            return ""
        events.sort(key=lambda e: (-e[0], e[1]))
        shown = events[: self.config.max_incident_rows]
        rows = []
        for t, name, scope, severity, unit, value in shown:
            kind = "resolved" if name == "alert.resolve" else "opened"
            what = f"duration {value:.0f}s" if kind == "resolved" else f"peak |z| {value:.1f}"
            colour = {"critical": "#cf222e", "warning": "#bf8700"}.get(severity, "#57606a")
            rows.append(
                "<tr>"
                f"<td>{t}</td><td>{html.escape(unit)}</td>"
                f"<td>{html.escape(scope)}</td>"
                f"<td><span class='grade' style='background:{colour}'>"
                f"{html.escape(severity)}</span></td>"
                f"<td>{kind}</td><td>{html.escape(what)}</td></tr>"
            )
        more = (
            f"<div class='meta'>showing {len(shown)} of {len(events)} incident events</div>"
            if len(events) > len(shown)
            else ""
        )
        return (
            "<div class='panel'><h2>Incidents</h2><table>"
            "<tr><th>t</th><th>unit</th><th>scope</th><th>severity</th>"
            f"<th>event</th><th>detail</th></tr>{''.join(rows)}</table>{more}</div>"
        )

    def _anomaly_trend_sparkline(self, unit_id: int, anomalies) -> str:
        """Sensors-flagged-over-time sparkline from the shared anomaly result."""
        counts: Dict[int, int] = {}
        for series in anomalies:
            for t in series.timestamps:
                counts[int(t)] = counts.get(int(t), 0) + 1
        if not counts:
            return ""
        times = np.array(sorted(counts), dtype=np.int64)
        values = np.array([float(counts[int(t)]) for t in times])
        return render_sparkline(
            times,
            values,
            np.empty(0, dtype=np.int64),
            self.config.sparkline_style,
            tooltip=f"unit {unit_id}: sensors flagged over time",
        )

    def platform_health_html(self, start: int = 0, end: Optional[int] = None) -> str:
        """The platform-health panel: self-telemetry read back from the TSDB.

        Discovers the ``proxy.*``/``tsd.*``/``engine.*``/… series the
        :class:`~repro.obs.selfreport.SelfReporter` wrote into the store
        and renders one row per (metric, host) with the latest value and
        a trend sparkline — the platform monitoring itself through its
        own query path.  Returns an empty string when no self-telemetry
        exists (self-reporting off), so the overview degrades to the
        pure fleet view.
        """
        horizon = _SELF_METRIC_HORIZON if end is None else end
        names = sorted(
            name
            for name in self.engine.uids.names("metric")
            if name.startswith(_SELF_METRIC_PREFIXES)
        )
        no_anomalies = np.empty(0, dtype=np.int64)
        rows: List[str] = []
        total = 0
        for name in names:
            # Self-telemetry timestamps run on the simulator clock, not
            # the data timeline (see _SELF_METRIC_HORIZON): the open end
            # is deliberate, so waive the unbounded-range lint here.
            query = TsdbQuery(  # repro-lint: ignore[unbounded-time-range]
                metric=name, start=start, end=horizon, group_by=("host",)
            )
            for series in self.engine.run(query):
                if not len(series):
                    continue
                total += 1
                if len(rows) >= self.config.max_health_rows:
                    continue
                host = series.tag_dict.get("host", "?")
                spark = render_sparkline(
                    series.timestamps,
                    series.values,
                    no_anomalies,
                    self.config.sparkline_style,
                    tooltip=f"{name} host={host}",
                )
                rows.append(
                    "<tr>"
                    f"<td>{html.escape(name)}</td><td>{html.escape(host)}</td>"
                    f"<td>{len(series)}</td><td>{series.values[-1]:.4g}</td>"
                    f"<td>{spark}</td></tr>"
                )
        if not rows:
            return ""
        shown = (
            f"<div class='meta'>showing {len(rows)} of {total} self-metric series</div>"
            if total > len(rows)
            else ""
        )
        return (
            "<div class='panel'><h2>Platform health</h2><table>"
            "<tr><th>self-metric</th><th>host</th><th>points</th>"
            f"<th>last</th><th>trend</th></tr>{''.join(rows)}</table>{shown}</div>"
        )

    def machine_page_html(self, unit_id: int, start: int, end: int) -> str:
        """Figure 3: status strip, sparkline grid, drill-down details."""
        cfg = self.config
        # One anomaly query serves the status strip, the sparkline
        # flags, the top-sensor ranking and every drill-down block.
        status, anomalies = self.analytics.unit_overview(unit_id, start, end)
        data = self.analytics.sensor_series(unit_id, start, end)
        anomaly_times: Dict[str, np.ndarray] = {
            s.tag_dict.get("sensor", "?"): s.timestamps for s in anomalies
        }
        # Flagged sensors first, then the rest, capped.
        def sort_key(series) -> tuple:
            sensor = series.tag_dict.get("sensor", "?")
            n = len(anomaly_times.get(sensor, ()))
            return (-n, sensor)

        data_sorted = sorted(data, key=sort_key)[: cfg.max_sparklines]
        cells = []
        for series in data_sorted:
            sensor = series.tag_dict.get("sensor", "?")
            a_times = anomaly_times.get(sensor, np.empty(0, dtype=np.int64))
            flagged = "cell flagged" if len(a_times) else "cell"
            spark = render_sparkline(
                series.timestamps,
                series.values,
                a_times,
                cfg.sparkline_style,
                tooltip=f"{sensor}: {len(a_times)} anomalies",
            )
            cells.append(
                f"<div class='{flagged}'><div class='name'>{html.escape(sensor)}"
                f"{' · ' + str(len(a_times)) + ' ⚑' if len(a_times) else ''}</div>"
                f"{spark}</div>"
            )
        top = self.analytics.top_sensors_from(anomalies, cfg.max_details)
        details = [
            self._detail_block(activity, data, anomaly_times) for activity in top
        ]
        grade = status.grade
        body = (
            "<div class='panel'><h2>Unit status</h2>"
            f"<div class='meta'><span class='grade' style='background:{grade.color}'>"
            f"{grade.value}</span> &nbsp; {status.anomaly_count} anomalies on "
            f"{status.sensors_affected} sensors &middot; {status.unit_alarms} unit alarms"
            f"</div>{render_status_bar([status], width=960, height=14)}</div>"
            f"<div class='panel'><h2>Sensors ({len(data_sorted)} of {len(data)})</h2>"
            f"<div class='grid'>{''.join(cells)}</div></div>"
            + (
                f"<div class='panel'><h2>Drill-down</h2>{''.join(details)}</div>"
                if details
                else ""
            )
            + "<div class='meta'><a href='index.html'>← fleet overview</a></div>"
        )
        return self._page(
            f"{self.config.title} — machine {unit_id}",
            f"machine page · t ∈ [{start}, {end})",
            body,
        )

    def _detail_block(
        self,
        activity: SensorActivity,
        data_series,
        anomaly_times: Dict[str, np.ndarray],
    ) -> str:
        series = next(
            (s for s in data_series if s.tag_dict.get("sensor") == activity.sensor), None
        )
        if series is None or not len(series):
            return ""
        a_times = anomaly_times.get(activity.sensor, np.empty(0, dtype=np.int64))
        # Control band from the displayed window's own robust statistics
        # (the dashboard has no access to the training data).
        values = series.values
        med = float(np.median(values))
        mad = float(np.median(np.abs(values - med))) * 1.4826
        chart = render_detail_chart(
            series.timestamps,
            values,
            a_times,
            mean=med,
            std=mad if mad > 0 else None,
            title=(
                f"{activity.sensor} — {activity.anomaly_count} anomalies, "
                f"peak |z| = {activity.peak_score:.1f}, "
                f"last at t={activity.last_anomaly_time}s"
            ),
        )
        return f"<div class='detail'>{chart}</div>"

    # ------------------------------------------------------------------
    # file output
    # ------------------------------------------------------------------
    def write(
        self,
        out_dir: str | Path,
        unit_ids: Sequence[int],
        start: int,
        end: int,
        machine_pages: Optional[Sequence[int]] = None,
    ) -> List[Path]:
        """Write index + machine pages; returns the created paths."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        written = []
        index = out / "index.html"
        index.write_text(self.fleet_overview_html(unit_ids, start, end))
        written.append(index)
        pages = machine_pages if machine_pages is not None else unit_ids
        for unit_id in pages:
            page = out / f"machine-{unit_id:03d}.html"
            page.write_text(self.machine_page_html(unit_id, start, end))
            written.append(page)
        return written
