"""Sparkline charts with anomaly annotations.

Figure 3's centre panel: "our tool displays all sensor readings with
relevant anomalies annotated directly on a compact sparkline chart".
A sparkline is a compact, axis-less line with flagged instants drawn as
red markers; the drill-down variant adds axes, control-limit bands and
labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .svg import Svg, path_from_points

__all__ = ["SparklineStyle", "render_sparkline", "render_detail_chart"]

ANOMALY_COLOR = "#d62728"
LINE_COLOR = "#4878a8"
BAND_COLOR = "#e8eef4"
GRID_COLOR = "#d0d7de"
TEXT_COLOR = "#57606a"


@dataclass(frozen=True)
class SparklineStyle:
    width: int = 220
    height: int = 36
    padding: int = 2
    stroke_width: float = 1.0
    marker_radius: float = 2.0


def _scale(
    times: np.ndarray,
    values: np.ndarray,
    width: float,
    height: float,
    padding: float,
    y_range: Optional[Tuple[float, float]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    t = np.asarray(times, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    t_lo, t_hi = (t.min(), t.max()) if t.size else (0.0, 1.0)
    if t_hi <= t_lo:
        t_hi = t_lo + 1.0
    if y_range is not None:
        v_lo, v_hi = y_range
    else:
        v_lo, v_hi = (v.min(), v.max()) if v.size else (0.0, 1.0)
    if v_hi <= v_lo:
        v_hi = v_lo + 1.0
    xs = padding + (t - t_lo) / (t_hi - t_lo) * (width - 2 * padding)
    ys = height - padding - (v - v_lo) / (v_hi - v_lo) * (height - 2 * padding)
    return xs, ys


def render_sparkline(
    times: Sequence[int],
    values: Sequence[float],
    anomaly_times: Sequence[int] = (),
    style: Optional[SparklineStyle] = None,
    tooltip: str = "",
) -> str:
    """Render one compact sparkline; anomalous instants become red dots."""
    st = style if style is not None else SparklineStyle()
    svg = Svg(st.width, st.height)
    if tooltip:
        svg.title(tooltip)
    t = np.asarray(times, dtype=np.int64)
    v = np.asarray(values, dtype=np.float64)
    if t.size == 0:
        svg.text(st.width / 2, st.height / 2 + 4, "no data",
                 fill=TEXT_COLOR, font_size=10, text_anchor="middle")
        return svg.to_string("sparkline")
    xs, ys = _scale(t, v, st.width, st.height, st.padding)
    svg.path(
        path_from_points(list(zip(xs, ys))),
        fill="none",
        stroke=LINE_COLOR,
        stroke_width=st.stroke_width,
    )
    if len(anomaly_times):
        anomaly_set = np.isin(t, np.asarray(list(anomaly_times), dtype=np.int64))
        for x, y in zip(xs[anomaly_set], ys[anomaly_set]):
            svg.circle(x, y, st.marker_radius, fill=ANOMALY_COLOR)
    return svg.to_string("sparkline")


def render_detail_chart(
    times: Sequence[int],
    values: Sequence[float],
    anomaly_times: Sequence[int] = (),
    mean: Optional[float] = None,
    std: Optional[float] = None,
    width: int = 760,
    height: int = 220,
    title: str = "",
) -> str:
    """Drill-down chart: axes, ±3σ control band, anomalies highlighted.

    Figure 3's bottom panel — "operators can click on anomalies which
    surfaces a detailed view of the sensor data".
    """
    pad_left, pad_right, pad_top, pad_bottom = 52, 12, 22, 26
    plot_w = width - pad_left - pad_right
    plot_h = height - pad_top - pad_bottom
    svg = Svg(width, height)
    t = np.asarray(times, dtype=np.int64)
    v = np.asarray(values, dtype=np.float64)
    if title:
        svg.text(pad_left, 14, title, fill=TEXT_COLOR, font_size=12, font_weight="bold")
    if t.size == 0:
        svg.text(width / 2, height / 2, "no data", fill=TEXT_COLOR,
                 font_size=12, text_anchor="middle")
        return svg.to_string("detail-chart")

    v_lo, v_hi = float(v.min()), float(v.max())
    if mean is not None and std is not None:
        v_lo = min(v_lo, mean - 3.5 * std)
        v_hi = max(v_hi, mean + 3.5 * std)
    if v_hi <= v_lo:
        v_hi = v_lo + 1.0

    def sx(tt: np.ndarray) -> np.ndarray:
        t_lo, t_hi = t.min(), t.max()
        span = max(1, t_hi - t_lo)
        return pad_left + (tt - t_lo) / span * plot_w

    def sy(vv: np.ndarray) -> np.ndarray:
        return pad_top + (v_hi - vv) / (v_hi - v_lo) * plot_h

    # control band mean ± 3σ
    if mean is not None and std is not None:
        top = float(sy(np.array(mean + 3 * std)))
        bot = float(sy(np.array(mean - 3 * std)))
        svg.rect(pad_left, top, plot_w, max(1.0, bot - top), fill=BAND_COLOR)
        svg.line(pad_left, float(sy(np.array(mean))), pad_left + plot_w,
                 float(sy(np.array(mean))), stroke=GRID_COLOR, stroke_dasharray="4 3")

    # y grid + labels
    for frac in (0.0, 0.5, 1.0):
        yy = pad_top + plot_h * frac
        svg.line(pad_left, yy, pad_left + plot_w, yy, stroke=GRID_COLOR, stroke_width=0.5)
        label = v_hi - (v_hi - v_lo) * frac
        svg.text(pad_left - 6, yy + 4, f"{label:.1f}", fill=TEXT_COLOR,
                 font_size=10, text_anchor="end")
    # x labels (start/end time)
    svg.text(pad_left, height - 8, f"t={int(t.min())}s", fill=TEXT_COLOR, font_size=10)
    svg.text(pad_left + plot_w, height - 8, f"t={int(t.max())}s",
             fill=TEXT_COLOR, font_size=10, text_anchor="end")

    xs, ys = sx(t.astype(np.float64)), sy(v)
    svg.path(path_from_points(list(zip(xs, ys))), fill="none",
             stroke=LINE_COLOR, stroke_width=1.4)
    if len(anomaly_times):
        mask = np.isin(t, np.asarray(list(anomaly_times), dtype=np.int64))
        for x, y in zip(xs[mask], ys[mask]):
            svg.circle(x, y, 3.0, fill=ANOMALY_COLOR, stroke="white", stroke_width=0.8)
    return svg.to_string("detail-chart")
