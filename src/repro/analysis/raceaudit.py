"""Runtime lock-discipline auditor for the concurrent hot path.

The fleet engine fans units across ``SparkletContext`` thread workers
while the publisher tracks acks through the reverse proxy; four modules
now share mutable state behind locks (``sparklet/context.py``,
``sparklet/shuffle.py``, ``core/engine.py``, ``tsdb/publish.py``).
This module gives those locks a *recorded* discipline:

* :func:`audited_lock` — drop-in lock factory.  With auditing disabled
  (the default) it returns a plain :class:`threading.Lock`/``RLock``,
  so production runs pay **zero** overhead.  With auditing enabled it
  returns an :class:`AuditedLock` that reports every acquire/release to
  the process-wide :class:`LockOrderAuditor`.
* :class:`LockOrderAuditor` — records the *lock-order graph*: an edge
  ``A -> B`` whenever a thread acquires ``B`` while holding ``A``.  A
  cycle in that graph is deadlock potential;
  :meth:`LockOrderAuditor.assert_no_cycles` fails the run with the
  offending cycle spelled out.
* :func:`assert_holds` — guarded-state helper for functions whose
  contract is "caller holds the lock".  No-op on plain locks; on an
  audited lock it raises :class:`GuardedStateError` when the calling
  thread does not hold it.  The static ``guarded-by`` lint rule
  (:mod:`repro.analysis.rules`) treats a function containing
  ``assert_holds(self.<lock>)`` as holding that lock, so the runtime
  check and the static check share one convention.

Tests enable auditing with :func:`auditing` (a context manager) *before*
constructing the objects under test, run the workload, then assert the
recorded graph is acyclic.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "AuditedLock",
    "GuardedStateError",
    "LockOrderAuditor",
    "LockOrderViolation",
    "assert_holds",
    "audited_lock",
    "auditing",
    "current",
    "disable",
    "enable",
]

LockLike = Union["AuditedLock", threading.Lock, threading.RLock]


class LockOrderViolation(RuntimeError):
    """The recorded lock-order graph contains a cycle (deadlock risk)."""


class GuardedStateError(RuntimeError):
    """Guarded state was touched without its lock held."""


class LockOrderAuditor:
    """Process-wide recorder of lock acquisition order.

    Thread-safe: per-thread held stacks live in thread-local storage;
    the shared edge/count maps are guarded by ``_graph_lock``.
    """

    def __init__(self) -> None:
        self._graph_lock = threading.Lock()
        # (held, acquired) -> times observed; name -> total acquires.
        self._edges: Dict[Tuple[str, str], int] = {}  # guarded-by: _graph_lock
        self._acquires: Dict[str, int] = {}  # guarded-by: _graph_lock
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # recording (called by AuditedLock)
    # ------------------------------------------------------------------
    def _held_stack(self) -> List[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def on_acquire(self, name: str) -> None:
        """Record an acquire *attempt* (before blocking on the lock).

        Recording before the blocking acquire means an actual deadlock
        still leaves its edges in the graph for a watchdog to read.
        """
        held = self._held_stack()
        with self._graph_lock:
            self._acquires[name] = self._acquires.get(name, 0) + 1
            for h in held:
                if h != name:  # reentrant re-acquire is not an ordering edge
                    edge = (h, name)
                    self._edges[edge] = self._edges.get(edge, 0) + 1
        held.append(name)

    def on_release(self, name: str) -> None:
        held = self._held_stack()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return
        raise GuardedStateError(
            f"release of lock {name!r} which this thread does not hold"
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def holds(self, name: str) -> bool:
        """Whether the *calling thread* currently holds the named lock."""
        return name in self._held_stack()

    def edges(self) -> Dict[Tuple[str, str], int]:
        """Snapshot of the lock-order graph (edge -> observation count)."""
        with self._graph_lock:
            return dict(self._edges)

    def acquire_counts(self) -> Dict[str, int]:
        """Snapshot of total acquires per lock name."""
        with self._graph_lock:
            return dict(self._acquires)

    def find_cycle(self) -> Optional[List[str]]:
        """A lock-name cycle in the order graph, or ``None`` if acyclic."""
        graph: Dict[str, List[str]] = {}
        for a, b in self.edges():
            graph.setdefault(a, []).append(b)
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in graph}
        parent: Dict[str, str] = {}

        def visit(node: str) -> Optional[List[str]]:
            color[node] = GREY
            for succ in graph.get(node, ()):
                if color.get(succ, WHITE) == GREY:
                    cycle = [succ, node]
                    cur = node
                    while cur != succ:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
                if color.get(succ, WHITE) == WHITE:
                    parent[succ] = node
                    found = visit(succ)
                    if found is not None:
                        return found
            color[node] = BLACK
            return None

        for name in graph:
            if color[name] == WHITE:
                found = visit(name)
                if found is not None:
                    return found
        return None

    def assert_no_cycles(self) -> None:
        """Raise :class:`LockOrderViolation` if the graph has a cycle."""
        cycle = self.find_cycle()
        if cycle is not None:
            raise LockOrderViolation(
                "lock-order cycle (deadlock potential): "
                + " -> ".join(cycle)
            )


class AuditedLock:
    """A named lock that reports acquire/release to an auditor.

    Supports the full context-manager protocol plus explicit
    ``acquire``/``release``, mirroring :class:`threading.Lock`.
    """

    def __init__(
        self, name: str, auditor: LockOrderAuditor, *, reentrant: bool = False
    ) -> None:
        self.name = name
        self.auditor = auditor
        self._inner: Union[threading.Lock, threading.RLock] = (
            threading.RLock() if reentrant else threading.Lock()
        )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self.auditor.on_acquire(self.name)
        acquired = self._inner.acquire(blocking, timeout)
        if not acquired:
            self.auditor.on_release(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self.auditor.on_release(self.name)

    def __enter__(self) -> "AuditedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"AuditedLock({self.name!r})"


# ----------------------------------------------------------------------
# module-level switch
# ----------------------------------------------------------------------
_auditor: Optional[LockOrderAuditor] = None


def enable() -> LockOrderAuditor:
    """Turn auditing on; locks created *after* this call are audited."""
    global _auditor
    _auditor = LockOrderAuditor()
    return _auditor


def disable() -> None:
    """Turn auditing off; subsequently created locks are plain locks."""
    global _auditor
    _auditor = None


def current() -> Optional[LockOrderAuditor]:
    """The active auditor, or ``None`` when auditing is disabled."""
    return _auditor


@contextmanager
def auditing() -> Iterator[LockOrderAuditor]:
    """Enable auditing for a ``with`` block (tests), then restore."""
    auditor = enable()
    try:
        yield auditor
    finally:
        disable()


def audited_lock(name: str, *, reentrant: bool = False) -> LockLike:
    """Lock factory: audited when auditing is enabled, plain otherwise.

    The disabled path returns a raw ``threading.Lock``/``RLock`` — no
    wrapper, no per-acquire branch — so the hot path is untouched in
    production.
    """
    auditor = _auditor
    if auditor is None:
        return threading.RLock() if reentrant else threading.Lock()
    return AuditedLock(name, auditor, reentrant=reentrant)


def assert_holds(lock: LockLike) -> None:
    """Assert the calling thread holds ``lock`` (audited locks only).

    On a plain lock this is a no-op — Python locks do not expose an
    owner — so production code pays one ``isinstance`` check.  The
    static ``guarded-by`` rule treats a function that calls
    ``assert_holds(self.<lock>)`` as holding that lock throughout.
    """
    if isinstance(lock, AuditedLock) and not lock.auditor.holds(lock.name):
        raise GuardedStateError(
            f"guarded state touched without holding lock {lock.name!r}"
        )
