"""Repro-lint: the AST-walking lint framework.

A deliberately small, dependency-free linter tuned to *this*
repository's correctness invariants (seeded RNG, exact detector math,
frozen configs, lock discipline) rather than general style.  The
pieces:

* :class:`SourceFile` — one parsed module plus the comment-derived
  metadata rules need: per-line ``# repro-lint: ignore[rule, ...]``
  suppressions and ``# guarded-by: <lock>`` annotations.
* :class:`Rule` — base class; concrete rules live in
  :mod:`repro.analysis.rules` and self-register via :func:`register`.
* :func:`lint_source` / :func:`lint_paths` — run every registered rule
  over a string or a tree of files and collect :class:`Finding`\\ s.
* :class:`LintReport` — findings plus human/JSON renderings; the CLI
  (``python -m repro.analysis``) exits non-zero on any unsuppressed
  finding, which is what the tier-1 gate enforces.

Suppression is per-line and per-rule: ``# repro-lint: ignore[RULE]``
waives ``RULE`` on that line only, ``# repro-lint: ignore`` waives all
rules on the line.  Suppressions are kept in the report (marked
``suppressed``) so waivers stay visible, and the convention is to
follow the marker with ``--`` and a justification.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "SourceFile",
    "all_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register",
]

SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Za-z0-9_,\- ]+)\])?")
GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Sentinel stored in a line's suppression set by a bare ``ignore``.
ALL_RULES = "*"

#: Pseudo-rule id attached to files that fail to parse.
PARSE_ERROR = "parse-error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    #: Content-derived stable ID (set by the project reporter); survives
    #: line drift so committed baselines stay reviewable.
    fingerprint: str = ""
    #: True when a committed baseline entry accepts this finding.
    baselined: bool = False

    def format(self) -> str:
        tail = ""
        if self.suppressed:
            tail = "  [suppressed]"
        elif self.baselined:
            tail = "  [baselined]"
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}{tail}"

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class SourceFile:
    """A parsed module plus comment metadata (suppressions, guards)."""

    def __init__(self, path: str | Path, text: str) -> None:
        self.path = Path(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        #: line -> set of suppressed rule ids (or {ALL_RULES})
        self.suppressions: Dict[int, Set[str]] = {}
        #: line -> lock attribute name from a ``# guarded-by:`` comment
        self.guards: Dict[int, str] = {}
        for lineno, line in enumerate(self.lines, start=1):
            sup = SUPPRESS_RE.search(line)
            if sup:
                names = sup.group(1)
                self.suppressions[lineno] = (
                    {name.strip() for name in names.split(",") if name.strip()}
                    if names
                    else {ALL_RULES}
                )
            guard = GUARD_RE.search(line)
            if guard:
                self.guards[lineno] = guard.group(1)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        names = self.suppressions.get(line)
        if not names:
            return False
        return ALL_RULES in names or rule_id in names


class Rule:
    """Base class for repro-lint rules.

    Subclasses set ``id`` (the suppression token) and ``summary``, may
    narrow ``applies_to``, and implement ``check`` yielding findings
    (the runner fills in suppression state afterwards).
    """

    id: str = ""
    summary: str = ""

    def applies_to(self, source: SourceFile) -> bool:
        return True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    # Convenience for subclasses.
    def finding(self, source: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=str(source.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    # Importing the rules module populates the registry on first use.
    from . import rules as _rules  # noqa: F401

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------
def _run_rules(source: SourceFile, rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(source):
            continue
        for found in rule.check(source):
            if source.is_suppressed(rule.id, found.line):
                found = dataclasses.replace(found, suppressed=True)
            findings.append(found)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    text: str,
    path: str | Path = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module given as a string (the test-friendly entry)."""
    try:
        source = SourceFile(path, text)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR,
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    return _run_rules(source, rules if rules is not None else all_rules())


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    yield sub
        elif path.suffix == ".py":
            yield path


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_checked: int

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def to_json(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "unsuppressed": len(self.unsuppressed),
            "suppressed": len(self.suppressed),
            "findings": [f.to_json() for f in self.findings],
        }

    def render(self, *, show_suppressed: bool = False) -> str:
        lines = [f.format() for f in self.unsuppressed]
        if show_suppressed:
            lines.extend(f.format() for f in self.suppressed)
        lines.append(
            f"repro-lint: {self.files_checked} files, "
            f"{len(self.unsuppressed)} findings, "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2)


def lint_paths(
    paths: Iterable[str | Path], rules: Optional[Sequence[Rule]] = None
) -> LintReport:
    """Lint a tree of files; the CLI and the tier-1 gate call this."""
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        findings.extend(lint_source(path.read_text(), path, active))
    return LintReport(findings=findings, files_checked=count)
