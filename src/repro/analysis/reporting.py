"""Project-mode reporting: fingerprints, baseline, cache, SARIF.

This layer turns raw findings (per-file rules + cross-module rules)
into the artifacts the tier-1 gate and code review consume:

* **Stable fingerprints** — each finding gets a content-derived ID
  hashed from ``(rule, path, message, occurrence)``.  Line numbers are
  deliberately excluded: a baseline written last month still matches
  after unrelated edits shift the file, so baseline diffs only show
  *real* new/removed findings.
* **Baseline** — a committed JSON file of accepted fingerprints.
  Baselined findings are reported (tagged) but do not fail the run;
  ``--write-baseline`` regenerates the file from the current tree.
* **Cache** — an on-disk map of per-file content hash → per-file
  findings, plus tree hash → cross-rule findings.  A re-run over an
  unchanged tree replays entirely from cache; ``--changed-files``
  additionally trusts cached entries for files *not* named, so the
  gate only executes rules over the diff.
* **SARIF 2.1.0** — for editor/CI ingestion; suppressed and baselined
  findings are carried as SARIF suppressions rather than dropped.

Everything serialized here is derived from file contents and sorted
collections — two runs over the same tree are byte-identical, which
the determinism property test pins.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .crossrules import CrossRule, ProjectContext, cross_rules, run_cross_rules
from .lint import Finding, Rule, _run_rules, all_rules
from .project import ProjectModel

__all__ = [
    "Baseline",
    "AnalysisCache",
    "ProjectReport",
    "fingerprint_findings",
    "run_project",
]

_FINGERPRINT_BYTES = 10  # 20 hex chars: short enough to review, no collisions


def fingerprint_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Attach stable content-derived fingerprints.

    The hash covers rule, path, and message — not the line number, so
    unrelated edits above a finding do not orphan its baseline entry.
    Identical (rule, path, message) triples are disambiguated by an
    occurrence counter in source order.
    """
    occurrences: Dict[Tuple[str, str, str], int] = {}
    out: List[Finding] = []
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.col, f.message))
    for finding in ordered:
        key = (finding.rule, finding.path, finding.message)
        n = occurrences.get(key, 0)
        occurrences[key] = n + 1
        digest = hashlib.sha256(
            f"{finding.rule}|{finding.path}|{finding.message}|{n}".encode("utf-8")
        ).hexdigest()[: _FINGERPRINT_BYTES * 2]
        out.append(dataclasses.replace(finding, fingerprint=digest))
    return out


def _finding_from_json(raw: Dict[str, object]) -> Finding:
    return Finding(
        rule=str(raw["rule"]),
        path=str(raw["path"]),
        line=int(raw["line"]),  # type: ignore[arg-type]
        col=int(raw["col"]),  # type: ignore[arg-type]
        message=str(raw["message"]),
        suppressed=bool(raw.get("suppressed", False)),
    )


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
@dataclass
class Baseline:
    """Accepted findings, keyed by fingerprint, committed to the repo."""

    fingerprints: Set[str] = field(default_factory=set)
    #: fingerprint -> context row kept for human review of the file
    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        baseline = cls()
        for row in data.get("findings", []):
            fp = str(row["fingerprint"])
            baseline.fingerprints.add(fp)
            baseline.entries[fp] = dict(row)
        return baseline

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            if finding.suppressed or not finding.fingerprint:
                continue
            baseline.fingerprints.add(finding.fingerprint)
            baseline.entries[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
        return baseline

    def apply(self, findings: Sequence[Finding]) -> List[Finding]:
        return [
            dataclasses.replace(f, baselined=f.fingerprint in self.fingerprints)
            if not f.suppressed
            else f
            for f in findings
        ]

    def render(self) -> str:
        rows = [self.entries[fp] for fp in sorted(self.entries)]
        return json.dumps({"version": 1, "findings": rows}, indent=2) + "\n"

    def write(self, path: Path | str) -> None:
        Path(path).write_text(self.render())


# ----------------------------------------------------------------------
# incremental cache
# ----------------------------------------------------------------------
@dataclass
class AnalysisCache:
    """Content-hash-keyed results of a previous project run.

    ``files`` maps relative path → ``{"hash": ..., "findings": [...]}``
    for per-file rules; ``cross`` holds the tree hash and cross-rule
    findings (cross rules see the whole program, so any file change
    invalidates them as a unit).
    """

    files: Dict[str, Dict[str, object]] = field(default_factory=dict)
    cross_tree: str = ""
    cross_findings: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path | str) -> "AnalysisCache":
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            return cls()
        if data.get("version") != 1:
            return cls()
        store = cls()
        store.files = dict(data.get("files", {}))
        cross = data.get("cross", {})
        store.cross_tree = str(cross.get("tree", ""))
        store.cross_findings = list(cross.get("findings", []))
        return store

    def lookup_file(
        self, path: str, digest: str, *, trust: bool = False
    ) -> Optional[List[Finding]]:
        """Cached per-file findings, or None on miss.

        With ``trust`` (the ``--changed-files`` fast path) the stored
        hash is not compared — the caller asserts the file is
        unchanged since the cache was written.
        """
        entry = self.files.get(path)
        if entry is None:
            return None
        if not trust and entry.get("hash") != digest:
            return None
        return [_finding_from_json(r) for r in entry.get("findings", [])]  # type: ignore[union-attr]

    def store_file(self, path: str, digest: str, findings: Sequence[Finding]) -> None:
        self.files[path] = {
            "hash": digest,
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "suppressed": f.suppressed,
                }
                for f in findings
            ],
        }

    def lookup_cross(self, tree_digest: str) -> Optional[List[Finding]]:
        if self.cross_tree != tree_digest:
            return None
        return [_finding_from_json(r) for r in self.cross_findings]

    def store_cross(self, tree_digest: str, findings: Sequence[Finding]) -> None:
        self.cross_tree = tree_digest
        self.cross_findings = [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
            }
            for f in findings
        ]

    def save(self, path: Path | str) -> None:
        known = {str(p) for p in self.files}
        payload = {
            "version": 1,
            "files": {p: self.files[p] for p in sorted(known)},
            "cross": {"tree": self.cross_tree, "findings": self.cross_findings},
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


@dataclass
class ProjectReport:
    """One whole-program analysis run, ready to render."""

    findings: List[Finding]
    files_checked: int
    rule_ids: List[str]
    import_cycles: List[Tuple[str, ...]] = field(default_factory=list)

    @property
    def actionable(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed and not f.baselined]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.actionable

    def render(self, *, show_suppressed: bool = False) -> str:
        lines = [f.format() for f in self.actionable]
        if show_suppressed:
            lines.extend(f.format() for f in self.baselined)
            lines.extend(f.format() for f in self.suppressed)
        for cycle in self.import_cycles:
            lines.append(f"note: import cycle: {' -> '.join(cycle)}")
        lines.append(
            f"repro-analysis: {self.files_checked} files, "
            f"{len(self.rule_ids)} rules, {len(self.actionable)} findings, "
            f"{len(self.baselined)} baselined, {len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "rules": self.rule_ids,
            "actionable": len(self.actionable),
            "baselined": len(self.baselined),
            "suppressed": len(self.suppressed),
            "import_cycles": [list(c) for c in self.import_cycles],
            "findings": [f.to_json() for f in self.findings],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    # ------------------------------------------------------------------
    def to_sarif(
        self, rules: Sequence[Rule] = (), cross: Sequence[CrossRule] = ()
    ) -> Dict[str, object]:
        catalogue = [
            {"id": r.id, "shortDescription": {"text": r.summary}}
            for r in sorted([*rules, *cross], key=lambda r: r.id)
        ]
        results: List[Dict[str, object]] = []
        for f in self.findings:
            row: Dict[str, object] = {
                "ruleId": f.rule,
                "level": "note" if (f.suppressed or f.baselined) else "warning",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path.replace("\\", "/")},
                            "region": {
                                "startLine": max(f.line, 1),
                                "startColumn": max(f.col, 0) + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {"reproAnalysis/v1": f.fingerprint},
            }
            if f.suppressed or f.baselined:
                row["suppressions"] = [
                    {
                        "kind": "inSource" if f.suppressed else "external",
                        "justification": (
                            "repro-lint: ignore comment"
                            if f.suppressed
                            else "accepted in committed baseline"
                        ),
                    }
                ]
            results.append(row)
        return {
            "version": "2.1.0",
            "$schema": _SARIF_SCHEMA,
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-analysis",
                            "informationUri": "https://example.invalid/repro-analysis",
                            "rules": catalogue,
                        }
                    },
                    "results": results,
                }
            ],
        }

    def render_sarif(
        self, rules: Sequence[Rule] = (), cross: Sequence[CrossRule] = ()
    ) -> str:
        return json.dumps(self.to_sarif(rules, cross), indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------
def run_project(
    root: Path | str,
    *,
    per_file_rules: Optional[Sequence[Rule]] = None,
    cross: Optional[Sequence[CrossRule]] = None,
    baseline: Optional[Baseline] = None,
    cache: Optional[AnalysisCache] = None,
    changed_files: Optional[Iterable[str | Path]] = None,
    collect_cycles: bool = True,
) -> ProjectReport:
    """Run the whole-program analysis over one package tree.

    ``changed_files`` names the only files whose per-file rules must
    re-run; everything else replays from ``cache`` (falling back to a
    live run on a cache miss, so correctness never depends on the
    flag).  Cross rules re-run whenever any file content changed.
    """
    active_rules = list(per_file_rules) if per_file_rules is not None else all_rules()
    active_cross = list(cross) if cross is not None else cross_rules()
    model = ProjectModel.build(root)
    changed: Optional[Set[str]] = None
    if changed_files is not None:
        changed = {Path(p).as_posix() for p in changed_files}

    findings: List[Finding] = []
    for name in sorted(model.modules, key=lambda n: str(model.modules[n].path)):
        module = model.modules[name]
        rel = module.path.as_posix()
        cached: Optional[List[Finding]] = None
        if cache is not None:
            trust = changed is not None and rel not in changed
            cached = cache.lookup_file(rel, module.digest, trust=trust)
        if cached is None:
            cached = _run_rules(module.source, active_rules)
            if cache is not None:
                cache.store_file(rel, module.digest, cached)
        findings.extend(cached)
    for path, message in sorted(model.parse_errors.items()):
        findings.append(
            Finding(rule="parse-error", path=path, line=1, col=0, message=message)
        )

    tree = model.tree_digest()
    cross_found: Optional[List[Finding]] = None
    if cache is not None:
        cross_found = cache.lookup_cross(tree)
    cycles: List[Tuple[str, ...]] = []
    if cross_found is None or collect_cycles:
        ctx = ProjectContext.build(model)
        if collect_cycles:
            cycles = ctx.imports.cycles()
        if cross_found is None:
            cross_found = run_cross_rules(ctx, active_cross)
            if cache is not None:
                cache.store_cross(tree, cross_found)
    findings.extend(cross_found)

    findings = fingerprint_findings(findings)
    if baseline is not None:
        findings = baseline.apply(findings)
    rule_ids = sorted([r.id for r in active_rules] + [r.id for r in active_cross])
    return ProjectReport(
        findings=findings,
        files_checked=len(model.modules),
        rule_ids=rule_ids,
        import_cycles=cycles,
    )
