"""Module/import graph and best-effort call graph over a ProjectModel.

Two graph layers sit between the raw symbol tables and the cross-module
rules:

* :class:`ImportGraph` — project-internal module dependencies, with
  Tarjan SCC cycle detection and a deterministic topological order
  (cycles collapse to one component; members stay sorted).  Rules use
  it for "who can see whom" questions and the CLI reports cycles so
  the lazy-import workarounds in the codebase stay deliberate.
* :class:`CallGraph` — function-level edges resolved best-effort from
  each :class:`~repro.analysis.project.FunctionInfo` summary:

  - ``self.m(...)`` → method ``m`` of the enclosing class (walking
    project-resolvable base classes);
  - ``self.<attr>.m(...)`` → method ``m`` of the class ``__init__``
    assigned to ``self.<attr>`` (the attr-constructor binding);
  - ``name(...)`` → same-module function, or a ``from``-imported one;
  - ``mod.f(...)`` → function ``f`` of the imported module ``mod``;
  - scheduled-callback references (``sim.schedule(d, self._tick)``)
    become edges too, marked ``scheduled`` (no locks held when they
    run).

  Unresolvable calls (stdlib, numpy, dynamic dispatch) produce no
  edge — the graph under-approximates, which is the right polarity
  for the rules built on it: a missing edge can only make a rule
  *miss* a violation, never invent one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .project import CallSite, ClassInfo, FunctionInfo, ModuleInfo, ProjectModel

__all__ = ["CallEdge", "CallGraph", "ImportGraph"]


class ImportGraph:
    """Project-internal import dependencies."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.edges: Dict[str, Set[str]] = {
            name: {dep for dep in module.imports if dep in model.modules}
            for name, module in model.modules.items()
        }

    def imports_of(self, module: str) -> Tuple[str, ...]:
        return tuple(sorted(self.edges.get(module, ())))

    def importers_of(self, module: str) -> Tuple[str, ...]:
        return tuple(
            sorted(src for src, deps in self.edges.items() if module in deps)
        )

    # ------------------------------------------------------------------
    def sccs(self) -> List[Tuple[str, ...]]:
        """Strongly connected components (Tarjan), deterministically.

        Components are returned in reverse topological order (a
        component appears before any component it imports from), each
        with members sorted.
        """
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        out: List[Tuple[str, ...]] = []
        counter = iter(range(len(self.edges) * 2 + 1))

        # Iterative Tarjan: (node, child-iterator) frames.
        def strongconnect(root: str) -> None:
            frames: List[Tuple[str, Iterator[str]]] = [
                (root, iter(sorted(self.edges.get(root, ()))))
            ]
            index[root] = lowlink[root] = next(counter)
            stack.append(root)
            on_stack.add(root)
            while frames:
                node, children = frames[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = lowlink[child] = next(counter)
                        stack.append(child)
                        on_stack.add(child)
                        frames.append((child, iter(sorted(self.edges.get(child, ())))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                frames.pop()
                if frames:
                    parent = frames[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    out.append(tuple(sorted(component)))

        for name in sorted(self.edges):
            if name not in index:
                strongconnect(name)
        return out

    def cycles(self) -> List[Tuple[str, ...]]:
        """Import cycles: every SCC with more than one member (or a
        self-import), sorted for stable reporting."""
        found = [
            scc
            for scc in self.sccs()
            if len(scc) > 1 or scc[0] in self.edges.get(scc[0], ())
        ]
        return sorted(found)

    def topo_order(self) -> List[str]:
        """Modules in dependency-first order (cycle members adjacent)."""
        return [name for scc in self.sccs() for name in scc]


@dataclass(frozen=True)
class CallEdge:
    """One resolved call edge."""

    caller: str
    callee: str
    site: CallSite


class CallGraph:
    """Best-effort function-level call graph."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self._callees: Dict[str, List[CallEdge]] = {}
        self._callers: Dict[str, List[CallEdge]] = {}
        for fn in model.iter_functions():
            for site in fn.calls:
                target = self.resolve(fn, site)
                if target is None:
                    continue
                edge = CallEdge(fn.qualname, target.qualname, site)
                self._callees.setdefault(fn.qualname, []).append(edge)
                self._callers.setdefault(target.qualname, []).append(edge)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, fn: FunctionInfo, site: CallSite) -> Optional[FunctionInfo]:
        parts = site.callee.split(".")
        if parts[0] == "self":
            return self._resolve_self(fn, parts)
        if len(parts) == 1:
            return self._resolve_plain(fn.module, parts[0])
        return self._resolve_dotted(fn.module, parts)

    def _resolve_self(
        self, fn: FunctionInfo, parts: List[str]
    ) -> Optional[FunctionInfo]:
        cls = self.model.class_of(fn)
        if cls is None:
            return None
        if len(parts) == 2:
            # self.m() — own method or inherited project method.
            return self._method_on(cls, parts[1])
        if len(parts) == 3:
            # self.attr.m() — through the attr-constructor binding.
            ctor = cls.attr_constructors.get(parts[1])
            if ctor is None:
                return None
            target_cls = self.model.resolve_class(cls.module, ctor)
            if target_cls is None:
                return None
            return self._method_on(target_cls, parts[2])
        return None

    def _method_on(self, cls: ClassInfo, method: str) -> Optional[FunctionInfo]:
        seen: Set[str] = set()
        queue: List[ClassInfo] = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            found = current.methods.get(method)
            if found is not None:
                return found
            for base in current.bases:
                base_cls = self.model.resolve_class(current.module, base)
                if base_cls is not None:
                    queue.append(base_cls)
        return None

    def _resolve_plain(
        self, module: ModuleInfo, name: str
    ) -> Optional[FunctionInfo]:
        local = module.functions.get(name)
        if local is not None:
            return local
        target = module.aliases.get(name)
        if target is not None:
            return self.model.functions.get(target)
        return None

    def _resolve_dotted(
        self, module: ModuleInfo, parts: List[str]
    ) -> Optional[FunctionInfo]:
        resolved = module.resolve_name(".".join(parts))
        found = self.model.functions.get(resolved)
        if found is not None:
            return found
        # ``alias.Class.method`` / ``Class.method`` in the same module.
        if len(parts) == 2:
            cls = module.classes.get(parts[0])
            if cls is not None:
                return self._method_on(cls, parts[1])
        return None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> Tuple[CallEdge, ...]:
        return tuple(self._callees.get(qualname, ()))

    def callers(self, qualname: str) -> Tuple[CallEdge, ...]:
        return tuple(self._callers.get(qualname, ()))

    def reachable_from(self, qualname: str) -> Set[str]:
        """Transitive closure of callees (including ``qualname``)."""
        seen: Set[str] = set()
        queue = [qualname]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self._callees.get(current, ()):
                if edge.callee not in seen:
                    queue.append(edge.callee)
        return seen

    def can_reach(self, source: str, targets: Set[str]) -> bool:
        """Can ``source`` reach any of ``targets`` through call edges?"""
        if source in targets:
            return True
        seen: Set[str] = set()
        queue = [source]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self._callees.get(current, ()):
                if edge.callee in targets:
                    return True
                if edge.callee not in seen:
                    queue.append(edge.callee)
        return False
