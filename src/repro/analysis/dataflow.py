"""Light intraprocedural dataflow over one function body.

This is a flow-insensitive shape pass, not an abstract interpreter: it
classifies each local name by *how it was produced* and lets rules ask
"is this value a zero-copy view of block storage?" or "does this
function's return flow from a view?".  Cross-module rules combine it
with the call graph — the hot-path copy detector uses it to tell
``np.array(some_list)`` (fine: materializing from scratch) apart from
``np.array(block.timestamps)`` (a copy of an existing columnar view).

Shape lattice (single assignment wins; conflicting reassignment
degrades to ``MIXED``):

* ``VIEW`` — borrowed array storage: ``.timestamps``/``.values``
  attribute reads, ``np.asarray``/``np.frombuffer``/``memoryview``
  results, and slices/subscripts of other views.
* ``MATERIALIZED`` — fresh storage the function owns (``np.array``,
  ``list(...)``, comprehensions, literals, arithmetic).
* ``OPAQUE`` — anything we can't classify (call results, parameters).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["Shape", "FunctionDataflow", "analyze_function"]


class Shape(Enum):
    VIEW = "view"
    MATERIALIZED = "materialized"
    OPAQUE = "opaque"
    MIXED = "mixed"


#: attribute names whose reads yield borrowed columnar storage
_VIEW_ATTRS = frozenset({"timestamps", "values", "ts", "vals", "columns"})

#: callables whose result aliases their argument's storage
_VIEW_CALLS = frozenset({"np.asarray", "numpy.asarray", "np.frombuffer",
                         "numpy.frombuffer", "memoryview", "asarray"})

#: callables that always allocate fresh storage
_FRESH_CALLS = frozenset({"np.array", "numpy.array", "np.empty", "np.zeros",
                          "np.ones", "np.arange", "np.concatenate", "list",
                          "tuple", "dict", "set", "sorted", "bytearray"})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionDataflow:
    """Shapes of locals plus attribute/return flow facts."""

    shapes: Dict[str, Shape] = field(default_factory=dict)
    #: ``self.x`` attributes written anywhere in the body
    attr_writes: Set[str] = field(default_factory=set)
    #: shapes that flow into ``return`` statements
    return_shapes: Set[Shape] = field(default_factory=set)
    #: (line, expression-text) of view-copying call sites found inline
    view_copies: List[Tuple[int, str]] = field(default_factory=list)

    def is_view(self, name: str) -> bool:
        return self.shapes.get(name) in (Shape.VIEW, Shape.MIXED)

    def returns_view(self) -> bool:
        return Shape.VIEW in self.return_shapes or Shape.MIXED in self.return_shapes


class _Pass(ast.NodeVisitor):
    def __init__(self, flow: FunctionDataflow) -> None:
        self.flow = flow

    # -- assignments ---------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        shape = self._shape_of(node.value)
        for target in node.targets:
            self._bind(target, shape)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, self._shape_of(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._bind(node.target, Shape.OPAQUE)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        # Iterating a view yields borrowed elements; good enough to keep
        # the loop variable out of the MATERIALIZED bucket.
        self._bind(node.target, self._shape_of(node.iter))
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.flow.return_shapes.add(self._shape_of(node.value))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted(node.func)
        if callee is not None and node.args:
            tail = callee.rpartition(".")[2]
            arg_shape = self._shape_of(node.args[0])
            if (
                (callee in _FRESH_CALLS or tail == "array")
                and arg_shape is Shape.VIEW
            ):
                text = f"{callee}({_dotted(node.args[0]) or '<view>'})"
                self.flow.view_copies.append((node.lineno, text))
        self.generic_visit(node)

    # -- nested scopes: skip, they have their own frames ---------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    # -- helpers -------------------------------------------------------
    def _bind(self, target: ast.AST, shape: Shape) -> None:
        if isinstance(target, ast.Name):
            existing = self.flow.shapes.get(target.id)
            if existing is not None and existing is not shape:
                shape = Shape.MIXED
            self.flow.shapes[target.id] = shape
        elif isinstance(target, ast.Attribute):
            dotted = _dotted(target)
            if dotted is not None and dotted.startswith("self."):
                self.flow.attr_writes.add(dotted.split(".", 1)[1])
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, Shape.OPAQUE)

    def _shape_of(self, node: ast.AST) -> Shape:
        if isinstance(node, ast.Name):
            return self.flow.shapes.get(node.id, Shape.OPAQUE)
        if isinstance(node, ast.Attribute):
            if node.attr in _VIEW_ATTRS:
                return Shape.VIEW
            return Shape.OPAQUE
        if isinstance(node, ast.Subscript):
            # A slice of a view is still a view (numpy basic indexing).
            return self._shape_of(node.value)
        if isinstance(node, ast.Call):
            callee = _dotted(node.func)
            if callee is None:
                return Shape.OPAQUE
            if callee in _VIEW_CALLS:
                return Shape.VIEW
            if callee in _FRESH_CALLS or callee.rpartition(".")[2] == "array":
                return Shape.MATERIALIZED
            return Shape.OPAQUE
        if isinstance(node, (ast.List, ast.Tuple, ast.Dict, ast.Set,
                             ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp, ast.Constant, ast.BinOp,
                             ast.UnaryOp, ast.JoinedStr)):
            return Shape.MATERIALIZED
        if isinstance(node, ast.IfExp):
            left = self._shape_of(node.body)
            right = self._shape_of(node.orelse)
            return left if left is right else Shape.MIXED
        return Shape.OPAQUE


def analyze_function(node: ast.AST) -> FunctionDataflow:
    """Run the shape pass over one function definition's body."""
    flow = FunctionDataflow()
    runner = _Pass(flow)
    body = getattr(node, "body", None)
    if isinstance(body, list):
        for stmt in body:
            runner.visit(stmt)
    else:
        runner.visit(node)
    return flow
