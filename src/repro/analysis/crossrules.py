"""Cross-module rules: whole-program invariant verification.

Each rule here needs facts from more than one file at once — exactly
what the per-file rules in :mod:`repro.analysis.rules` cannot see.
They run against a :class:`ProjectContext` (symbol tables + import
graph + call graph + dataflow summaries) and report through the same
:class:`~repro.analysis.lint.Finding` type, so suppression comments,
JSON output, and the CLI exit-code contract all carry over.

The four shipped rules mirror the subsystem invariants the runtime
layers enforce dynamically:

* ``guarded-helper-path`` — static counterpart of ``raceaudit``:
  every call edge into a helper that declares
  ``assert_holds(self.<lock>)`` must lexically hold that lock (or
  re-assert it, propagating the obligation to its own callers).
  Scheduled-callback edges hold nothing by construction.
* ``telemetry-drift`` — the emit side (``Telemetry`` registries,
  ``SelfReporter`` datapoints) and the query side (``.get()`` readers,
  dashboard prefix tuples) of the metric namespace must agree.
* ``ack-escape`` — in the proxy/publisher ingest path, every failure
  handler and every ``except`` block inside an accounting class must
  reach a conservation sink (an ``on_ack`` call or a
  written/failed/dead-lettered ledger write).
* ``hotpath-copy`` — dataflow extension of ``pointwise-hotloop``:
  flags copies materialized from columnar views in ``tsdb/`` block
  code (``np.array(view)``, ``.tolist()``, ``list(iter_points())``).

Cross rules register in their own catalogue (``cross_rules()``), not
the per-file ``_REGISTRY`` — the per-file contract (one file in,
findings out) does not fit them and the per-file tests pin that
registry's exact contents.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

from .dataflow import FunctionDataflow, analyze_function
from .graph import CallGraph, ImportGraph
from .lint import Finding
from .project import ClassInfo, FunctionInfo, ModuleInfo, ProjectModel, dotted_expr

__all__ = [
    "AckEscapeRule",
    "CrossRule",
    "GuardedHelperPathRule",
    "HotPathCopyRule",
    "ProjectContext",
    "TelemetryDriftRule",
    "cross_rules",
    "run_cross_rules",
]


@dataclass
class ProjectContext:
    """Everything a cross-module rule may query, built once per run."""

    model: ProjectModel
    imports: ImportGraph
    calls: CallGraph
    _flows: Dict[str, FunctionDataflow] = field(default_factory=dict)

    @classmethod
    def build(cls, model: ProjectModel) -> "ProjectContext":
        return cls(model=model, imports=ImportGraph(model), calls=CallGraph(model))

    def flow_of(self, fn: FunctionInfo) -> FunctionDataflow:
        found = self._flows.get(fn.qualname)
        if found is None:
            found = analyze_function(fn.node)
            self._flows[fn.qualname] = found
        return found


class CrossRule:
    """Base class for whole-program rules."""

    id: str = ""
    summary: str = ""

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self, module: ModuleInfo, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=str(module.path),
            line=line,
            col=col,
            message=message,
            suppressed=module.source.is_suppressed(self.id, line),
        )


_CROSS_REGISTRY: List[Type[CrossRule]] = []


def register_cross(cls: Type[CrossRule]) -> Type[CrossRule]:
    _CROSS_REGISTRY.append(cls)
    return cls


def cross_rules() -> List[CrossRule]:
    """Fresh instances of every cross rule, sorted by id."""
    return sorted((cls() for cls in _CROSS_REGISTRY), key=lambda r: r.id)


def run_cross_rules(
    ctx: ProjectContext, rules: Optional[Iterable[CrossRule]] = None
) -> List[Finding]:
    """Run rules over the context; findings sorted (path, line, rule)."""
    out: List[Finding] = []
    for rule in rules if rules is not None else cross_rules():
        out.extend(rule.check(ctx))
    out.sort(key=lambda f: (f.path, f.line, f.rule, f.col, f.message))
    return out


# ----------------------------------------------------------------------
# 1. guarded-helper-path
# ----------------------------------------------------------------------
def _lock_tail(dotted: str) -> str:
    return dotted.rpartition(".")[2]


@register_cross
class GuardedHelperPathRule(CrossRule):
    """Callers of ``assert_holds`` helpers must hold the asserted lock.

    The runtime contract is one-sided: the helper crashes (under
    raceaudit) when entered unlocked, but only on paths the chaos
    harness happens to exercise.  This closes it statically: every
    resolved call edge into a contract-carrying function is checked
    for the lock being lexically held at the call site.  A caller that
    re-asserts the same lock satisfies the edge — the obligation
    propagates outward to *its* callers, which are checked the same
    way.  Lock identity is matched on the attribute tail
    (``self._state_lock`` vs a cross-object ``self.pub._state_lock``).
    """

    id = "guarded-helper-path"
    summary = (
        "call chains into assert_holds() helpers must hold the asserted lock"
    )

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        for fn in ctx.model.iter_functions():
            if not fn.asserted_locks:
                continue
            required = {_lock_tail(lock) for lock in fn.asserted_locks}
            for edge in ctx.calls.callers(fn.qualname):
                caller = ctx.model.functions.get(edge.caller)
                if caller is None or caller.qualname == fn.qualname:
                    continue
                held = {_lock_tail(lock) for lock in edge.site.held_locks}
                held |= {_lock_tail(lock) for lock in caller.asserted_locks}
                missing = sorted(required - held)
                if not missing:
                    continue
                how = (
                    "via a scheduled callback (no locks are held when it runs)"
                    if edge.site.scheduled
                    else "without holding it"
                )
                yield self.finding(
                    caller.module,
                    edge.site.line,
                    edge.site.col,
                    f"{caller.qualname} calls {fn.qualname} {how}; the callee "
                    f"asserts {', '.join(sorted(fn.asserted_locks))} "
                    f"(missing: {', '.join(missing)}) — hold the lock at the "
                    "call site or re-assert it in the caller",
                )


# ----------------------------------------------------------------------
# 2. telemetry-drift
# ----------------------------------------------------------------------
#: trailing attributes that mark a registry handle as written to
_EMIT_ATTRS = frozenset({"inc", "add", "observe", "record", "set", "mark", "update"})
#: trailing attributes that mark a registry handle as read
_QUERY_ATTRS = frozenset(
    {"get", "snapshot", "quantile", "percentile", "rate", "value"}
)
#: registry factory methods whose first argument names the series
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram", "meter"})
#: derived series appended by the histogram exporter
_HISTOGRAM_SUFFIXES = (".p50", ".p95", ".p99", ".mean", ".count")


@dataclass(frozen=True)
class _MetricSite:
    name: str
    module: str
    line: int
    col: int
    is_histogram: bool


@register_cross
class TelemetryDriftRule(CrossRule):
    """Emitted and queried metric namespaces must agree.

    Emit sites are registry-factory calls whose handle is written
    (``...counter("proxy.retries").inc()``) plus ``SelfReporter``
    ``_datapoint`` writes; query sites are handles that are read
    (``....get()``) and dashboard prefix tuples (module-level tuples
    of dot-terminated string literals).  A bare handle (assigned and
    used later) is counted on both sides — flow-insensitively it both
    creates and may read the series.  Dynamic (f-string) names are
    skipped: they emit unknown names, so only exact-name queries are
    checked against the emitted set, never prefixes.
    """

    id = "telemetry-drift"
    summary = "metric names must be both emitted and queried somewhere"

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        emits: List[_MetricSite] = []
        queries: List[_MetricSite] = []
        prefixes: Set[str] = set()
        for name in sorted(ctx.model.modules):
            module = ctx.model.modules[name]
            self._collect_sites(module, emits, queries)
            prefixes |= self._collect_prefixes(module)

        emitted_names: Set[str] = set()
        for site in emits:
            emitted_names.add(site.name)
            if site.is_histogram:
                emitted_names.update(
                    site.name + suffix for suffix in _HISTOGRAM_SUFFIXES
                )
        queried_names = {site.name for site in queries}
        emitted_heads = {name.split(".", 1)[0] for name in emitted_names}

        def covered(name: str) -> bool:
            if name in queried_names:
                return True
            return any(name.startswith(prefix) for prefix in prefixes)

        seen: Set[Tuple[str, str]] = set()
        for site in emits:
            variants = [site.name]
            if site.is_histogram:
                variants += [site.name + s for s in _HISTOGRAM_SUFFIXES]
            if any(covered(v) for v in variants):
                continue
            key = ("emit", site.name)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                ctx.model.modules[site.module],
                site.line,
                site.col,
                f"metric '{site.name}' is emitted but never queried — no "
                "reader calls .get() on it and no dashboard prefix tuple "
                "covers it; wire it into a panel or drop the emission",
            )
        for site in queries:
            if site.name in emitted_names:
                continue
            if site.name.split(".", 1)[0] not in emitted_heads:
                # Data-series namespaces (sensor names etc.) are out of
                # scope; only self-telemetry families are checked.
                continue
            key = ("query", site.name)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                ctx.model.modules[site.module],
                site.line,
                site.col,
                f"metric '{site.name}' is queried but never emitted — the "
                "reader will only ever see zeros; fix the name or add the "
                "emitting site",
            )

    # ------------------------------------------------------------------
    def _collect_sites(
        self,
        module: ModuleInfo,
        emits: List[_MetricSite],
        queries: List[_MetricSite],
    ) -> None:
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(module.source.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(module.source.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            name = first.value
            if "." not in name or " " in name:
                continue
            site = _MetricSite(
                name=name,
                module=module.name,
                line=node.lineno,
                col=node.col_offset,
                is_histogram=func.attr == "histogram",
            )
            if func.attr == "_datapoint":
                emits.append(site)
                continue
            if func.attr not in _METRIC_FACTORIES:
                continue
            trailing = parents.get(node)
            if isinstance(trailing, ast.Attribute):
                if trailing.attr in _EMIT_ATTRS:
                    emits.append(site)
                    continue
                if trailing.attr in _QUERY_ATTRS:
                    queries.append(site)
                    continue
            # Bare handle: registered and possibly read elsewhere.
            emits.append(site)
            queries.append(site)

    @staticmethod
    def _collect_prefixes(module: ModuleInfo) -> Set[str]:
        out: Set[str] = set()
        for stmt in module.source.tree.body:
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if not isinstance(value, (ast.Tuple, ast.List)) or len(value.elts) < 2:
                continue
            literals = [
                e.value
                for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            if len(literals) == len(value.elts) and all(
                lit.endswith(".") for lit in literals
            ):
                out.update(literals)
        return out


# ----------------------------------------------------------------------
# 3. ack-escape
# ----------------------------------------------------------------------
_SINK_ATTR_RE = re.compile(r"written|failed|dead_letter|dropped")
_FAILURE_NAME_RE = re.compile(r"timeout|deadline|bounce|exhaust|fail")
_ACK_MODULE_TAILS = frozenset({"proxy", "publish"})


@register_cross
class AckEscapeRule(CrossRule):
    """No batch may exit the ingest failure path unaccounted.

    Scope: classes in the proxy/publisher modules that *own* at least
    one conservation sink — a method that calls ``on_ack`` or writes a
    written/failed/dead-lettered ledger attribute.  (Classes with no
    sinks, like circuit breakers, do bookkeeping, not accounting.)
    Within scope, two escape shapes are flagged:

    * a failure-handler method (``*timeout*``, ``*deadline*``,
      ``*fail*``, …) from which no sink is reachable through the call
      graph — the failure is observed but the batch vanishes;
    * an ``except`` block that neither re-raises nor reaches a sink —
      the classic swallowed-exception escape hatch.
    """

    id = "ack-escape"
    summary = "ingest failure paths must reach ack-conservation accounting"

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        for name in sorted(ctx.model.modules):
            if name.rpartition(".")[2] not in _ACK_MODULE_TAILS:
                continue
            module = ctx.model.modules[name]
            for cls_name in sorted(module.classes):
                yield from self._check_class(ctx, module, module.classes[cls_name])

    def _check_class(
        self, ctx: ProjectContext, module: ModuleInfo, cls: ClassInfo
    ) -> Iterator[Finding]:
        sinks = {
            m.qualname for m in cls.methods.values() if self._is_sink(m)
        }
        if not sinks:
            return
        reaches = {
            m.name
            for m in cls.methods.values()
            if ctx.calls.can_reach(m.qualname, sinks)
        }
        for meth_name in sorted(cls.methods):
            meth = cls.methods[meth_name]
            if (
                _FAILURE_NAME_RE.search(meth.name)
                and meth.name not in reaches
            ):
                yield self.finding(
                    module,
                    meth.lineno,
                    0,
                    f"failure handler {meth.qualname} never reaches an "
                    "ack-conservation sink (on_ack / written/failed/"
                    "dead-lettered ledger write) — the batch outcome escapes "
                    "accounting",
                )
            yield from self._check_handlers(module, cls, meth, reaches)

    def _check_handlers(
        self,
        module: ModuleInfo,
        cls: ClassInfo,
        meth: FunctionInfo,
        reaches: Set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(meth.node):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._handler_accounts(node, reaches):
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"except block in {meth.qualname} neither re-raises nor "
                "reaches an ack-conservation sink — a failed batch escapes "
                f"{cls.name}'s accounting here",
            )

    @staticmethod
    def _is_sink(meth: FunctionInfo) -> bool:
        if any(c.callee.rpartition(".")[2] == "on_ack" for c in meth.calls):
            return True
        for node in ast.walk(meth.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and _SINK_ATTR_RE.search(node.attr)
            ):
                return True
        return False

    @staticmethod
    def _handler_accounts(handler: ast.ExceptHandler, reaches: Set[str]) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and _SINK_ATTR_RE.search(node.attr)
            ):
                return True
            if isinstance(node, ast.Call):
                dotted = dotted_expr(node.func)
                if dotted is None:
                    continue
                tail = dotted.rpartition(".")[2]
                if tail == "on_ack" or tail in reaches:
                    return True
        return False


# ----------------------------------------------------------------------
# 4. hotpath-copy
# ----------------------------------------------------------------------
_REFERENCE_RE = re.compile(r"reference", re.IGNORECASE)


@register_cross
class HotPathCopyRule(CrossRule):
    """Columnar block code must not materialize copies of views.

    ``pointwise-hotloop`` catches syntactic per-point loops; this rule
    follows the dataflow: a local classified as a *view* (``.timestamps``
    / ``.values`` reads, ``np.asarray`` results, slices of either) that
    flows into ``np.array(...)``/``list(...)`` is a hidden O(n) copy on
    the block hot path.  ``.tolist()`` and ``list(iter_points())`` are
    flagged unconditionally.  Reference-path code (anything with
    "reference" in its qualified name) is exempt — it exists to be
    slow and obvious.
    """

    id = "hotpath-copy"
    summary = "tsdb block code must not copy columnar views"

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        for fn in ctx.model.iter_functions():
            if "tsdb" not in fn.module.name.split("."):
                continue
            if _REFERENCE_RE.search(fn.qualname):
                continue
            flow = ctx.flow_of(fn)
            for line, text in flow.view_copies:
                yield self.finding(
                    fn.module,
                    line,
                    0,
                    f"{fn.qualname} materializes a copy of a columnar view: "
                    f"{text} — operate on the view or use np.asarray",
                )
            yield from self._syntactic(fn)

    def _syntactic(self, fn: FunctionInfo) -> Iterator[Finding]:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "tolist":
                yield self.finding(
                    fn.module,
                    node.lineno,
                    node.col_offset,
                    f"{fn.qualname} calls .tolist() — boxes every element "
                    "into Python objects on the block hot path",
                )
            dotted = dotted_expr(func)
            if dotted == "list" and node.args:
                inner = node.args[0]
                if (
                    isinstance(inner, ast.Call)
                    and (dotted_expr(inner.func) or "").rpartition(".")[2]
                    == "iter_points"
                ):
                    yield self.finding(
                        fn.module,
                        node.lineno,
                        node.col_offset,
                        f"{fn.qualname} materializes list(iter_points()) — "
                        "boxes the whole block pointwise",
                    )
