"""The repro-lint rule catalogue.

Thirteen rules tuned to this repository's correctness invariants:

===================  ===================================================
``unseeded-rng``     RNG created or used without an explicit seed
                     (reproducibility: every window must be
                     deterministic per ``(seed, unit)``)
``float-equality``   ``==`` / ``!=`` against float literals in the
                     ``core/`` detector math (bit-identity is asserted
                     with tolerances or exact integer flags, never
                     float equality)
``frozen-setattr``   ``object.__setattr__`` outside ``__post_init__``
                     (the only sanctioned frozen-dataclass escape
                     hatch)
``broad-except``     bare ``except:``, ``except BaseException:``, or an
                     ``except Exception:`` that silently swallows
``mutable-default``  mutable default argument values
``guarded-by``       access to a ``# guarded-by: <lock>`` attribute
                     outside a ``with self.<lock>:`` block (or a
                     function asserting ``assert_holds(self.<lock>)``)
``unbounded-retry``  a retry path that re-schedules itself with no
                     attempt bound or budget in sight (every retry in
                     the ingest path must be bounded — see DESIGN.md
                     "Failure model and delivery guarantees")
``rogue-registry``   ``MetricsRegistry()`` constructed outside
                     ``repro.obs`` (metric identity must flow through
                     the :class:`~repro.obs.Telemetry` routing; use
                     ``component_registry(...)`` for standalone
                     defaults)
``unbounded-cache``  a dict/list attribute named like a cache with no
                     eviction bound in its class (the serving tier's
                     memory-safety contract: every cache is LRU/TTL
                     bounded or explicitly cleared)
``pointwise-hotloop``  a ``for`` loop (or comprehension) over
                     ``<series>.points`` / ``<series>.iter_points()``
                     inside ``tsdb/`` (the hot path is columnar:
                     iterate the block's ``timestamps``/``values``
                     arrays instead of boxing per-point tuples)
``deadline-free-rpc``  an ``HTableClient`` constructed without an
                     explicit ``rpc_timeout`` (or with it disabled):
                     an in-flight RPC to a crashed server never
                     replies, so a deadline-free client hangs forever
                     where the replicated read path would have failed
                     over)
``unsuppressed-alert-emit``  an alert emission site outside
                     ``repro.alerting`` — ``alert.*`` series writes,
                     ``Incident(...)`` construction, or direct
                     ``record_incident``/``record_resolve`` calls —
                     bypassing the dedup/suppression layer (route
                     events through ``AlertManager.observe`` instead)
``unbounded-time-range``  a ``TsdbQuery`` constructed with an end bound
                     that constant-folds to the open-axis sentinel
                     (``>= 2**31 - 1``) outside tests/benchmarks: such
                     a query scans the whole time axis, defeating the
                     lifecycle tier's rollup routing and retention
                     floors (bound the range, or suppress with a
                     justification where open-ended is the point)
===================  ===================================================

Each rule is registered with :func:`repro.analysis.lint.register` and
suppressable per line via ``# repro-lint: ignore[<id>]``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set

from .lint import Finding, Rule, SourceFile, register

__all__ = [
    "BroadExceptRule",
    "DeadlineFreeRpcRule",
    "FloatEqualityRule",
    "FrozenSetattrRule",
    "GuardedByRule",
    "MutableDefaultRule",
    "PointwiseHotloopRule",
    "RogueRegistryRule",
    "UnboundedCacheRule",
    "UnboundedRetryRule",
    "UnboundedTimeRangeRule",
    "UnseededRngRule",
    "UnsuppressedAlertEmitRule",
]


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
@register
class UnseededRngRule(Rule):
    """Unseeded or global-state RNG use.

    Flags, resolving ``import`` aliases:

    * ``numpy.random.default_rng()`` with no seed argument;
    * any call into numpy's *legacy global* RNG
      (``np.random.normal`` / ``.rand`` / ``.seed`` / ...);
    * stdlib ``random`` module-level functions (global RNG) and
      ``random.Random()`` constructed without a seed.
    """

    id = "unseeded-rng"
    summary = "RNG created or used without an explicit seed"

    # numpy.random attributes that are *not* the legacy global RNG
    _NUMPY_SAFE = {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
    _STDLIB_GLOBAL = {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }

    def check(self, source: SourceFile) -> Iterator[Finding]:
        numpy_names: Set[str] = set()  # "numpy" / "np"
        numpy_random_names: Set[str] = set()  # "numpy.random" aliases
        stdlib_random_names: Set[str] = set()  # "random" aliases
        direct_default_rng: Set[str] = set()  # from numpy.random import default_rng
        direct_global_fns: Set[str] = set()  # from random import random, ...

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        numpy_names.add(local)
                    elif alias.name == "numpy.random":
                        numpy_random_names.add(alias.asname or "numpy.random")
                        if alias.asname is None:
                            numpy_names.add("numpy")
                    elif alias.name == "random":
                        stdlib_random_names.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name == "default_rng":
                            direct_default_rng.add(alias.asname or alias.name)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_random_names.add(alias.asname or "random")
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name in self._STDLIB_GLOBAL:
                            direct_global_fns.add(alias.asname or alias.name)

        numpy_random_prefixes = {f"{name}.random" for name in numpy_names}
        numpy_random_prefixes.update(numpy_random_names)

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            head, _, attr = dotted.rpartition(".")
            unseeded = not node.args and not node.keywords
            if head in numpy_random_prefixes:
                if attr == "default_rng":
                    if unseeded:
                        yield self.finding(
                            source,
                            node,
                            "default_rng() without a seed: runs are not "
                            "reproducible; pass an explicit seed",
                        )
                elif attr not in self._NUMPY_SAFE:
                    yield self.finding(
                        source,
                        node,
                        f"legacy global numpy RNG call {dotted}(): use a "
                        "seeded np.random.default_rng(...) Generator",
                    )
            elif dotted in direct_default_rng and unseeded:
                yield self.finding(
                    source,
                    node,
                    "default_rng() without a seed: runs are not "
                    "reproducible; pass an explicit seed",
                )
            elif head in stdlib_random_names:
                if attr == "Random":
                    if unseeded:
                        yield self.finding(
                            source,
                            node,
                            "random.Random() without a seed: pass an "
                            "explicit seed for reproducibility",
                        )
                elif attr in self._STDLIB_GLOBAL:
                    yield self.finding(
                        source,
                        node,
                        f"stdlib global RNG call {dotted}(): use a seeded "
                        "random.Random(...) (or numpy Generator) instance",
                    )
            elif dotted in direct_global_fns:
                yield self.finding(
                    source,
                    node,
                    f"stdlib global RNG call {dotted}(): use a seeded "
                    "random.Random(...) (or numpy Generator) instance",
                )

# ----------------------------------------------------------------------
@register
class FloatEqualityRule(Rule):
    """Float-literal ``==`` / ``!=`` in the detector math (``core/``).

    The detector's parity contracts are either *bit-identical* integer
    flags or tolerance comparisons (``np.isclose``); a float-literal
    equality in ``core/`` is almost always a drifting threshold test.
    Only applies to files with a ``core`` path component so tests and
    benchmarks can compare exact sentinel values freely.
    """

    id = "float-equality"
    summary = "float literal compared with == / != in core/ detector math"

    def applies_to(self, source: SourceFile) -> bool:
        return "core" in source.path.parts

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (lhs, rhs):
                    if isinstance(side, ast.Constant) and isinstance(side.value, float):
                        yield self.finding(
                            source,
                            node,
                            f"float literal {side.value!r} compared with "
                            "==/!=: use math.isclose/np.isclose or an "
                            "explicit tolerance",
                        )
                        break


# ----------------------------------------------------------------------
@register
class FrozenSetattrRule(Rule):
    """``object.__setattr__`` outside ``__post_init__``.

    Frozen dataclasses are this codebase's immutability contract
    (configs, series, row keys); ``object.__setattr__`` is sanctioned
    only inside ``__post_init__`` for normalising fields at
    construction time.  Anywhere else it silently breaks the contract.
    """

    id = "frozen-setattr"
    summary = "object.__setattr__ outside __post_init__"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        yield from self._scan(source.tree.body, source, context=None)

    def _scan(
        self, body: List[ast.stmt], source: SourceFile, context: Optional[str]
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan(stmt.body, source, context=stmt.name)
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._scan(stmt.body, source, context=context)
                continue
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "__setattr__"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "object"
                    and context != "__post_init__"
                ):
                    yield self.finding(
                        source,
                        node,
                        "object.__setattr__ outside __post_init__ breaks "
                        "the frozen-dataclass immutability contract",
                    )


# ----------------------------------------------------------------------
@register
class BroadExceptRule(Rule):
    """Bare / over-broad exception handlers.

    Flags ``except:``, ``except BaseException:`` and an
    ``except Exception:`` whose body only ``pass``es (a silent
    swallow).  Cleanup-and-reraise handlers are legitimate — suppress
    with a justification when the breadth is deliberate.
    """

    id = "broad-except"
    summary = "bare or over-broad exception handler"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    source, node, "bare except: catches SystemExit and "
                    "KeyboardInterrupt; name the exceptions"
                )
            elif isinstance(node.type, ast.Name) and node.type.id == "BaseException":
                yield self.finding(
                    source, node, "except BaseException: catches interpreter "
                    "shutdown signals; name the exceptions"
                )
            elif (
                isinstance(node.type, ast.Name)
                and node.type.id == "Exception"
                and all(isinstance(stmt, ast.Pass) for stmt in node.body)
            ):
                yield self.finding(
                    source, node, "except Exception: pass silently swallows "
                    "every error; handle or narrow it"
                )


# ----------------------------------------------------------------------
@register
class MutableDefaultRule(Rule):
    """Mutable default argument values (shared across calls)."""

    id = "mutable-default"
    summary = "mutable default argument value"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        source,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and create inside the function",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )


# ----------------------------------------------------------------------
@register
class GuardedByRule(Rule):
    """Guarded attribute accessed outside its lock.

    The convention: annotate the owning assignment (usually in
    ``__init__``) with ``# guarded-by: <lock_attr>``.  Every other
    method of that class must then touch ``self.<attr>`` only

    * lexically inside ``with self.<lock_attr>:``, or
    * in a function that calls ``assert_holds(self.<lock_attr>)``
      (the runtime auditor enforces the same contract when enabled).

    ``__init__`` / ``__post_init__`` are exempt: the object is not yet
    shared during construction.
    """

    id = "guarded-by"
    summary = "guarded attribute accessed outside its lock"

    _EXEMPT = {"__init__", "__post_init__"}

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                guards = self._collect_guards(node, source)
                if guards:
                    yield from self._check_class(node, guards, source)

    def _collect_guards(
        self, cls: ast.ClassDef, source: SourceFile
    ) -> Dict[str, str]:
        """Map guarded attribute name -> lock attribute name."""
        guards: Dict[str, str] = {}
        for node in ast.walk(cls):
            lock = source.guards.get(getattr(node, "lineno", -1))
            if lock is None:
                continue
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guards[target.attr] = lock
                elif isinstance(target, ast.Name):  # class-level declaration
                    guards[target.id] = lock
        return guards

    def _check_class(
        self, cls: ast.ClassDef, guards: Dict[str, str], source: SourceFile
    ) -> Iterator[Finding]:
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in self._EXEMPT:
                continue
            held = self._asserted_locks(stmt)
            for body_stmt in stmt.body:
                yield from self._scan(body_stmt, guards, held, source)

    def _asserted_locks(self, fn: ast.AST) -> Set[str]:
        """Locks the function declares held via ``assert_holds(self.X)``."""
        held: Set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and self._callee_name(node.func) == "assert_holds"
                and node.args
                and isinstance(node.args[0], ast.Attribute)
                and isinstance(node.args[0].value, ast.Name)
                and node.args[0].value.id == "self"
            ):
                held.add(node.args[0].attr)
        return held

    @staticmethod
    def _callee_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _scan(
        self,
        node: ast.AST,
        guards: Dict[str, str],
        held: Set[str],
        source: SourceFile,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                expr = item.context_expr
                # ``with self.<lock>:`` — both plain and audited locks.
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                ):
                    acquired.add(expr.attr)
                yield from self._scan(expr, guards, held, source)
            inner = held | acquired
            for child in node.body:
                yield from self._scan(child, guards, inner, source)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guards
            and guards[node.attr] not in held
        ):
            yield self.finding(
                source,
                node,
                f"self.{node.attr} is guarded by self.{guards[node.attr]} "
                f"(# guarded-by) but accessed without holding it",
            )
            return
        for child in ast.iter_child_nodes(node):
            yield from self._scan(child, guards, held, source)


# ----------------------------------------------------------------------
@register
class RogueRegistryRule(Rule):
    """Bare ``MetricsRegistry()`` construction outside ``repro.obs``.

    A registry constructed ad hoc is an island: its counters never
    appear in the deployment's telemetry trees, so self-reporting and
    the platform-health dashboard silently miss them.  All registry
    construction lives in :mod:`repro.obs.telemetry`; everything else
    takes a ``metrics=`` argument or calls
    :func:`~repro.obs.telemetry.component_registry`.  Flags both direct
    calls and ``default_factory=MetricsRegistry`` dataclass fields.
    Tests, benchmarks, and examples (outside the package) are exempt.
    """

    id = "rogue-registry"
    summary = "MetricsRegistry() constructed outside repro.obs"

    _ADVICE = (
        "construct registries through repro.obs (component_registry(...) "
        "or Telemetry().registry(...)) so the metrics join a telemetry tree"
    )

    def applies_to(self, source: SourceFile) -> bool:
        parts = source.path.parts
        return "repro" in parts and "obs" not in parts

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is not None and dotted.rpartition(".")[2] == "MetricsRegistry":
                yield self.finding(
                    source, node, f"bare MetricsRegistry() call: {self._ADVICE}"
                )
                continue
            for keyword in node.keywords:
                value = keyword.value
                name = _dotted_name(value) if isinstance(value, (ast.Name, ast.Attribute)) else None
                if (
                    keyword.arg == "default_factory"
                    and name is not None
                    and name.rpartition(".")[2] == "MetricsRegistry"
                ):
                    yield self.finding(
                        source,
                        value,
                        f"default_factory=MetricsRegistry: {self._ADVICE}",
                    )


# ----------------------------------------------------------------------
@register
class UnboundedRetryRule(Rule):
    """Retry loop with no attempt bound or budget in sight.

    The ingest path's delivery accounting only converges because every
    retry is *bounded*: a batch that keeps failing must eventually be
    declared permanently failed (or dead-lettered), not re-scheduled
    forever.  This rule flags the shape that breaks that contract — a
    function in a **retry context** that re-schedules work
    (``sim.schedule(...)``) or spins (``while True``) with no **bound
    evidence** anywhere in scope.

    A function is a retry context when any of:

    * its name mentions retrying (``retry``/``resend``/``resubmit``/
      ``requeue``/``redispatch``/``retransmit``);
    * it schedules a callback whose name mentions retrying;
    * it bumps a retry counter (``self.retried += 1`` or
      ``counter("...retries...").inc()``).

    Bound evidence is any identifier naming a limit or an attempt
    count: words like ``attempt``/``attempts``/``budget``/``tries``,
    or any ``max_*`` name.  Evidence in an enclosing function counts
    for its closures (the bound check often lives one frame up).

    Plain periodic self-rescheduling (``self._tick`` scheduling
    ``self._tick``) is exempt — that is a clock, not a retry.
    """

    id = "unbounded-retry"
    summary = "retry path re-schedules with no attempt bound or budget"

    _RETRY = re.compile(r"retr(y|i)|resend|resubmit|requeue|redispatch|retransmit", re.I)
    _BOUND_WORDS = {"attempt", "attempts", "budget", "tries", "try", "retries_left"}

    def check(self, source: SourceFile) -> Iterator[Finding]:
        yield from self._walk(source.tree.body, source, inherited=False)

    # ------------------------------------------------------------------
    def _walk(
        self, body: List[ast.stmt], source: SourceFile, inherited: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bounded = inherited or self._has_bound_evidence(stmt)
                if not bounded and self._is_retry_context(stmt):
                    yield from self._flag_unbounded(stmt, source)
                yield from self._walk(stmt.body, source, inherited=bounded)
            elif isinstance(stmt, ast.ClassDef):
                # A class body resets the scope: methods do not close
                # over module-level bounds.
                yield from self._walk(stmt.body, source, inherited=False)
            else:
                for child in ast.walk(stmt):
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        bounded = inherited or self._has_bound_evidence(child)
                        if not bounded and self._is_retry_context(child):
                            yield from self._flag_unbounded(child, source)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def _is_retry_context(self, fn: ast.AST) -> bool:
        name = getattr(fn, "name", "")
        if self._RETRY.search(name):
            return True
        for node in self._own_nodes(fn):
            # self.retried += 1 / report.retransmits += 1
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and self._RETRY.search(node.target.attr)
            ):
                return True
            if isinstance(node, ast.Call):
                # counter("...retries...").inc(...)
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "inc"
                    and isinstance(node.func.value, ast.Call)
                    and self._callee_name(node.func.value.func) == "counter"
                    and node.func.value.args
                    and isinstance(node.func.value.args[0], ast.Constant)
                    and isinstance(node.func.value.args[0].value, str)
                    and self._RETRY.search(node.func.value.args[0].value)
                ):
                    return True
                # schedule(..., self._resend, ...)
                if self._is_schedule(node):
                    callback = self._scheduled_callback(node)
                    if callback is not None and self._RETRY.search(
                        callback.rpartition(".")[2]
                    ) and not self._is_self_reschedule(fn, callback):
                        return True
        return False

    def _has_bound_evidence(self, fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            name: Optional[str] = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            elif isinstance(node, ast.arg):
                name = node.arg
            if name is None:
                continue
            lowered = name.lower()
            if lowered.startswith("max"):
                return True
            if self._BOUND_WORDS & set(lowered.split("_")):
                return True
        return False

    # ------------------------------------------------------------------
    # flagging
    # ------------------------------------------------------------------
    def _flag_unbounded(self, fn: ast.AST, source: SourceFile) -> Iterator[Finding]:
        name = getattr(fn, "name", "<lambda>")
        for node in self._own_nodes(fn):
            if isinstance(node, ast.Call) and self._is_schedule(node):
                callback = self._scheduled_callback(node)
                if callback is not None and self._is_self_reschedule(fn, callback):
                    continue
                yield self.finding(
                    source,
                    node,
                    f"{name}() re-schedules a retry with no attempt bound "
                    "or budget in scope; cap it (max_retries / budget) so "
                    "delivery accounting can converge",
                )
            elif (
                isinstance(node, ast.While)
                and isinstance(node.test, ast.Constant)
                and node.test.value is True
                and not any(isinstance(sub, ast.Break) for sub in ast.walk(node))
            ):
                yield self.finding(
                    source,
                    node,
                    f"{name}() spins retries in a while True with no break, "
                    "bound, or budget; cap the attempts",
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
        """Walk ``fn`` without descending into nested function defs."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_schedule(node: ast.Call) -> bool:
        return (
            isinstance(node.func, ast.Attribute) and node.func.attr == "schedule"
        ) or (isinstance(node.func, ast.Name) and node.func.id == "schedule")

    @staticmethod
    def _scheduled_callback(node: ast.Call) -> Optional[str]:
        if len(node.args) >= 2:
            return _dotted_name(node.args[1])
        return None

    @staticmethod
    def _is_self_reschedule(fn: ast.AST, callback: str) -> bool:
        return callback.rpartition(".")[2] == getattr(fn, "name", "")

    @staticmethod
    def _callee_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None


# ----------------------------------------------------------------------
@register
class PointwiseHotloopRule(Rule):
    """Per-point Python loop over a series in the TSDB hot path.

    The columnar redesign moved ingest and query onto
    :class:`~repro.tsdb.blocks.SeriesBlock` kernels; a ``for`` loop (or
    comprehension) over ``<series>.points`` or
    ``<series>.iter_points()`` inside ``tsdb/`` reintroduces one boxed
    tuple per sample and undoes the batch win.  Iterate the block's
    ``timestamps``/``values`` columns (zero-copy numpy views) instead.
    Compatibility shims and genuinely cold paths may suppress with a
    justification.
    """

    id = "pointwise-hotloop"
    summary = "per-point loop over Series points in the tsdb hot path"

    _ADVICE = (
        "iterate the block's timestamps/values columns (or use a "
        "SeriesBlock kernel) instead of boxing per-point tuples"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return "tsdb" in source.path.parts

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            iterables: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
            for expr in iterables:
                shape = self._pointwise_shape(expr)
                if shape is not None:
                    yield self.finding(
                        source,
                        expr,
                        f"per-point loop over {shape} in tsdb/: {self._ADVICE}",
                    )

    @staticmethod
    def _pointwise_shape(expr: ast.expr) -> Optional[str]:
        # for p in <obj>.points:
        if isinstance(expr, ast.Attribute) and expr.attr == "points":
            return f"{_dotted_name(expr) or '<...>.points'}"
        # for p in <obj>.iter_points():
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "iter_points"
        ):
            return f"{_dotted_name(expr.func) or '<...>.iter_points'}()"
        # for i, p in enumerate(<obj>.points):
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in {"enumerate", "zip", "reversed"}
        ):
            for arg in expr.args:
                inner = PointwiseHotloopRule._pointwise_shape(arg)
                if inner is not None:
                    return inner
        return None


# ----------------------------------------------------------------------
@register
class DeadlineFreeRpcRule(Rule):
    """RPC client constructed without a per-RPC deadline.

    A crashed RegionServer never answers RPCs that were already in
    flight when it died — only the deadline timer turns that silence
    into a retry (and, on the replicated read path, a failover to a
    follower).  An :class:`~repro.hbase.client.HTableClient` built
    without an explicit ``rpc_timeout`` therefore hangs for the whole
    crash-detection window; one built with ``rpc_timeout=None``
    disables the timer outright.  Every in-package construction site
    must pass an explicit, non-None ``rpc_timeout=``.  Tests,
    benchmarks and examples (outside the package tree) are exempt, as
    are deliberate sites suppressed with a justification.
    """

    id = "deadline-free-rpc"
    summary = "HTableClient constructed without an explicit rpc_timeout"

    _CLIENTS = {"HTableClient"}

    def applies_to(self, source: SourceFile) -> bool:
        return "repro" in source.path.parts

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None or dotted.rpartition(".")[2] not in self._CLIENTS:
                continue
            timeout = next(
                (kw.value for kw in node.keywords if kw.arg == "rpc_timeout"), None
            )
            if timeout is None:
                yield self.finding(
                    source,
                    node,
                    f"{dotted}(...) without rpc_timeout=: an in-flight RPC "
                    "to a crashed server never replies, so the client "
                    "hangs instead of retrying/failing over; pass an "
                    "explicit per-RPC deadline",
                )
            elif isinstance(timeout, ast.Constant) and timeout.value is None:
                yield self.finding(
                    source,
                    node,
                    f"{dotted}(rpc_timeout=None) disables the per-RPC "
                    "deadline; bound every RPC so crashes surface as "
                    "retryable timeouts",
                )


# ----------------------------------------------------------------------
@register
class UnboundedCacheRule(Rule):
    """A dict/list used as a cache with no eviction bound in sight.

    The serving tier's memory-safety contract: any attribute that
    *names itself a cache* (``cache``/``memo`` in the attribute name)
    and is initialised to an empty ``dict``/``list``/``set``/
    ``OrderedDict`` must come with eviction somewhere in its class —
    otherwise it grows for the life of the process (the classic
    result-cache leak this repo's :class:`~repro.serve.cache.ResultCache`
    exists to prevent).

    **Bound evidence** (either silences the rule for the class):

    * structural: ``self.<attr>.pop/popitem/clear(...)`` or
      ``del self.<attr>[...]`` on the *same* attribute anywhere in the
      class;
    * lexical: an identifier in the class naming a limit —
      ``capacity``/``maxsize``/``max_*``/``limit``/``evict``/``ttl``/
      ``lru``/``expires`` — covering designs that delegate eviction.

    Plain flags like ``self._cached = False`` are not containers and
    are never flagged.
    """

    id = "unbounded-cache"
    summary = "dict/list used as a cache with no eviction bound"

    _CACHE_NAME = re.compile(r"cache|memo", re.I)
    _BOUND_NAME = re.compile(r"capacity|maxsize|max_|limit|evict|ttl|lru|expires", re.I)
    _EVICT_METHODS = {"pop", "popitem", "clear", "popleft"}
    _EMPTY_FACTORIES = {"dict", "list", "set", "OrderedDict", "defaultdict", "deque"}

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node, source)

    # ------------------------------------------------------------------
    def _check_class(self, cls: ast.ClassDef, source: SourceFile) -> Iterator[Finding]:
        containers: Dict[str, ast.stmt] = {}
        for node in ast.walk(cls):
            attr, value = self._container_assignment(node)
            if (
                attr is not None
                and value is not None
                and self._CACHE_NAME.search(attr)
                and self._is_empty_container(value)
                and attr not in containers
            ):
                containers[attr] = node  # type: ignore[assignment]
        if not containers:
            return
        evicted, lexical_bound = self._class_evidence(cls)
        if lexical_bound:
            return
        for attr, node in containers.items():
            if attr in evicted:
                continue
            yield self.finding(
                source,
                node,
                f"self.{attr} looks like a cache but nothing in "
                f"{cls.name} ever evicts from it: bound it (LRU/TTL/"
                "capacity) or clear it on a lifecycle edge",
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _container_assignment(node: ast.AST):
        """``(attr, value)`` for ``self.<attr> = <value>`` forms."""
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target: ast.expr = node.targets[0]
            value: Optional[ast.expr] = node.value
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            value = node.value
        else:
            return None, None
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr, value
        return None, None

    def _is_empty_container(self, value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return not getattr(value, "keys", None) and not getattr(value, "elts", None)
        if isinstance(value, ast.Call) and not value.args and not value.keywords:
            name = _dotted_name(value.func)
            return name is not None and name.rpartition(".")[2] in self._EMPTY_FACTORIES
        return False

    def _class_evidence(self, cls: ast.ClassDef):
        evicted: Set[str] = set()
        lexical = False
        for node in ast.walk(cls):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                # self.<attr>.pop(...) / .popitem() / .clear()
                owner = node.func.value
                if (
                    node.func.attr in self._EVICT_METHODS
                    and isinstance(owner, ast.Attribute)
                    and isinstance(owner.value, ast.Name)
                    and owner.value.id == "self"
                ):
                    evicted.add(owner.attr)
            elif isinstance(node, ast.Delete):
                # del self.<attr>[key]
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and isinstance(target.value.value, ast.Name)
                        and target.value.value.id == "self"
                    ):
                        evicted.add(target.value.attr)
            for name in self._identifiers(node):
                if name and self._BOUND_NAME.search(name):
                    lexical = True
        return evicted, lexical

    @staticmethod
    def _identifiers(node: ast.AST) -> Iterator[Optional[str]]:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.arg):
            yield node.arg
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name


# ----------------------------------------------------------------------
@register
class UnsuppressedAlertEmitRule(Rule):
    """Alert emission outside the ``repro.alerting`` dedup/suppression layer.

    The alerting tier's contract is that *every* operator-facing alert
    passes through :class:`~repro.alerting.manager.AlertManager` — the
    dedup, hysteresis, flap-suppression, and roll-up machinery.  A
    module that writes ``alert.*`` series, constructs
    :class:`~repro.alerting.events.Incident` objects, or calls the
    store's ``record_incident``/``record_resolve`` directly has minted
    an unsuppressed alert: it will page on transients the manager would
    have discarded and duplicate incidents the manager would have
    folded.  Route raw detections through ``AlertManager.observe`` as
    :class:`~repro.alerting.events.AnomalyEvent` batches instead.
    Tests and benchmarks (outside the package tree) are exempt.
    """

    id = "unsuppressed-alert-emit"
    summary = "alert emission outside the repro.alerting suppression layer"

    _STORE_METHODS = {"record_incident", "record_resolve"}
    _ADVICE = (
        "route detections through AlertManager.observe (repro.alerting) "
        "so dedup, hysteresis, and flap suppression apply"
    )

    def applies_to(self, source: SourceFile) -> bool:
        parts = source.path.parts
        return "repro" in parts and "alerting" not in parts

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            terminal = dotted.rpartition(".")[2] if dotted is not None else None
            if terminal == "Incident":
                yield self.finding(
                    source,
                    node,
                    f"Incident(...) constructed outside repro.alerting: "
                    f"{self._ADVICE}",
                )
                continue
            if terminal in self._STORE_METHODS:
                yield self.finding(
                    source,
                    node,
                    f"direct {terminal}(...) call bypasses the suppression "
                    f"layer: {self._ADVICE}",
                )
                continue
            metric = self._alert_metric_literal(node, terminal)
            if metric is not None:
                yield self.finding(
                    source,
                    node,
                    f"'{metric}' series written outside repro.alerting: "
                    f"{self._ADVICE}",
                )

    @staticmethod
    def _alert_metric_literal(node: ast.Call, terminal: Optional[str]) -> Optional[str]:
        """The ``alert.*`` metric name when this call mints such a point."""
        if terminal not in {"DataPoint", "make", "from_columns", "SeriesBlock"}:
            return None
        for arg in node.args[:1]:
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and arg.value.startswith("alert.")
            ):
                return arg.value
        for keyword in node.keywords:
            if (
                keyword.arg == "metric"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
                and keyword.value.value.startswith("alert.")
            ):
                return keyword.value.value
        return None


# ----------------------------------------------------------------------
@register
class UnboundedTimeRangeRule(Rule):
    """A ``TsdbQuery`` whose end bound folds to the open-axis sentinel.

    An end of ``2**31 - 1`` (or anything at/above it) means "scan the
    whole time axis": the query can never be served from a rollup tier
    (no tier watermark covers an open end), pins every retention floor
    check, and its cost grows without bound as the fleet's history
    accumulates — exactly the super-linear degradation E18 measures.
    Dashboards and engines must bound their ranges; the few deliberate
    open-axis scans (self-telemetry panels that ride the simulator
    clock) carry a per-line suppression with a justification.

    The end argument is constant-folded through int literals, ``+ - *
    ** //`` arithmetic, module-level and function-local ``NAME =``
    assignments, and both branches of conditional expressions (if
    *either* branch is open, the site can scan the whole axis).  Ends
    that do not fold — call parameters, attribute loads — are assumed
    bounded by the caller.  Tests, benchmarks, and examples (outside
    the package tree) and the ``repro.bench`` harness are exempt.
    """

    id = "unbounded-time-range"
    summary = "TsdbQuery constructed with an effectively unbounded end"

    #: Smallest end value treated as "the whole time axis".
    _OPEN_END = 2**31 - 1

    def applies_to(self, source: SourceFile) -> bool:
        parts = source.path.parts
        return "repro" in parts and "bench" not in parts

    def check(self, source: SourceFile) -> Iterator[Finding]:
        env = self._environment(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None or dotted.rpartition(".")[2] != "TsdbQuery":
                continue
            end = self._end_argument(node)
            if end is None:
                continue
            value = self._fold(end, env)
            if value is not None and value >= self._OPEN_END:
                yield self.finding(
                    source,
                    node,
                    f"query end folds to {value} (>= 2**31-1: the whole "
                    f"time axis) — bound the range so rollup routing and "
                    f"retention floors apply, or suppress with a "
                    f"justification",
                )

    @staticmethod
    def _end_argument(node: ast.Call) -> Optional[ast.expr]:
        """The expression bound to ``end`` (keyword or third positional)."""
        for keyword in node.keywords:
            if keyword.arg == "end":
                return keyword.value
        if len(node.args) >= 3 and not any(
            isinstance(arg, ast.Starred) for arg in node.args[:3]
        ):
            return node.args[2]
        return None

    def _environment(self, tree: ast.AST) -> Dict[str, int]:
        """Foldable ``NAME = <int expr>`` bindings, module + function scope.

        Two passes so a module constant defined before a function still
        resolves inside it regardless of walk order; a name bound more
        than once keeps its *largest* folded value (conservative: the
        rule asks "can this end be open?", not "must it be").
        """
        env: Dict[str, int] = {}
        for _ in range(2):
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign):
                    if len(node.targets) != 1 or not isinstance(
                        node.targets[0], ast.Name
                    ):
                        continue
                    name, value_node = node.targets[0].id, node.value
                elif isinstance(node, ast.AnnAssign):
                    if not isinstance(node.target, ast.Name) or node.value is None:
                        continue
                    name, value_node = node.target.id, node.value
                else:
                    continue
                value = self._fold(value_node, env)
                if value is not None:
                    env[name] = max(value, env.get(name, value))
        return env

    def _fold(self, node: ast.expr, env: Dict[str, int]) -> Optional[int]:
        """Largest int the expression can evaluate to, or ``None``."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) and not isinstance(node.value, bool):
                return node.value
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            value = self._fold(node.operand, env)
            return None if value is None else -value
        if isinstance(node, ast.IfExp):
            branches = [self._fold(node.body, env), self._fold(node.orelse, env)]
            known = [b for b in branches if b is not None]
            return max(known) if known else None
        if isinstance(node, ast.BinOp):
            left = self._fold(node.left, env)
            right = self._fold(node.right, env)
            if left is None or right is None:
                return None
            op = node.op
            if isinstance(op, ast.Add):
                return left + right
            if isinstance(op, ast.Sub):
                return left - right
            if isinstance(op, ast.Mult):
                return left * right
            if isinstance(op, ast.Pow) and 0 <= right <= 64:
                return left**right
            if isinstance(op, ast.FloorDiv) and right != 0:
                return left // right
            return None
        return None
