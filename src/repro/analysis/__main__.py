"""CLI entry point: ``python -m repro.analysis [paths ...]``.

Exit codes: 0 — clean (no unsuppressed findings); 1 — findings; 2 —
usage error.  ``--json`` emits the machine-readable report the CI gate
parses; ``--list-rules`` prints the rule catalogue.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .lint import all_rules, lint_paths


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: repository-specific AST correctness linter",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks", "examples"],
        help="files or directories to lint (default: src tests benchmarks examples)",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings in the human report",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:18s} {rule.summary}")
        return 0

    report = lint_paths(args.paths)
    if report.files_checked == 0:
        print(f"repro-lint: no python files under {args.paths!r}", file=sys.stderr)
        return 2
    if args.json:
        print(report.render_json())
    else:
        print(report.render(show_suppressed=args.show_suppressed))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
