"""CLI entry point: ``python -m repro.analysis [paths ...]``.

Two modes share one executable:

* **per-file** (default) — the original repro-lint pass over loose
  files/directories.
* **``--project ROOT``** — whole-program analysis: per-file rules plus
  the cross-module rules (guarded-helper-path, telemetry-drift,
  ack-escape, hotpath-copy) over one package tree, with baseline,
  incremental-cache, and SARIF support.

Exit codes: 0 — clean (no actionable findings); 1 — findings; 2 —
usage error.  ``--json`` emits the machine-readable report the CI gate
parses; ``--list-rules`` prints both rule catalogues.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .crossrules import cross_rules
from .lint import all_rules, lint_paths
from .reporting import AnalysisCache, Baseline, run_project


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: repository-specific AST correctness linter",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks", "examples"],
        help="files or directories to lint (default: src tests benchmarks examples)",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed/baselined findings in the human report",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    project = parser.add_argument_group("whole-program mode")
    project.add_argument(
        "--project",
        metavar="ROOT",
        help="run whole-program analysis over one package tree (e.g. src/repro)",
    )
    project.add_argument(
        "--baseline",
        metavar="FILE",
        help="committed baseline of accepted finding fingerprints",
    )
    project.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate --baseline FILE from the current findings and exit 0",
    )
    project.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write the report as SARIF 2.1.0 to FILE",
    )
    project.add_argument(
        "--cache",
        metavar="FILE",
        help="on-disk incremental cache keyed by file content hashes",
    )
    project.add_argument(
        "--changed-files",
        nargs="*",
        metavar="PATH",
        default=None,
        help="only these files changed since --cache was written; "
        "per-file rules replay from cache for everything else",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:20s} {rule.summary}")
        for rule in cross_rules():
            print(f"{rule.id:20s} [project] {rule.summary}")
        return 0

    if args.project:
        return _run_project_mode(parser, args)

    for flag in ("baseline", "sarif", "cache"):
        if getattr(args, flag):
            parser.error(f"--{flag} requires --project")
    if args.write_baseline or args.changed_files is not None:
        parser.error("--write-baseline/--changed-files require --project")

    report = lint_paths(args.paths)
    if report.files_checked == 0:
        print(f"repro-lint: no python files under {args.paths!r}", file=sys.stderr)
        return 2
    if args.json:
        print(report.render_json())
    else:
        print(report.render(show_suppressed=args.show_suppressed))
    return 0 if report.ok else 1


def _run_project_mode(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    root = Path(args.project)
    if not root.is_dir():
        parser.error(f"--project root {root} is not a directory")
    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline FILE")
    if args.changed_files is not None and not args.cache:
        parser.error("--changed-files requires --cache FILE")

    baseline = Baseline.load(args.baseline) if args.baseline else None
    cache = AnalysisCache.load(args.cache) if args.cache else None
    report = run_project(
        root,
        baseline=None if args.write_baseline else baseline,
        cache=cache,
        changed_files=args.changed_files,
    )
    if cache is not None and args.cache:
        cache.save(args.cache)

    if args.write_baseline:
        Baseline.from_findings(report.findings).write(args.baseline)
        print(
            f"repro-analysis: wrote {len(report.actionable)} accepted "
            f"findings to {args.baseline}"
        )
        return 0

    if args.sarif:
        Path(args.sarif).write_text(
            report.render_sarif(all_rules(), cross_rules())
        )
    if args.json:
        print(report.render_json())
    else:
        print(report.render(show_suppressed=args.show_suppressed))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
