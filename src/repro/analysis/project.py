"""Whole-program project model: the substrate for cross-module rules.

Per-file linting (:mod:`repro.analysis.lint`) sees one module at a
time, which is exactly the blind spot every recent subsystem invariant
lives in: a ``# guarded-by:`` lock contract crossed by a helper call
chain, a telemetry name emitted in ``tsdb/`` and queried in ``viz/``,
an ingest batch whose accounting sink lives two callbacks away.  This
module parses an entire package **once** into an indexed model that
cross-module rules (:mod:`repro.analysis.crossrules`) can query:

* :class:`ModuleInfo` — one parsed module: its :class:`SourceFile`
  (suppressions + guards included), content hash, and resolved import
  alias table.
* :class:`FunctionInfo` — one function/method with a pre-computed
  summary: outgoing :class:`CallSite`\\ s (lexically-held locks at each
  site, scheduled-callback edges), ``assert_holds`` contracts, guarded
  ``self.<attr>`` accesses, and the nested defs/lambdas folded in
  (closures used as callbacks belong to their owner's behaviour).
* :class:`ClassInfo` — methods, base names, ``# guarded-by:`` table,
  and the ``self.<attr> -> constructed class`` bindings the call graph
  uses to resolve calls through instance attributes.
* :class:`ProjectModel` — the symbol tables plus the
  :class:`~repro.analysis.graph.ImportGraph` and
  :class:`~repro.analysis.graph.CallGraph` built on top, and the
  per-function :mod:`~repro.analysis.dataflow` summaries, computed
  lazily and memoised.

Everything is derived deterministically from file contents — no
timestamps, no filesystem order (directories are walked sorted) — so
two builds over the same tree produce byte-identical reports, which is
what makes the committed baseline reviewable.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .lint import SourceFile

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectError",
    "ProjectModel",
    "dotted_expr",
    "file_digest",
]


class ProjectError(ValueError):
    """The project root is not an analyzable package tree."""


def file_digest(text: str) -> str:
    """Stable content hash used by the incremental cache."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def dotted_expr(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class CallSite:
    """One outgoing call from a function's summary.

    ``callee`` is the dotted expression as written (``self._drain``,
    ``np.asarray``, ``assert_holds``); resolution to a
    :class:`FunctionInfo` happens in the call graph.  ``held_locks``
    are the dotted lock expressions lexically held at the site
    (``with self._lock:`` contributes ``self._lock``).  ``scheduled``
    marks callback-reference edges (``sim.schedule(d, self._tick)``)
    rather than direct invocations.
    """

    callee: str
    line: int
    col: int
    held_locks: Tuple[str, ...]
    scheduled: bool = False


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` read/write inside a method."""

    attr: str
    line: int
    col: int
    held_locks: Tuple[str, ...]
    is_write: bool


class FunctionInfo:
    """A function or method plus the summary cross-rules query."""

    def __init__(
        self,
        qualname: str,
        name: str,
        module: "ModuleInfo",
        node: ast.AST,
        owner_class: Optional[str] = None,
    ) -> None:
        self.qualname = qualname
        self.name = name
        self.module = module
        self.node = node
        #: Qualified name of the owning class, or ``None`` for
        #: module-level functions.
        self.owner_class = owner_class
        self.lineno: int = getattr(node, "lineno", 1)
        self.calls: List[CallSite] = []
        self.self_accesses: List[AttrAccess] = []
        #: Dotted lock expressions this function declares held via
        #: ``assert_holds(self.<lock>)`` — its caller-side contract.
        self.asserted_locks: Set[str] = set()
        self._summarize()

    # ------------------------------------------------------------------
    def _summarize(self) -> None:
        """One pass over the body collecting calls, locks, accesses.

        Nested function defs and lambdas are folded into this summary:
        a closure handed to ``schedule``/``network.send`` acts on its
        owner's behalf, so its calls and accesses belong here.
        """
        body = getattr(self.node, "body", [])
        for stmt in body:
            self._scan(stmt, held=())

    def _scan(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in node.items:
                dotted = dotted_expr(item.context_expr)
                if dotted is not None:
                    acquired.append(dotted)
                self._scan(item.context_expr, held)
            inner = held + tuple(acquired)
            for child in node.body:
                self._scan(child, inner)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, held)
            for child in ast.iter_child_nodes(node):
                self._scan(child, held)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                self.self_accesses.append(
                    AttrAccess(
                        attr=node.attr,
                        line=node.lineno,
                        col=node.col_offset,
                        held_locks=held,
                        is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                    )
                )
            for child in ast.iter_child_nodes(node):
                self._scan(child, held)
            return
        # Nested defs/lambdas: fold their bodies into this summary, but
        # with no lexically-held locks — a closure handed to the
        # scheduler runs later, after the ``with`` block has exited.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                self._scan(child, ())
            return
        if isinstance(node, ast.Lambda):
            self._scan(node.body, ())
            return
        for child in ast.iter_child_nodes(node):
            self._scan(child, held)

    def _record_call(self, node: ast.Call, held: Tuple[str, ...]) -> None:
        dotted = dotted_expr(node.func)
        if dotted is not None:
            self.calls.append(
                CallSite(dotted, node.lineno, node.col_offset, held)
            )
            tail = dotted.rpartition(".")[2]
            if tail == "assert_holds" and node.args:
                lock = dotted_expr(node.args[0])
                if lock is not None:
                    self.asserted_locks.add(lock)
            if tail in ("schedule", "send", "submit", "call_soon"):
                # Callback-reference edges: a bare function-valued
                # argument is a deferred call on this function's
                # behalf.  Deferred means no locks are held when it
                # eventually runs, so held_locks is empty.  Arguments
                # that resolve to nothing (plain data) simply produce
                # no call-graph edge.
                for arg in node.args:
                    if isinstance(arg, (ast.Name, ast.Attribute)):
                        ref = dotted_expr(arg)
                        if ref is not None:
                            self.calls.append(
                                CallSite(
                                    ref, node.lineno, node.col_offset,
                                    (), scheduled=True,
                                )
                            )


class ClassInfo:
    """One class: methods, guards, bases, and attribute-type bindings."""

    def __init__(
        self, qualname: str, name: str, module: "ModuleInfo", node: ast.ClassDef
    ) -> None:
        self.qualname = qualname
        self.name = name
        self.module = module
        self.node = node
        self.lineno = node.lineno
        self.methods: Dict[str, FunctionInfo] = {}
        #: guarded attribute name -> lock attribute name (from the
        #: ``# guarded-by:`` comments on owning assignments).
        self.guards: Dict[str, str] = {}
        #: base-class names as written (resolution is best-effort).
        self.bases: List[str] = [
            b for b in (dotted_expr(base) for base in node.bases) if b is not None
        ]
        #: ``self.<attr>`` -> dotted constructor name assigned in
        #: ``__init__`` (``self.shuffle_manager = ShuffleManager()``).
        self.attr_constructors: Dict[str, str] = {}

    def collect_guards(self, source: SourceFile) -> None:
        for node in ast.walk(self.node):
            lock = source.guards.get(getattr(node, "lineno", -1))
            if lock is None:
                continue
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.guards[target.attr] = lock
                elif isinstance(target, ast.Name):
                    self.guards[target.id] = lock

    def collect_attr_constructors(self) -> None:
        """``self.<attr> = SomeClass(...)`` bindings from ``__init__``.

        Conditional assignments contribute too (both arms of a ternary),
        so ``self._submitter = Proxy(...) if p else Direct(...)`` yields
        no binding (ambiguous) but plain constructor calls resolve.
        """
        init = self.methods.get("__init__")
        if init is None:
            return
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = node.value
            if isinstance(value, ast.Call):
                ctor = dotted_expr(value.func)
                if ctor is not None and ctor.rpartition(".")[2][:1].isupper():
                    self.attr_constructors[target.attr] = ctor


class ModuleInfo:
    """One parsed module plus its resolved import alias table."""

    def __init__(self, name: str, path: Path, source: SourceFile, digest: str) -> None:
        self.name = name
        self.path = path
        self.source = source
        self.digest = digest
        #: local alias -> absolute dotted target.  ``import numpy as
        #: np`` maps ``np -> numpy``; ``from .tsd import PutAck`` maps
        #: ``PutAck -> repro.tsdb.tsd.PutAck``.
        self.aliases: Dict[str, str] = {}
        #: project modules this module imports (absolute names).
        self.imports: Set[str] = set()
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}

    def resolve_name(self, dotted: str) -> str:
        """Rewrite a dotted expression through the import alias table."""
        head, sep, tail = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted
        return target + sep + tail if sep else target


@dataclass
class ProjectModel:
    """The whole-program index: modules, symbols, graphs."""

    root: Path
    package: str
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    #: qualified class name -> info (``repro.tsdb.publish.BatchPublisher``)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: qualified function name -> info (methods use ``Class.method``)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: files that failed to parse: path -> error message
    parse_errors: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, root: Path | str) -> "ProjectModel":
        """Parse every ``.py`` file under ``root`` into the model.

        ``root`` must be a package directory (e.g. ``src/repro``); the
        package's dotted prefix is derived from its ``__init__``
        ancestry so relative imports resolve to absolute names.
        """
        root = Path(root)
        if not root.is_dir():
            raise ProjectError(f"project root {root} is not a directory")
        package = cls._package_name(root)
        model = cls(root=root, package=package)
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            model._add_file(path)
        for module in model.modules.values():
            model._index_module(module)
        for info in model.classes.values():
            info.collect_attr_constructors()
        return model

    @staticmethod
    def _package_name(root: Path) -> str:
        """Dotted package name of ``root``, following ``__init__`` parents."""
        parts = [root.name]
        parent = root.parent
        while (parent / "__init__.py").exists():
            parts.append(parent.name)
            parent = parent.parent
        return ".".join(reversed(parts))

    def _module_name(self, path: Path) -> str:
        rel = path.relative_to(self.root).with_suffix("")
        parts = [p for p in rel.parts if p != "__init__"]
        return ".".join([self.package, *parts]) if parts else self.package

    def _add_file(self, path: Path) -> None:
        text = path.read_text()
        name = self._module_name(path)
        try:
            source = SourceFile(path, text)
        except SyntaxError as exc:
            self.parse_errors[str(path)] = f"line {exc.lineno}: {exc.msg}"
            return
        self.modules[name] = ModuleInfo(name, path, source, file_digest(text))

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _index_module(self, module: ModuleInfo) -> None:
        self._collect_imports(module)
        for stmt in module.source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}.{stmt.name}"
                info = FunctionInfo(qualname, stmt.name, module, stmt)
                module.functions[stmt.name] = info
                self.functions[qualname] = info
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt)

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        cls_info = ClassInfo(qualname, node.name, module, node)
        cls_info.collect_guards(module.source)
        module.classes[node.name] = cls_info
        self.classes[qualname] = cls_info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_qual = f"{qualname}.{stmt.name}"
                info = FunctionInfo(
                    fn_qual, stmt.name, module, stmt, owner_class=qualname
                )
                cls_info.methods[stmt.name] = info
                self.functions[fn_qual] = info

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.aliases[local] = target
                    if alias.name.startswith(self.package):
                        module.imports.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_import_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.aliases[local] = f"{base}.{alias.name}"
                if base.startswith(self.package):
                    # ``from pkg.mod import X``: the dependency may be
                    # the module itself or a symbol inside it — record
                    # the deepest project module that exists.
                    module.imports.add(self._deepest_module(base, node))

    def _absolute_import_base(
        self, module: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: ``level`` strips that many trailing
        # components off the importing module's package path.
        parts = module.name.split(".")
        # A module's own package is its name minus the leaf (packages
        # themselves keep their name: repro.tsdb.__init__ -> repro.tsdb).
        is_pkg = module.path.name == "__init__.py"
        pkg_parts = parts if is_pkg else parts[:-1]
        strip = node.level - 1
        if strip > len(pkg_parts):
            return node.module
        base_parts = pkg_parts[: len(pkg_parts) - strip]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _deepest_module(self, base: str, node: ast.ImportFrom) -> str:
        for alias in node.names:
            candidate = f"{base}.{alias.name}"
            if candidate in self.modules:
                return candidate
        return base

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def module_for_path(self, path: Path | str) -> Optional[ModuleInfo]:
        path = Path(path)
        for module in self.modules.values():
            if module.path == path:
                return module
        return None

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.owner_class is None:
            return None
        return self.classes.get(fn.owner_class)

    def resolve_class(self, module: ModuleInfo, dotted: str) -> Optional[ClassInfo]:
        """Best-effort class resolution of a dotted constructor name."""
        resolved = module.resolve_name(dotted)
        found = self.classes.get(resolved)
        if found is not None:
            return found
        # ``module.Class`` written directly (rare): try as qualified.
        if resolved.rpartition(".")[0] in self.modules:
            return self.classes.get(resolved)
        # Same-module class.
        return module.classes.get(dotted)

    def iter_functions(self) -> List[FunctionInfo]:
        return [self.functions[name] for name in sorted(self.functions)]

    def file_digests(self) -> Dict[str, str]:
        """Relative path -> content hash, for the incremental cache."""
        out: Dict[str, str] = {}
        for module in self.modules.values():
            out[str(module.path)] = module.digest
        return dict(sorted(out.items()))

    def tree_digest(self) -> str:
        """One hash over every file hash — the cross-rule cache key."""
        acc = hashlib.sha256()
        for path, digest in self.file_digests().items():
            acc.update(path.encode())
            acc.update(b"\x00")
            acc.update(digest.encode())
            acc.update(b"\x00")
        return acc.hexdigest()
