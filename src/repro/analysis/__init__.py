"""Static analysis and runtime race auditing for the reproduction.

Three layers keep the concurrent hot path trustworthy as the codebase
grows (the paper's low-false-alarm claim is only as good as the
invariants the code maintains):

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` —
  **repro-lint**, an AST linter with rules tuned to this repository
  (seeded RNG, no float equality in detector math, frozen-dataclass
  discipline, no broad excepts, no mutable defaults, ``guarded-by``
  lock annotations).  CLI: ``python -m repro.analysis <paths>``.
* :mod:`repro.analysis.raceaudit` — a runtime lock-order recorder and
  ``assert_holds`` guard, zero-cost when disabled, enabled in tests to
  fail on deadlock-shaped lock cycles and unguarded state access.
* The mypy configuration in ``pyproject.toml`` — strict typing on
  ``core/``, ``sparklet/`` and ``tsdb/publish.py``, permissive
  elsewhere, enforced by ``tests/test_static_analysis.py``.
"""

from .lint import (
    Finding,
    LintReport,
    Rule,
    SourceFile,
    all_rules,
    lint_paths,
    lint_source,
    register,
)
from .raceaudit import (
    AuditedLock,
    GuardedStateError,
    LockOrderAuditor,
    LockOrderViolation,
    assert_holds,
    audited_lock,
    auditing,
)

__all__ = [
    "AuditedLock",
    "Finding",
    "GuardedStateError",
    "LintReport",
    "LockOrderAuditor",
    "LockOrderViolation",
    "Rule",
    "SourceFile",
    "all_rules",
    "assert_holds",
    "audited_lock",
    "auditing",
    "lint_paths",
    "lint_source",
    "register",
]
