"""Static analysis and runtime race auditing for the reproduction.

Three layers keep the concurrent hot path trustworthy as the codebase
grows (the paper's low-false-alarm claim is only as good as the
invariants the code maintains):

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` —
  **repro-lint**, an AST linter with rules tuned to this repository
  (seeded RNG, no float equality in detector math, frozen-dataclass
  discipline, no broad excepts, no mutable defaults, ``guarded-by``
  lock annotations).  CLI: ``python -m repro.analysis <paths>``.
* :mod:`repro.analysis.project` / :mod:`~repro.analysis.graph` /
  :mod:`~repro.analysis.dataflow` / :mod:`~repro.analysis.crossrules`
  — the **whole-program engine**: one indexed parse of the package
  (symbol tables, import graph, best-effort call graph, dataflow
  summaries) feeding cross-module rules that verify lock contracts,
  telemetry-name agreement, ack conservation, and the columnar
  hot path across file boundaries.  CLI: ``python -m repro.analysis
  --project src/repro`` with baseline/cache/SARIF support
  (:mod:`repro.analysis.reporting`).
* :mod:`repro.analysis.raceaudit` — a runtime lock-order recorder and
  ``assert_holds`` guard, zero-cost when disabled, enabled in tests to
  fail on deadlock-shaped lock cycles and unguarded state access.
* The mypy configuration in ``pyproject.toml`` — strict typing on
  ``core/``, ``sparklet/`` and ``tsdb/publish.py``, permissive
  elsewhere, enforced by ``tests/test_static_analysis.py``.
"""

from .crossrules import (
    CrossRule,
    ProjectContext,
    cross_rules,
    run_cross_rules,
)
from .graph import CallGraph, ImportGraph
from .lint import (
    Finding,
    LintReport,
    Rule,
    SourceFile,
    all_rules,
    lint_paths,
    lint_source,
    register,
)
from .project import ProjectModel
from .reporting import (
    AnalysisCache,
    Baseline,
    ProjectReport,
    fingerprint_findings,
    run_project,
)
from .raceaudit import (
    AuditedLock,
    GuardedStateError,
    LockOrderAuditor,
    LockOrderViolation,
    assert_holds,
    audited_lock,
    auditing,
)

__all__ = [
    "AnalysisCache",
    "AuditedLock",
    "Baseline",
    "CallGraph",
    "CrossRule",
    "Finding",
    "GuardedStateError",
    "ImportGraph",
    "LintReport",
    "LockOrderAuditor",
    "LockOrderViolation",
    "ProjectContext",
    "ProjectModel",
    "ProjectReport",
    "Rule",
    "SourceFile",
    "all_rules",
    "assert_holds",
    "audited_lock",
    "auditing",
    "cross_rules",
    "fingerprint_findings",
    "lint_paths",
    "lint_source",
    "register",
    "run_cross_rules",
    "run_project",
]
