"""Admission control for the query-serving gateway.

Bounds the number of queries executing concurrently against the
storage tier (``max_concurrent`` slots), parks overflow in a FIFO wait
queue with per-request deadlines, and **sheds load** — raising
:class:`QueryRejected` with a retry-after hint — once the queue
saturates.  A per-client token bucket (:class:`ClientRateLimiter`)
rejects abusive pollers before they reach the queue at all.

The controller is clock-agnostic and callback-driven: callers pass
``now`` explicitly and supply ``on_grant`` / ``on_timeout`` callbacks
when queueing, so the gateway can drive it from the discrete-event
simulator deterministically.  State machine for one request::

    admit() ──granted──▶ executing ──release()──▶ done
       │                                   │
       │ slots busy, queue has room        └─▶ promotes FIFO head(s)
       ├──▶ queued ──on_grant──▶ executing
       │        └──deadline──▶ expired (on_timeout, "deadline" shed)
       ├──▶ QueryRejected("queue_full")    # queue saturated
       └──▶ QueryRejected("rate_limited")  # token bucket empty
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

__all__ = [
    "AdmissionController",
    "ClientRateLimiter",
    "QueryRejected",
    "Ticket",
    "TokenBucket",
]


class QueryRejected(RuntimeError):
    """A query was shed before execution.

    ``reason`` is one of ``"queue_full"``, ``"rate_limited"``,
    ``"deadline"`` or ``"unavailable"``; ``retry_after`` is the
    controller's estimate (seconds) of when a retry could succeed.
    """

    def __init__(self, reason: str, retry_after: float, detail: str = "") -> None:
        self.reason = reason
        self.retry_after = retry_after
        msg = f"query rejected ({reason}); retry after {retry_after:.3f}s"
        if detail:
            msg = f"{msg}: {detail}"
        super().__init__(msg)


class TokenBucket:
    """Deterministic token bucket: ``rate`` tokens/second, ``burst`` cap."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst >= 1")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = 0.0

    def _refill(self, now: float) -> None:
        if now > self.updated:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
            self.updated = now

    def try_take(self, now: float) -> bool:
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds until one token is available (0.0 if one already is)."""
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class ClientRateLimiter:
    """Per-client token buckets, created lazily on first sight.

    The bucket map is bounded by the (finite) client population of the
    workload; an LRU sweep evicts idle clients past ``max_clients`` so
    an adversarial stream of fresh client ids cannot grow it without
    bound.
    """

    def __init__(self, rate: float, burst: float, max_clients: int = 4096) -> None:
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._buckets: Dict[str, TokenBucket] = {}

    def check(self, client_id: str, now: float) -> None:
        """Take one token for ``client_id`` or raise :class:`QueryRejected`."""
        bucket = self._buckets.get(client_id)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                # Evict the stalest bucket (smallest refill timestamp).
                stalest = min(self._buckets, key=lambda c: self._buckets[c].updated)
                del self._buckets[stalest]
            bucket = TokenBucket(self.rate, self.burst)
            self._buckets[client_id] = bucket
        if not bucket.try_take(now):
            raise QueryRejected("rate_limited", bucket.retry_after(now), f"client {client_id}")


class Ticket:
    """One admitted-or-queued request.

    ``state`` transitions ``queued -> granted`` (via ``on_grant``) or
    ``queued -> expired`` (via ``on_timeout``); tickets granted a slot
    immediately are born ``granted``.
    """

    __slots__ = (
        "client_id",
        "enqueued_at",
        "deadline",
        "granted_at",
        "state",
        "on_grant",
        "on_timeout",
    )

    def __init__(
        self,
        client_id: str,
        enqueued_at: float,
        deadline: Optional[float],
        on_grant: Optional[Callable[["Ticket"], None]],
        on_timeout: Optional[Callable[["Ticket"], None]],
    ) -> None:
        self.client_id = client_id
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.granted_at: Optional[float] = None
        self.state = "queued"
        self.on_grant = on_grant
        self.on_timeout = on_timeout

    @property
    def wait(self) -> float:
        """Queue wait in seconds (0.0 while still queued)."""
        if self.granted_at is None:
            return 0.0
        return self.granted_at - self.enqueued_at


class AdmissionController:
    """Bounded execution slots + FIFO wait queue + load shedding."""

    def __init__(
        self,
        max_concurrent: int = 4,
        max_queue: int = 32,
        service_estimate: float = 0.01,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.in_flight = 0
        self._queue: Deque[Ticket] = deque()
        # EWMA of observed execution times; feeds retry-after hints.
        self._service_estimate = service_estimate
        self.granted = 0
        self.queued = 0
        self.shed_queue_full = 0
        self.shed_deadline = 0
        self.queue_high_water = 0
        self.in_flight_high_water = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def service_estimate(self) -> float:
        return self._service_estimate

    def retry_after(self) -> float:
        """Estimated drain time of the current backlog plus one service."""
        backlog = len(self._queue) + max(0, self.in_flight - self.max_concurrent + 1)
        return (backlog + 1) * self._service_estimate / self.max_concurrent + self._service_estimate

    # ------------------------------------------------------------------
    def admit(
        self,
        client_id: str,
        now: float,
        deadline: Optional[float] = None,
        on_grant: Optional[Callable[[Ticket], None]] = None,
        on_timeout: Optional[Callable[[Ticket], None]] = None,
    ) -> Ticket:
        """Request an execution slot.

        Returns a ticket whose ``state`` is ``"granted"`` (run now) or
        ``"queued"`` (``on_grant`` fires later, from some ``release``).
        ``deadline`` is the *absolute* time after which waiting is
        pointless; queued tickets past it are shed with ``on_timeout``.
        Raises :class:`QueryRejected` when the wait queue is full.
        """
        ticket = Ticket(client_id, now, deadline, on_grant, on_timeout)
        if self.in_flight < self.max_concurrent:
            self._grant(ticket, now)
            return ticket
        if len(self._queue) >= self.max_queue:
            self.shed_queue_full += 1
            raise QueryRejected("queue_full", self.retry_after(), f"client {client_id}")
        self._queue.append(ticket)
        self.queued += 1
        self.queue_high_water = max(self.queue_high_water, len(self._queue))
        return ticket

    def _grant(self, ticket: Ticket, now: float) -> None:
        ticket.state = "granted"
        ticket.granted_at = now
        self.in_flight += 1
        self.in_flight_high_water = max(self.in_flight_high_water, self.in_flight)
        self.granted += 1

    def release(self, now: float, started_at: Optional[float] = None) -> List[Ticket]:
        """Free one slot; promote FIFO waiters (skipping expired ones).

        Returns the tickets granted during this release, *after* their
        ``on_grant`` callbacks ran, so a sim-driven caller can also
        poll the list.  ``started_at`` (the grant time of the request
        being released) feeds the EWMA service-time estimate.
        """
        if self.in_flight <= 0:
            raise RuntimeError("release() without matching grant")
        self.in_flight -= 1
        if started_at is not None and now > started_at:
            observed = now - started_at
            self._service_estimate += 0.2 * (observed - self._service_estimate)
        promoted: List[Ticket] = []
        while self._queue and self.in_flight < self.max_concurrent:
            head = self._queue.popleft()
            if head.deadline is not None and now > head.deadline:
                self._expire(head)
                continue
            self._grant(head, now)
            promoted.append(head)
            if head.on_grant is not None:
                head.on_grant(head)
        return promoted

    # ------------------------------------------------------------------
    def expire_due(self, now: float) -> List[Ticket]:
        """Shed every queued ticket whose deadline has passed.

        The gateway schedules a simulator event at each queued
        ticket's deadline and calls this; lazily expiring only on
        ``release`` would let a dead queue strand waiters forever.
        """
        live: Deque[Ticket] = deque()
        expired: List[Ticket] = []
        for ticket in self._queue:
            if ticket.deadline is not None and now > ticket.deadline:
                expired.append(ticket)
            else:
                live.append(ticket)
        self._queue = live
        for ticket in expired:
            self._expire(ticket)
        return expired

    def _expire(self, ticket: Ticket) -> None:
        ticket.state = "expired"
        self.shed_deadline += 1
        if ticket.on_timeout is not None:
            ticket.on_timeout(ticket)
