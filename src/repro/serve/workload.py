"""Seeded multi-client fleet workload against the serving gateway.

Simulates the control-center's read traffic — the "thousands of
operators" regime the ROADMAP targets — as three client populations:

* **overview pollers**: every dashboard poll re-issues the same
  fleet-wide grouped query on a fixed period (phase-jittered per
  client), remembering its last ETag so unchanged polls ride the
  ``NotModified`` path;
* **drill-down browsers**: operators stepping through machines, each
  think-time issuing a per-unit sensor breakdown — a long tail of
  distinct queries that exercises LRU churn;
* **hot-unit stampede**: N clients converging on one machine at the
  same instant (an incident), the scenario admission control exists
  for.

Everything is driven through :meth:`QueryGateway.serve_async` on the
deployment's simulator, so latencies are simulated seconds and runs
are bit-reproducible per seed.  The resulting
:class:`WorkloadReport` carries the latency distribution, hit/stale/
shed accounting and the conservation invariant
``issued == served + shed + rejected`` (every request gets exactly
one completion or rejection — nothing is silently dropped).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tsdb.query import TsdbQuery
from .admission import QueryRejected
from .gateway import QueryGateway, ServeResult

__all__ = ["FleetWorkload", "WorkloadConfig", "WorkloadReport"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the simulated client fleet."""

    n_overview_pollers: int = 16
    n_drilldown: int = 4
    n_stampede: int = 0
    poll_interval: float = 1.0
    drill_interval: float = 1.5
    duration: float = 10.0
    stampede_at: float = 5.0
    use_etags: bool = True
    deadline: Optional[float] = None  # per-request; None -> gateway default
    seed: int = 7

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.poll_interval <= 0 or self.drill_interval <= 0:
            raise ValueError("intervals must be positive")


@dataclass
class WorkloadReport:
    """Outcome of one workload run (latencies in simulated seconds)."""

    issued: int = 0
    served: int = 0
    hits: int = 0
    misses: int = 0
    stale_serves: int = 0
    not_modified: int = 0
    shed: int = 0
    rejected: int = 0
    stale_unaccounted: int = 0
    shed_reasons: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    stale_ages: List[float] = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        """Fraction of served responses answered without executing."""
        if self.served == 0:
            return 0.0
        return (self.served - self.misses) / self.served

    @property
    def shed_rate(self) -> float:
        if self.issued == 0:
            return 0.0
        return (self.shed + self.rejected) / self.issued

    def latency_quantile(self, q: float) -> float:
        """Exact empirical quantile over served-response latencies."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def check_conservation(self) -> None:
        """Every issued request resolved exactly once, or raise."""
        resolved = self.served + self.shed + self.rejected
        if resolved != self.issued:
            raise AssertionError(
                f"conservation violated: issued={self.issued} != "
                f"served={self.served} + shed={self.shed} + rejected={self.rejected}"
            )

    def summary(self) -> str:
        return (
            f"issued={self.issued} served={self.served} "
            f"(hits={self.hits} stale={self.stale_serves} nm={self.not_modified} "
            f"miss={self.misses}) shed={self.shed} rejected={self.rejected} "
            f"hit_ratio={self.hit_ratio:.2f} "
            f"p50={self.latency_quantile(0.5) * 1000:.2f}ms "
            f"p99={self.latency_quantile(0.99) * 1000:.2f}ms"
        )


class FleetWorkload:
    """Drive a seeded client fleet through a gateway on its simulator."""

    def __init__(
        self,
        gateway: QueryGateway,
        metric: str,
        units: Sequence[str],
        window: Tuple[int, int],
        config: Optional[WorkloadConfig] = None,
    ) -> None:
        if not units:
            raise ValueError("need at least one unit")
        self.gateway = gateway
        self.metric = metric
        self.units = list(units)
        self.window = window
        self.config = config if config is not None else WorkloadConfig()
        self.report = WorkloadReport()
        self._rng = random.Random(self.config.seed)
        self._etags: Dict[str, Dict[str, str]] = {}
        self._stop_at = 0.0

    # ------------------------------------------------------------------
    # query shapes
    # ------------------------------------------------------------------
    def overview_query(self) -> TsdbQuery:
        """The fleet-overview poll: one series per unit, whole window."""
        start, end = self.window
        return TsdbQuery(
            metric=self.metric,
            start=start,
            end=end,
            tag_filters={"unit": "*"},
            group_by=("unit",),
            aggregator="max",
        )

    def drilldown_query(self, unit: str) -> TsdbQuery:
        """A machine page: per-sensor breakdown for one unit."""
        start, end = self.window
        return TsdbQuery(
            metric=self.metric,
            start=start,
            end=end,
            tag_filters={"unit": unit, "sensor": "*"},
            group_by=("sensor",),
            aggregator="max",
        )

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self, drain: bool = True) -> WorkloadReport:
        """Run the fleet for ``config.duration`` sim-seconds.

        With ``drain`` (default) the simulator then runs to quiescence
        so every queued request resolves — the conservation invariant
        is checked before returning.
        """
        sim = self.gateway.sim
        cfg = self.config
        self._stop_at = sim.now + cfg.duration
        for i in range(cfg.n_overview_pollers):
            client = f"poller{i:03d}"
            phase = self._rng.uniform(0.0, cfg.poll_interval)
            sim.schedule(phase, self._poll_tick, client)
        for i in range(cfg.n_drilldown):
            client = f"browser{i:03d}"
            phase = self._rng.uniform(0.0, cfg.drill_interval)
            sim.schedule(phase, self._drill_tick, client)
        if cfg.n_stampede > 0:
            for i in range(cfg.n_stampede):
                client = f"stampede{i:03d}"
                sim.schedule(cfg.stampede_at, self._stampede_shot, client)
        sim.run(until=self._stop_at)
        if drain:
            sim.run()  # let queued executions, deadlines and refreshes resolve
        self.report.check_conservation()
        return self.report

    # ------------------------------------------------------------------
    # client behaviours
    # ------------------------------------------------------------------
    def _poll_tick(self, client: str) -> None:
        sim = self.gateway.sim
        if sim.now >= self._stop_at:
            return
        self._issue(client, self.overview_query(), remember_etag=True)
        sim.schedule(self.config.poll_interval, self._poll_tick, client)

    def _drill_tick(self, client: str) -> None:
        sim = self.gateway.sim
        if sim.now >= self._stop_at:
            return
        unit = self._rng.choice(self.units)
        self._issue(client, self.drilldown_query(unit), remember_etag=False)
        think = self.config.drill_interval * self._rng.uniform(0.5, 1.5)
        sim.schedule(think, self._drill_tick, client)

    def _stampede_shot(self, client: str) -> None:
        self._issue(client, self.drilldown_query(self.units[0]), remember_etag=False)

    # ------------------------------------------------------------------
    # issue/complete plumbing
    # ------------------------------------------------------------------
    def _issue(self, client: str, query: TsdbQuery, remember_etag: bool) -> None:
        self.report.issued += 1
        etag: Optional[str] = None
        if remember_etag and self.config.use_etags:
            etag = self._etags.get(client, {}).get(query.metric)

        def done(result: ServeResult) -> None:
            self._on_done(client, query, result, remember_etag)

        self.gateway.serve_async(
            query,
            client,
            on_done=done,
            on_reject=lambda exc: self._on_reject(exc),
            deadline=self.config.deadline,
            if_none_match=etag,
        )

    def _on_done(
        self, client: str, query: TsdbQuery, result: ServeResult, remember_etag: bool
    ) -> None:
        rep = self.report
        rep.served += 1
        rep.latencies.append(result.latency)
        if result.status == "hit":
            rep.hits += 1
        elif result.status == "stale":
            rep.stale_serves += 1
            if result.age > 0.0:
                rep.stale_ages.append(result.age)
            else:
                # A stale serve must always be age-stamped; anything
                # else is a staleness-accounting bug (E14 asserts 0).
                rep.stale_unaccounted += 1
        else:
            rep.misses += 1
        if result.not_modified:
            rep.not_modified += 1
        if remember_etag and self.config.use_etags:
            self._etags.setdefault(client, {})[query.metric] = result.etag

    def _on_reject(self, exc: QueryRejected) -> None:
        rep = self.report
        if exc.reason == "rate_limited":
            rep.rejected += 1
        else:
            rep.shed += 1
        rep.shed_reasons[exc.reason] = rep.shed_reasons.get(exc.reason, 0) + 1
