"""Query-serving gateway: the read tier between dashboards and the TSDB.

``cache`` — canonical-keyed LRU+TTL result cache with write-through
invalidation and stale-while-revalidate; ``admission`` — bounded
execution slots, FIFO wait queue, deadlines, load shedding and
per-client rate limits; ``gateway`` — the façade composing them in
front of the :class:`~repro.tsdb.query.QueryEngine`; ``workload`` — a
seeded multi-client fleet driver producing latency / hit-ratio /
shed-rate distributions (the E14 benchmark's engine).
"""

from .admission import AdmissionController, ClientRateLimiter, QueryRejected, Ticket, TokenBucket
from .cache import CacheLookup, CanonicalQuery, ResultCache, canonical_key, result_etag
from .gateway import GatewayConfig, QueryGateway, ServeResult, ServeServiceModel
from .workload import FleetWorkload, WorkloadConfig, WorkloadReport

__all__ = [
    "AdmissionController",
    "CacheLookup",
    "CanonicalQuery",
    "ClientRateLimiter",
    "FleetWorkload",
    "GatewayConfig",
    "QueryGateway",
    "QueryRejected",
    "ResultCache",
    "ServeResult",
    "ServeServiceModel",
    "Ticket",
    "TokenBucket",
    "WorkloadConfig",
    "WorkloadReport",
    "canonical_key",
    "result_etag",
]
