"""The query-serving gateway: cache → admission → engine.

:class:`QueryGateway` is the façade the control-center talks to
instead of a raw :class:`~repro.tsdb.query.QueryEngine`.  A request
flows::

    serve(query, client_id, deadline)
      │ per-client token bucket          -> QueryRejected("rate_limited")
      │ result cache probe
      ├─ fresh  ──────────────▶ serve (ETag match -> NotModified)
      ├─ stale  ─ backend down ▶ serve stale, age-stamped
      │          backend up    ▶ refresh (admission-gated); saturated
      │                          -> serve stale now, revalidate behind
      └─ miss   ─▶ admission slots ─ full queue -> QueryRejected("queue_full")
                      │ FIFO wait (deadline-bounded)
                      └▶ QueryEngine.run ─▶ fill cache ─▶ respond

Responses are **bit-identical** to a direct ``QueryEngine.run`` in
every cache state: the cache key only merges queries the engine must
answer identically (see :mod:`repro.serve.cache`), and write-through
invalidation is driven from the cluster's write paths.  Invalidation
fires twice per batch — optimistically at submit time and again when
the batch's ack lands — because a result computed *between* the two
would otherwise be cached without the in-flight points.  A write-epoch
guard closes the remaining async window: results computed before a
write landed are served but never cached.

Execution latency is simulated: the engine's offline read is free, so
the gateway charges a :class:`ServeServiceModel` cost (per scan range
+ per returned point) on the simulator clock.  This is what makes the
E14 queueing/stampede dynamics real and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Tuple

from ..cluster.simulation import Simulator
from ..hbase.master import RegionUnavailableError
from ..obs.telemetry import component_registry
from ..tsdb.aggregation import Series
from ..tsdb.query import QueryEngine, TsdbQuery
from ..tsdb.uid import UnknownUidError
from .admission import AdmissionController, ClientRateLimiter, QueryRejected, Ticket
from .cache import CanonicalQuery, ResultCache, canonical_key, result_etag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.metrics import MetricsRegistry
    from ..tsdb.ingest import TsdbCluster
    from ..tsdb.tsd import DataPoint

__all__ = ["GatewayConfig", "QueryGateway", "ServeResult", "ServeServiceModel"]

#: Histogram bounds for ``serve.latency`` — cache hits land around
#: 0.2 ms, queued executions out to multi-second deadlines.
_LATENCY_BOUNDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(frozen=True)
class ServeServiceModel:
    """Simulated cost of answering one query from storage.

    ``overhead`` covers parse/plan/RPC setup, ``per_range`` each
    salt-bucket scan issued, ``per_point`` each datapoint in the
    result, and ``hit_cost`` a cache hit (serialization only).
    """

    overhead: float = 0.002
    per_range: float = 5e-5
    per_point: float = 2e-6
    hit_cost: float = 2e-4

    def __post_init__(self) -> None:
        if min(self.overhead, self.per_range, self.per_point, self.hit_cost) < 0:
            raise ValueError("service-model costs must be non-negative")

    def cost(self, n_ranges: int, n_points: int) -> float:
        return self.overhead + self.per_range * n_ranges + self.per_point * n_points


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs for one :class:`QueryGateway`."""

    cache_capacity: int = 512
    ttl: float = 2.0
    cache_enabled: bool = True
    serve_stale: bool = True
    max_concurrent: int = 4
    max_queue: int = 32
    default_deadline: Optional[float] = 5.0
    rate_limit: Optional[float] = None  # tokens/second per client; None = off
    rate_burst: float = 10.0
    #: Serve timeline (follower) reads with an advertised staleness
    #: bound when a region's primary is down; False sheds instead.
    allow_degraded: bool = True
    service_model: ServeServiceModel = field(default_factory=ServeServiceModel)

    def __post_init__(self) -> None:
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be positive (or None)")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive (or None)")


@dataclass
class ServeResult:
    """One gateway response.

    ``status`` is ``"hit"`` (fresh cache), ``"miss"`` (executed) or
    ``"stale"`` (expired entry served under stale-while-revalidate —
    ``age`` then carries its staleness in seconds; fresh responses
    have ``age == 0.0``).  When the caller's ``if_none_match`` etag
    still matches, ``not_modified`` is True and ``series`` is None —
    the cheap unchanged-poll path.  ``latency`` is simulated seconds
    from issue to completion.

    ``degraded`` marks a response assembled (at least partly) from
    follower replicas because a primary was down; ``max_staleness``
    then bounds how far behind the primary the data may be.  Degraded
    responses are served but never cached.
    """

    status: str
    series: Optional[List[Series]]
    etag: str
    age: float
    latency: float
    not_modified: bool = False
    degraded: bool = False
    max_staleness: float = 0.0

    @property
    def served_from_cache(self) -> bool:
        return self.status in ("hit", "stale")


class QueryGateway:
    """Serving tier composing result cache, admission control and engine."""

    def __init__(
        self,
        cluster: Optional["TsdbCluster"] = None,
        *,
        engine: Optional[QueryEngine] = None,
        sim: Optional[Simulator] = None,
        config: Optional[GatewayConfig] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if cluster is not None:
            engine = engine if engine is not None else cluster.query_engine()
            sim = sim if sim is not None else cluster.sim
            metrics = metrics if metrics is not None else cluster.telemetry.registry("serve")
        if engine is None or sim is None:
            raise ValueError("need a cluster, or an explicit engine and sim")
        self.cluster = cluster
        self.engine = engine
        self.sim = sim
        self.config = config if config is not None else GatewayConfig()
        self.metrics = metrics if metrics is not None else component_registry("serve")
        self.cache = ResultCache(self.config.cache_capacity, self.config.ttl)
        self.admission = AdmissionController(self.config.max_concurrent, self.config.max_queue)
        self._limiter: Optional[ClientRateLimiter] = None
        if self.config.rate_limit is not None:
            self._limiter = ClientRateLimiter(self.config.rate_limit, self.config.rate_burst)
        # Bumped on every write notification; executions that straddle a
        # bump are served but never cached (coherence under async races).
        self._write_epoch = 0
        self._latency = self.metrics.histogram("serve.latency", _LATENCY_BOUNDS)
        self._staleness = self.metrics.histogram("serve.staleness")
        if cluster is not None:
            cluster.add_write_listener(self.notify_writes)
            if cluster.lifecycle is not None:
                cluster.lifecycle.add_expiry_listener(self.notify_expiry)

    # ------------------------------------------------------------------
    # engine-compatible surface (Dashboard/FleetAnalytics drop-in)
    # ------------------------------------------------------------------
    @property
    def uids(self):  # noqa: ANN201 - UniqueIdRegistry, typed at the engine
        return self.engine.uids

    def run(self, query: TsdbQuery) -> List[Series]:
        """Engine-compatible execute: serve and unwrap the series."""
        result = self.serve(query, client_id="dashboard")
        assert result.series is not None  # no etag passed -> never NotModified
        return result.series

    # ------------------------------------------------------------------
    # synchronous serving (dashboard renders, tests)
    # ------------------------------------------------------------------
    def serve(
        self,
        query: TsdbQuery,
        client_id: str = "interactive",
        deadline: Optional[float] = None,
        if_none_match: Optional[str] = None,
    ) -> ServeResult:
        """Serve one query now (no simulated time passes).

        The synchronous path never waits in the FIFO queue: if every
        execution slot is held by in-flight async work it serves stale
        (revalidating behind) or sheds.  Raises :class:`QueryRejected`
        on rate limit, saturation with nothing cached, or a down
        backend with nothing cached.
        """
        now = self.sim.now
        self._rate_check(client_id, now)
        if not self.config.cache_enabled:
            return self._execute_sync(query, client_id, now, if_none_match)
        key = self._cache_key(query)
        lookup = self.cache.get(key, now)
        if lookup.state == "fresh":
            return self._respond_cached("hit", lookup, if_none_match, 0.0)
        if lookup.state == "stale":
            if not self.backend_available():
                return self._respond_cached("stale", lookup, if_none_match, 0.0)
            if self.admission.in_flight < self.admission.max_concurrent:
                return self._execute_sync(query, client_id, now, if_none_match, key)
            if self.config.serve_stale:
                self._queue_revalidation(query, key, client_id, now)
                return self._respond_cached("stale", lookup, if_none_match, 0.0)
            self._count_shed("queue_full")
            raise QueryRejected("queue_full", self.admission.retry_after(), f"client {client_id}")
        # Cold miss.
        if not self.backend_available():
            self._count_shed("unavailable")
            raise QueryRejected("unavailable", 1.0, "storage tier down and nothing cached")
        if self.admission.in_flight < self.admission.max_concurrent:
            return self._execute_sync(query, client_id, now, if_none_match, key)
        self._count_shed("queue_full")
        raise QueryRejected("queue_full", self.admission.retry_after(), f"client {client_id}")

    # ------------------------------------------------------------------
    # asynchronous serving (the workload driver's path)
    # ------------------------------------------------------------------
    def serve_async(
        self,
        query: TsdbQuery,
        client_id: str,
        on_done: Callable[[ServeResult], None],
        on_reject: Optional[Callable[[QueryRejected], None]] = None,
        deadline: Optional[float] = None,
        if_none_match: Optional[str] = None,
    ) -> None:
        """Serve through the simulator: completions and rejections are
        delivered as scheduled events, with queueing and execution cost
        charged on the sim clock.

        ``deadline`` (relative seconds, default from config) bounds the
        FIFO wait; requests still queued past it are shed.
        """
        now = self.sim.now
        try:
            self._rate_check(client_id, now)
        except QueryRejected as exc:
            self._deliver_reject(exc, on_reject)
            return
        key: Optional[CanonicalQuery] = None
        if self.config.cache_enabled:
            key = self._cache_key(query)
            lookup = self.cache.get(key, now)
            if lookup.state == "fresh":
                self._complete_cached("hit", lookup, if_none_match, on_done)
                return
            if lookup.state == "stale":
                backend_up = self.backend_available()
                if backend_up and not self.config.serve_stale:
                    pass  # fall through to a full execution below
                else:
                    if backend_up:
                        self._queue_revalidation(query, key, client_id, now)
                    self._complete_cached("stale", lookup, if_none_match, on_done)
                    return
        if not self.backend_available():
            self._count_shed("unavailable")
            self._deliver_reject(
                QueryRejected("unavailable", 1.0, "storage tier down and nothing cached"),
                on_reject,
            )
            return
        rel_deadline = deadline if deadline is not None else self.config.default_deadline
        abs_deadline = now + rel_deadline if rel_deadline is not None else None

        def granted(ticket: Ticket) -> None:
            self._start_execution(ticket, query, key, now, if_none_match, on_done, on_reject)

        def timed_out(ticket: Ticket) -> None:
            self._count_shed("deadline")
            self._deliver_reject(
                QueryRejected("deadline", self.admission.retry_after(), f"client {client_id}"),
                on_reject,
            )

        try:
            ticket = self.admission.admit(client_id, now, abs_deadline, granted, timed_out)
        except QueryRejected as exc:
            self._count_shed("queue_full")
            self._deliver_reject(exc, on_reject)
            return
        self._sync_admission_gauges()
        if ticket.state == "granted":
            self._start_execution(ticket, query, key, now, if_none_match, on_done, on_reject)
        elif abs_deadline is not None:
            # Strict comparison in expire_due: fire just past the deadline.
            self.sim.schedule(abs_deadline - now + 1e-9, self._expire_tick)

    def _cache_key(self, query: TsdbQuery) -> CanonicalQuery:
        """Tier-aware canonical key: the planner's serving source is part
        of the key, so a raw-served answer is never replayed for a query
        the planner now routes to a rollup tier (or vice versa)."""
        route_tier = getattr(self.engine, "route_tier", None)
        tier = route_tier(query) if route_tier is not None else "raw"
        return canonical_key(query, tier)

    # ------------------------------------------------------------------
    # write-through invalidation
    # ------------------------------------------------------------------
    def notify_expiry(self, spans) -> None:
        """Evict cache entries over expired (or re-rolled) time ranges.

        Wired to the lifecycle manager's expiry notifications.  Expiry
        drops every series of a metric in the range, so eviction skips
        tag-filter matching; the write epoch is bumped so in-flight
        executions that straddle the expiry are served but not cached.
        """
        self._write_epoch += 1
        evicted = 0
        for metric, start, end in spans:
            evicted += self.cache.invalidate_range(metric, start, end - 1)
        if evicted:
            self.metrics.counter("serve.invalidations").inc(evicted)

    def notify_writes(self, points: Iterable["DataPoint"]) -> None:
        """Evict cache entries overlapping freshly written points.

        Wired to the cluster's write listeners; touches are coalesced
        per ``(metric, tags)`` series into one time-range probe.
        """
        self._write_epoch += 1
        touched: dict = {}
        spans = getattr(points, "iter_series_spans", None)
        if spans is not None:
            # Columnar fast path: a BlockBatch already knows each
            # series' time extent — no per-point iteration needed.
            for metric, tags, t_min, t_max in spans():
                span = touched.get((metric, tags))
                if span is None:
                    touched[(metric, tags)] = [t_min, t_max]
                else:
                    if t_min < span[0]:
                        span[0] = t_min
                    if t_max > span[1]:
                        span[1] = t_max
        else:
            for p in points:
                span = touched.get((p.metric, p.tags))
                if span is None:
                    touched[(p.metric, p.tags)] = [p.timestamp, p.timestamp]
                else:
                    if p.timestamp < span[0]:
                        span[0] = p.timestamp
                    if p.timestamp > span[1]:
                        span[1] = p.timestamp
        evicted = 0
        for (metric, tags), (t_min, t_max) in touched.items():
            evicted += self.cache.invalidate(metric, dict(tags), t_min, t_max)
        if evicted:
            self.metrics.counter("serve.invalidations").inc(evicted)

    def backend_available(self) -> bool:
        """Is the storage tier reachable? (needs ≥ 1 live TSD frontend).

        The offline engine reads region state directly, so this is the
        gateway's availability model: with every TSD down there is no
        daemon to answer a query and only stale serving remains.
        """
        if self.cluster is None:
            return True
        return any(not tsd.crashed for tsd in self.cluster.tsds)

    # ------------------------------------------------------------------
    # internals: execution
    # ------------------------------------------------------------------
    def _run_engine(self, query: TsdbQuery) -> Tuple[List[Series], bool, float]:
        """Execute through the engine, degrading to follower reads.

        Returns ``(series, degraded, max_staleness)``.  Engines without
        availability support (bare :class:`QueryEngine` stand-ins) run
        strong-only.  Raises :class:`RegionUnavailableError` when no
        replica can answer, or when the answer would be degraded and
        config forbids serving it.
        """
        run_available = getattr(self.engine, "run_available", None)
        if run_available is None:
            return self.engine.run(query), False, 0.0
        result = run_available(query)
        degraded = result.mode != "strong"
        if degraded:
            if not self.config.allow_degraded:
                raise RegionUnavailableError(
                    "degraded (timeline) serving disabled by gateway policy"
                )
            self.metrics.counter("serve.degraded").inc()
            self.metrics.gauge("serve.degraded_staleness").set(result.staleness)
        return result.series, degraded, result.staleness

    def _execute_sync(
        self,
        query: TsdbQuery,
        client_id: str,
        now: float,
        if_none_match: Optional[str],
        key: Optional[CanonicalQuery] = None,
    ) -> ServeResult:
        if self.admission.in_flight >= self.admission.max_concurrent:
            self._count_shed("queue_full")
            raise QueryRejected("queue_full", self.admission.retry_after(), f"client {client_id}")
        ticket = self.admission.admit(client_id, now)  # slot free: grants inline
        self._sync_admission_gauges()
        try:
            series, degraded, staleness = self._run_engine(query)
        except RegionUnavailableError as exc:
            self._count_shed("unavailable")
            raise QueryRejected("unavailable", 1.0, str(exc)) from exc
        finally:
            self.admission.release(now, started_at=ticket.granted_at)
            self._sync_admission_gauges()
        if key is not None and not degraded:
            etag = self.cache.put(key, series, now)
        else:
            etag = result_etag(series)
        self.metrics.counter("serve.misses").inc()
        self._latency.observe(0.0)
        nm = if_none_match is not None and if_none_match == etag
        return ServeResult(
            "miss", None if nm else series, etag, 0.0, 0.0,
            not_modified=nm, degraded=degraded, max_staleness=staleness,
        )

    def _start_execution(
        self,
        ticket: Ticket,
        query: TsdbQuery,
        key: Optional[CanonicalQuery],
        issued_at: float,
        if_none_match: Optional[str],
        on_done: Callable[[ServeResult], None],
        on_reject: Optional[Callable[[QueryRejected], None]] = None,
    ) -> None:
        self._sync_admission_gauges()
        # The result is a snapshot at grant time; the epoch guard keeps
        # it out of the cache if a write lands before completion.
        try:
            series, degraded, staleness = self._run_engine(query)
        except RegionUnavailableError as exc:
            self.admission.release(self.sim.now, started_at=ticket.granted_at)
            self._sync_admission_gauges()
            self._count_shed("unavailable")
            self._deliver_reject(QueryRejected("unavailable", 1.0, str(exc)), on_reject)
            return
        epoch = self._write_epoch
        cost = self._execution_cost(query, series)
        self.sim.schedule(
            cost, self._finish_execution, ticket, series, epoch, key, issued_at,
            if_none_match, on_done, degraded, staleness,
        )

    def _finish_execution(
        self,
        ticket: Ticket,
        series: List[Series],
        epoch: int,
        key: Optional[CanonicalQuery],
        issued_at: float,
        if_none_match: Optional[str],
        on_done: Callable[[ServeResult], None],
        degraded: bool = False,
        staleness: float = 0.0,
    ) -> None:
        now = self.sim.now
        self.admission.release(now, started_at=ticket.granted_at)
        self._sync_admission_gauges()
        if key is not None and epoch == self._write_epoch and not degraded:
            etag = self.cache.put(key, series, now)
        else:
            etag = result_etag(series)
        latency = now - issued_at
        self.metrics.counter("serve.misses").inc()
        self._latency.observe(latency)
        nm = if_none_match is not None and if_none_match == etag
        if nm:
            self.metrics.counter("serve.not_modified").inc()
        on_done(ServeResult(
            "miss", None if nm else series, etag, 0.0, latency,
            not_modified=nm, degraded=degraded, max_staleness=staleness,
        ))

    def _execution_cost(self, query: TsdbQuery, series: List[Series]) -> float:
        try:
            uid = self.engine.uids.get("metric", query.metric)
            n_ranges = len(self.engine.codec.scan_ranges(uid, query.start, query.end))
        except UnknownUidError:
            n_ranges = 0
        n_points = sum(len(s.timestamps) for s in series)
        return self.config.service_model.cost(n_ranges, n_points)

    # ------------------------------------------------------------------
    # internals: stale-while-revalidate
    # ------------------------------------------------------------------
    def _queue_revalidation(
        self, query: TsdbQuery, key: CanonicalQuery, client_id: str, now: float
    ) -> None:
        """Kick one background refresh for a stale key (best effort)."""
        if not self.cache.begin_refresh(key):
            return  # a refresh is already in flight

        def granted(ticket: Ticket) -> None:
            try:
                series, degraded, _ = self._run_engine(query)
            except RegionUnavailableError:
                series, degraded = [], True
            if degraded:
                # Never freshen the cache from a follower snapshot; the
                # stale entry stays and a later probe retries.
                self.admission.release(self.sim.now, started_at=ticket.granted_at)
                self._sync_admission_gauges()
                self.cache.abort_refresh(key)
                return
            epoch = self._write_epoch
            cost = self._execution_cost(query, series)
            self.sim.schedule(cost, self._finish_refresh, ticket, key, series, epoch)

        def timed_out(ticket: Ticket) -> None:
            self.cache.abort_refresh(key)

        try:
            ticket = self.admission.admit(client_id, now, None, granted, timed_out)
        except QueryRejected:
            self.cache.abort_refresh(key)  # saturated: retry on a later probe
            return
        self._sync_admission_gauges()
        self.metrics.counter("serve.revalidations").inc()
        if ticket.state == "granted":
            granted(ticket)

    def _finish_refresh(
        self, ticket: Ticket, key: CanonicalQuery, series: List[Series], epoch: int
    ) -> None:
        now = self.sim.now
        self.admission.release(now, started_at=ticket.granted_at)
        self._sync_admission_gauges()
        if epoch == self._write_epoch:
            self.cache.put(key, series, now)
        else:
            self.cache.abort_refresh(key)

    # ------------------------------------------------------------------
    # internals: responses and accounting
    # ------------------------------------------------------------------
    def _respond_cached(
        self,
        status: str,
        lookup,  # CacheLookup
        if_none_match: Optional[str],
        latency: float,
    ) -> ServeResult:
        assert lookup.value is not None and lookup.etag is not None
        age = lookup.age if status == "stale" else 0.0
        if status == "hit":
            self.metrics.counter("serve.hits").inc()
        else:
            self.metrics.counter("serve.stale_serves").inc()
            self._staleness.observe(age)
        self._latency.observe(latency)
        nm = if_none_match is not None and if_none_match == lookup.etag
        if nm:
            self.metrics.counter("serve.not_modified").inc()
        return ServeResult(
            status, None if nm else lookup.value, lookup.etag, age, latency, not_modified=nm
        )

    def _complete_cached(
        self,
        status: str,
        lookup,  # CacheLookup
        if_none_match: Optional[str],
        on_done: Callable[[ServeResult], None],
    ) -> None:
        cost = self.config.service_model.hit_cost
        result = self._respond_cached(status, lookup, if_none_match, cost)
        self.sim.schedule(cost, on_done, result)

    def _rate_check(self, client_id: str, now: float) -> None:
        if self._limiter is None:
            return
        try:
            self._limiter.check(client_id, now)
        except QueryRejected:
            self._count_shed("rate_limited")
            raise

    def _deliver_reject(
        self, exc: QueryRejected, on_reject: Optional[Callable[[QueryRejected], None]]
    ) -> None:
        if on_reject is None:
            raise exc
        self.sim.schedule(0.0, on_reject, exc)

    def _count_shed(self, reason: str) -> None:
        self.metrics.counter("serve.sheds").inc(label=reason)

    def _expire_tick(self) -> None:
        self.admission.expire_due(self.sim.now)
        self._sync_admission_gauges()

    def _sync_admission_gauges(self) -> None:
        self.metrics.gauge("serve.queue_depth").set(float(self.admission.queue_depth))
        self.metrics.gauge("serve.in_flight").set(float(self.admission.in_flight))
        self.metrics.gauge("serve.cache_size").set(float(len(self.cache)))

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cache + admission counters, for reports and examples."""
        out = dict(self.cache.stats())
        out.update(
            granted=self.admission.granted,
            queued=self.admission.queued,
            shed_queue_full=self.admission.shed_queue_full,
            shed_deadline=self.admission.shed_deadline,
            queue_high_water=self.admission.queue_high_water,
            in_flight_high_water=self.admission.in_flight_high_water,
        )
        return out
