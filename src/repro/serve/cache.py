"""Result cache for the query-serving gateway.

The cache sits between the dashboard's read traffic and the
:class:`~repro.tsdb.query.QueryEngine`.  Entries are keyed by a
**canonicalized** query (:func:`canonical_key`) so that queries which
are guaranteed to produce bit-identical results share one entry:

* tag filters are sorted (dict insertion order is not semantic);
* wildcard filter values are normalized to the engine's ``"*"``;
* ``group_by`` is deduplicated, and keys pinned by an exact
  (non-wildcard) tag filter are dropped — every matching series
  carries the same value for such a key, so grouping by it neither
  changes the partition nor the output order;
* the ``downsample_aggregator`` is normalized away when no downsample
  window is set (the engine never reads it then);
* the time window is carried on the downsample grid — ``(bucket,
  offset)`` pairs — so aligned dashboard polls produce stable keys
  while misaligned windows (whose partial edge buckets aggregate
  different raw points) can never collide with aligned ones.

Every normalization above is *exactness-preserving*: two queries map
to the same key **iff** the engine's ``group_and_aggregate`` (and the
scan-side window/tag filtering) is bit-identical for them.  This is
property-tested in ``tests/test_serve_properties.py``.

Eviction is LRU with a hard ``capacity`` bound plus per-entry TTL.
Expired entries are *not* dropped eagerly: they remain available for
**stale-while-revalidate** serving — the gateway may hand an expired
value to a client (stamped with its age) while a refresh executes, or
while the storage tier is down.

**Write-through invalidation** keeps warm entries coherent: the
ingest/publish paths notify the gateway of ``(metric, tags,
time-range)`` touches and :meth:`ResultCache.invalidate` evicts only
the entries whose canonical query could observe the touched points —
metric equal, windows overlapping, and the entry's tag filters
matching the touched tag set.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..tsdb.aggregation import Series
from ..tsdb.query import TsdbQuery

__all__ = [
    "CacheLookup",
    "CanonicalQuery",
    "ResultCache",
    "canonical_key",
    "result_etag",
]

#: The engine's wildcard filter value ("present with any value").
WILDCARD = "*"


@dataclass(frozen=True)
class CanonicalQuery:
    """Hashable canonical form of a :class:`~repro.tsdb.query.TsdbQuery`.

    ``window`` is ``(start_bucket, start_offset, end_bucket,
    end_offset)`` on the downsample grid (grid size 1 — i.e. the raw
    window — when the query does not downsample), so grid-aligned
    windows read as pure bucket indices with zero offsets.
    """

    metric: str
    window: Tuple[int, int, int, int]
    filters: Tuple[Tuple[str, str], ...]
    group_by: Tuple[str, ...]
    aggregator: str
    downsample: Optional[Tuple[int, str]]
    rate: bool
    #: Serving source ("raw", a rollup tier label, or "pooled:<label>").
    #: Keyed so an answer computed from one source can never be served
    #: for a query the planner would now route elsewhere — tier
    #: coverage moves with watermarks and retention floors.
    tier: str = "raw"


def canonical_key(query: TsdbQuery, tier: str = "raw") -> CanonicalQuery:
    """Canonicalize a query into its cache key.

    Total on every valid :class:`TsdbQuery`, and collision-free on
    semantics: two queries share a key iff the engine must return
    bit-identical results for them (see the module docstring for the
    individual normalizations and why each preserves exactness).
    ``tier`` stamps the serving source the planner chose, so tier-served
    and raw-served results live under distinct keys.
    """
    filters = tuple(sorted(query.tag_filters.items()))
    exact = {k for k, v in filters if v != WILDCARD}
    seen: Set[str] = set()
    group_by: List[str] = []
    for key in query.group_by:
        if key in exact or key in seen:
            continue
        seen.add(key)
        group_by.append(key)
    if query.downsample_window is not None:
        grid = query.downsample_window
        downsample: Optional[Tuple[int, str]] = (grid, query.downsample_aggregator)
    else:
        grid = 1
        downsample = None
    window = (
        query.start // grid,
        query.start % grid,
        query.end // grid,
        query.end % grid,
    )
    return CanonicalQuery(
        metric=query.metric,
        window=window,
        filters=filters,
        group_by=tuple(group_by),
        aggregator=query.aggregator,
        downsample=downsample,
        rate=query.rate,
        tier=tier,
    )


def result_etag(series: Sequence[Series]) -> str:
    """Content hash of a result set (the gateway's ETag).

    Digest over the exact bytes a client would observe: per-series
    tags, the int64 timestamps and float64 values.  Two results carry
    the same etag iff they are bit-identical.
    """
    digest = hashlib.blake2b(digest_size=12)
    digest.update(str(len(series)).encode())
    for s in series:
        digest.update(repr(s.tags).encode())
        digest.update(s.timestamps.tobytes())
        digest.update(s.values.tobytes())
    return digest.hexdigest()


class _Entry:
    """One cached result with its freshness and coherence metadata."""

    __slots__ = ("value", "etag", "stored_at", "expires_at")

    def __init__(self, value: List[Series], etag: str, stored_at: float, expires_at: float) -> None:
        self.value = value
        self.etag = etag
        self.stored_at = stored_at
        self.expires_at = expires_at


@dataclass(frozen=True)
class CacheLookup:
    """Outcome of one cache probe.

    ``state`` is ``"fresh"``, ``"stale"`` (expired but retained for
    stale-while-revalidate) or ``"miss"``.  ``age`` is seconds since
    the entry was stored (0.0 on a miss).
    """

    state: str
    value: Optional[List[Series]]
    etag: Optional[str]
    age: float


_MISS = CacheLookup("miss", None, None, 0.0)


class ResultCache:
    """LRU + TTL result cache with write-through invalidation.

    The cache never consults a wall clock: callers pass ``now`` (the
    simulator clock in a deployment) so behaviour is deterministic.
    """

    def __init__(self, capacity: int = 512, ttl: float = 2.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.capacity = capacity
        self.ttl = ttl
        # Bounded LRU: probes move entries to the MRU end, inserts
        # evict from the LRU end once past ``capacity``.
        self._cache: "OrderedDict[CanonicalQuery, _Entry]" = OrderedDict()
        #: Keys with a revalidation currently executing (so a stampede
        #: of stale hits triggers exactly one refresh).
        self._refreshing: Set[CanonicalQuery] = set()
        self.hits = 0
        self.misses = 0
        self.stale_probes = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # probing and filling
    # ------------------------------------------------------------------
    def get(self, key: CanonicalQuery, now: float) -> CacheLookup:
        """Probe the cache; expired entries surface as ``"stale"``."""
        entry = self._cache.get(key)
        if entry is None:
            self.misses += 1
            return _MISS
        self._cache.move_to_end(key)
        age = now - entry.stored_at
        if now < entry.expires_at:
            self.hits += 1
            return CacheLookup("fresh", list(entry.value), entry.etag, age)
        self.stale_probes += 1
        return CacheLookup("stale", list(entry.value), entry.etag, age)

    def put(self, key: CanonicalQuery, value: Sequence[Series], now: float) -> str:
        """Fill (or refresh) an entry; returns its etag."""
        etag = result_etag(value)
        self._cache[key] = _Entry(list(value), etag, now, now + self.ttl)
        self._cache.move_to_end(key)
        self._refreshing.discard(key)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.evictions += 1
        return etag

    # ------------------------------------------------------------------
    # revalidation bookkeeping
    # ------------------------------------------------------------------
    def begin_refresh(self, key: CanonicalQuery) -> bool:
        """Claim the (single) refresh slot for a stale key.

        Returns True when this caller should revalidate; False when a
        refresh is already in flight.
        """
        if key in self._refreshing:
            return False
        self._refreshing.add(key)
        return True

    def abort_refresh(self, key: CanonicalQuery) -> None:
        """Release a refresh claim without filling (refresh failed)."""
        self._refreshing.discard(key)

    # ------------------------------------------------------------------
    # write-through invalidation
    # ------------------------------------------------------------------
    def invalidate(
        self,
        metric: str,
        tags: Mapping[str, str],
        t_min: int,
        t_max: int,
    ) -> int:
        """Evict every entry that could observe the touched points.

        A touch ``(metric, tags, [t_min, t_max])`` overlaps an entry
        when the metrics match, the touched range intersects the
        entry's half-open window, and the entry's tag filters accept
        the touched tag set (wildcards match any present value; a
        filter on a key absent from ``tags`` cannot match, so such
        entries are provably unaffected and survive).  Returns the
        number of entries evicted.
        """
        doomed = [
            key
            for key, entry in self._cache.items()
            if key.metric == metric and self._overlaps(key, tags, t_min, t_max)
        ]
        for key in doomed:
            del self._cache[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def invalidate_range(self, metric: str, t_min: int, t_max: int) -> int:
        """Evict every entry of ``metric`` overlapping ``[t_min, t_max]``,
        regardless of tag filters.

        The retention path's eviction: expiry removes *every* series of
        a metric in the range, so tag-filter matching (which lets
        provably unaffected entries survive a write touch) does not
        apply.  Returns the number of entries evicted.
        """
        doomed = [
            key
            for key, entry in self._cache.items()
            if key.metric == metric
            and self._window_overlaps(key, t_min, t_max)
        ]
        for key in doomed:
            del self._cache[key]
        self.invalidations += len(doomed)
        return len(doomed)

    @staticmethod
    def _window_overlaps(key: CanonicalQuery, t_min: int, t_max: int) -> bool:
        grid = key.downsample[0] if key.downsample is not None else 1
        start = key.window[0] * grid + key.window[1]
        end = key.window[2] * grid + key.window[3]
        return not (t_max < start or t_min >= end)

    @staticmethod
    def _overlaps(
        key: CanonicalQuery, tags: Mapping[str, str], t_min: int, t_max: int
    ) -> bool:
        grid = key.downsample[0] if key.downsample is not None else 1
        start = key.window[0] * grid + key.window[1]
        end = key.window[2] * grid + key.window[3]
        if t_max < start or t_min >= end:
            return False
        for fk, fv in key.filters:
            actual = tags.get(fk)
            if actual is None:
                return False
            if fv != WILDCARD and actual != fv:
                return False
        return True

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Snapshot of the cache's own counters (telemetry feeds these)."""
        return {
            "size": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
            "stale_probes": self.stale_probes,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
