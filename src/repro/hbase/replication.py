"""Region replication: WAL shipping, follower replicas, promotion.

Read-path fault tolerance for the simulated HBase deployment.  Each
region gets a *primary* (the writable copy the master assigns today)
plus ``n_followers`` read-only follower replicas placed on distinct
RegionServers.  After every WAL sync on the primary, the synced cells
are *shipped* to each follower over the network and applied by a
serial, bounded-lag apply loop — exactly HBase's async region-replica
replication, so followers trail the primary by a measurable, reported
staleness rather than participating in a synchronous quorum.

On primary crash the master *promotes* the most-caught-up live
follower to primary (and replays the dead server's durable WAL on top,
newest-wins, so no synced cell is lost), replacing discard-and-replay
as the only recovery path.  Timeline-consistency reads may be served
from any follower; the staleness bound travels with every reply.

The coordinator is control-plane state owned alongside the master;
only the *shipping* of cells and their *application* consume simulated
network/CPU time, which is what keeps the fault-free overhead of
replication off the write critical path (the primary acks after its
own WAL sync, never waiting for followers).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..cluster.metrics import MetricsRegistry
from ..cluster.network import Network
from ..cluster.simulation import Simulator
from ..obs.telemetry import component_registry
from .region import Cell, Region

__all__ = ["FollowerReplica", "ReplicaSet", "ReplicationCoordinator"]


class FollowerReplica:
    """One read-only copy of a region, hosted on a follower server.

    ``applied_seq`` / ``applied_through`` track how far the apply loop
    has caught up with the primary's shipped WAL stream; the gap is the
    replica's staleness bound, surfaced on every timeline read.
    """

    __slots__ = (
        "rset",
        "region",
        "server_name",
        "applied_seq",
        "applied_through",
        "pending",
        "in_flight",
        "closed",
    )

    def __init__(
        self,
        rset: "ReplicaSet",
        region: Region,
        server_name: str,
        applied_seq: int,
        applied_through: float,
    ) -> None:
        self.rset = rset
        self.region = region
        self.server_name = server_name
        self.applied_seq = applied_seq
        self.applied_through = applied_through
        # Shipped-but-unapplied WAL batches: (seq_hi, shipped_at, cells).
        self.pending: Deque[Tuple[int, float, List[Cell]]] = deque()
        self.in_flight = False
        self.closed = False

    def staleness(self, now: float) -> float:
        """Upper bound on how far this replica trails the primary (seconds).

        Zero when fully caught up; otherwise the age of the oldest
        write the replica has *not* applied yet.
        """
        if not self.pending and not self.in_flight and self.applied_seq >= self.rset.shipped_seq:
            return 0.0
        return max(0.0, now - self.applied_through)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FollowerReplica {self.region.info.name}@{self.server_name} "
            f"applied={self.applied_seq}/{self.rset.shipped_seq}>"
        )


class ReplicaSet:
    """Replication state for one region: primary identity + followers."""

    __slots__ = ("region_name", "primary_region", "primary_server", "shipped_seq", "followers")

    def __init__(self, region_name: str, primary_region: Region, primary_server: Optional[str]) -> None:
        self.region_name = region_name
        self.primary_region = primary_region
        self.primary_server = primary_server
        #: Monotone count of cells shipped into the replication stream.
        self.shipped_seq = 0
        self.followers: List[FollowerReplica] = []


class ReplicationCoordinator:
    """Owns replica placement and the WAL-shipping apply loops.

    Parameters
    ----------
    n_followers:
        Follower replicas per region (replication factor minus one).
    ship_delay:
        Baseline batching delay before a shipped WAL batch leaves the
        primary; the chaos ``wal_lag`` event multiplies it.
    repump_interval:
        How often a blocked shipping loop re-checks a partitioned link.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        master: "object",
        n_followers: int = 1,
        ship_delay: float = 0.002,
        repump_interval: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if n_followers < 1:
            raise ValueError("n_followers must be >= 1")
        self.sim = sim
        self.network = network
        self.master = master
        self.n_followers = n_followers
        self.ship_delay = ship_delay
        self.repump_interval = repump_interval
        self.metrics = metrics if metrics is not None else component_registry("replication")
        self._sets: Dict[str, ReplicaSet] = {}
        self._stalled: Set[str] = set()
        self._ship_lag: Dict[str, float] = {}
        self._cursor = 0
        self._pending_cells = 0
        self.promotions = 0

    # ------------------------------------------------------------------
    # placement (driven by the master)
    # ------------------------------------------------------------------
    def ensure_replicas(self, region: Region, primary_server: Optional[str]) -> None:
        """Create/refresh the follower set for one region."""
        name = region.info.name
        rset = self._sets.get(name)
        if rset is None:
            rset = ReplicaSet(name, region, primary_server)
            self._sets[name] = rset
        else:
            rset.primary_region = region
            rset.primary_server = primary_server
        self._top_up(rset)

    def _top_up(self, rset: ReplicaSet) -> None:
        """Bring the set back to ``n_followers`` on distinct live servers."""
        if rset.primary_server is None:
            return
        while len(rset.followers) < self.n_followers:
            used = {rset.primary_server} | {f.server_name for f in rset.followers}
            candidates = [n for n in self.master.live_servers() if n not in used]
            if not candidates:
                return
            name = candidates[self._cursor % len(candidates)]
            self._cursor += 1
            self._spawn_follower(rset, name)

    def _spawn_follower(self, rset: ReplicaSet, server_name: str) -> None:
        src = rset.primary_region
        region = Region(src.info, src.flush_threshold, src.retain_data)
        snapshot = src.scan()
        if snapshot:
            # Bootstrap from the primary's current contents (the
            # snapshot-then-tail pattern); shipped batches from here on
            # are idempotent on top of it (newest-wins).
            region.put_block(snapshot)
        follower = FollowerReplica(rset, region, server_name, rset.shipped_seq, self.sim.now)
        self.master.server(server_name).open_follower(follower)
        rset.followers.append(follower)
        self.metrics.counter("replication.bootstraps").inc()

    def follower_servers(self, region_name: str) -> Tuple[str, ...]:
        rset = self._sets.get(region_name)
        if rset is None:
            return ()
        return tuple(f.server_name for f in rset.followers)

    def primary_moved(self, region_name: str, server_name: str) -> None:
        """The master reassigned a region's primary copy to ``server_name``."""
        rset = self._sets.get(region_name)
        if rset is None:
            return
        rset.primary_server = server_name
        conflict = next((f for f in rset.followers if f.server_name == server_name), None)
        if conflict is not None:
            # Placement invariant: primary and followers on distinct
            # servers.  Drop the colliding follower and re-place it.
            rset.followers.remove(conflict)
            self._close_follower(conflict)
            self._top_up(rset)

    def on_split(self, parent_name: str, daughters: List[Tuple[Region, Optional[str]]]) -> None:
        """A region split: retire the parent's set, replicate the daughters."""
        old = self._sets.pop(parent_name, None)
        if old is not None:
            for follower in old.followers:
                self._close_follower(follower)
        for region, server_name in daughters:
            self.ensure_replicas(region, server_name)

    def _close_follower(self, follower: FollowerReplica) -> None:
        follower.closed = True
        for _, _, cells in follower.pending:
            self._pending_cells -= len(cells)
        follower.pending.clear()
        self.master.server(follower.server_name).close_follower(follower.region.info.name)

    # ------------------------------------------------------------------
    # WAL shipping (called by the primary RegionServer after wal.sync)
    # ------------------------------------------------------------------
    def ship(self, region_name: str, cells: List[Cell], source_server: str) -> None:
        """Enqueue one synced WAL batch for every follower of the region."""
        rset = self._sets.get(region_name)
        if rset is None or not cells:
            return
        rset.primary_server = source_server
        rset.shipped_seq += len(cells)
        entry = (rset.shipped_seq, self.sim.now, list(cells))
        self.metrics.counter("replication.shipped").inc(len(cells))
        for follower in rset.followers:
            follower.pending.append(entry)
            self._pending_cells += len(cells)
            self._drain(rset, follower)
        self.metrics.gauge("replication.lag_cells").set(self._pending_cells)

    def _drain(self, rset: ReplicaSet, follower: FollowerReplica) -> None:
        """Serial apply loop: ship the oldest pending batch, one in flight."""
        if follower.closed or follower.in_flight or not follower.pending:
            return
        if follower.server_name in self._stalled:
            return  # resume_followers re-kicks the loop
        if self.master.server(follower.server_name).crashed:
            return  # recovery rebuilds this follower elsewhere
        follower.in_flight = True
        delay = self.ship_delay * self._ship_lag.get(rset.primary_server, 1.0)
        self.sim.schedule(delay, self._ship_entry, rset, follower)

    def _ship_entry(self, rset: ReplicaSet, follower: FollowerReplica) -> None:
        if follower.closed or not follower.pending:
            follower.in_flight = False
            return
        _, _, cells = follower.pending[0]
        src = self.master.server(rset.primary_server)
        dst = self.master.server(follower.server_name)
        handle = self.network.send(
            src.node.hostname, dst.node.hostname, self._apply_entry, rset, follower
        )
        if handle is None:
            # Partitioned link: leave the batch queued and re-check on
            # the next pump tick (the lag gauge keeps growing, which is
            # exactly what the wal_lag panel should show).
            follower.in_flight = False
            self.metrics.counter("replication.ship_blocked").inc()
            self.sim.schedule(self.repump_interval, self._drain, rset, follower)
            return
        del cells  # applied on delivery

    def _apply_entry(self, rset: ReplicaSet, follower: FollowerReplica) -> None:
        if follower.closed or not follower.pending:
            follower.in_flight = False
            return
        server = self.master.server(follower.server_name)
        if server.crashed:
            follower.in_flight = False
            return
        seq_hi, shipped_at, cells = follower.pending.popleft()
        follower.region.put_block(cells)
        follower.applied_seq = seq_hi
        follower.applied_through = shipped_at
        self._pending_cells -= len(cells)
        self.metrics.counter("replication.applied").inc(len(cells))
        self.metrics.gauge("replication.lag_cells").set(self._pending_cells)
        cost = server.service_model.put_block_cost(len(cells))
        self.sim.schedule(cost, self._entry_applied, rset, follower)

    def _entry_applied(self, rset: ReplicaSet, follower: FollowerReplica) -> None:
        follower.in_flight = False
        self._drain(rset, follower)

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def promote(self, region_name: str) -> Optional[Tuple[Region, str]]:
        """Promote the most-caught-up live follower to primary.

        Returns ``(region, server_name)`` of the new primary, or
        ``None`` when no live follower exists (the caller falls back to
        plain WAL-replay recovery).  The promoted copy may trail the
        dead primary; the master replays the dead server's durable WAL
        on top of it (idempotent, newest-wins), so every WAL-synced
        cell survives the failover.
        """
        rset = self._sets.get(region_name)
        if rset is None:
            return None
        live = [f for f in rset.followers if not self.master.server(f.server_name).crashed]
        if not live:
            return None
        best = max(live, key=lambda f: f.applied_seq)
        rset.followers.remove(best)
        self._close_follower(best)
        server = self.master.server(best.server_name)
        server.open_region(best.region)
        rset.primary_server = best.server_name
        rset.primary_region = best.region
        self.promotions += 1
        self.metrics.counter("replication.promotions").inc()
        return best.region, best.server_name

    def handle_server_crash(self, server_name: str) -> None:
        """Drop followers hosted on the dead server and re-place them."""
        for rset in self._sets.values():
            for follower in [f for f in rset.followers if f.server_name == server_name]:
                rset.followers.remove(follower)
                self._close_follower(follower)
            self._top_up(rset)

    def mirror(self, region_name: str, cells: List[Cell]) -> None:
        """Apply cells to every follower outside the WAL stream.

        Used for bulk loads (``direct_put``) and master WAL replay,
        which write into the primary region directly and would
        otherwise leave followers permanently behind.
        """
        rset = self._sets.get(region_name)
        if rset is None or not cells:
            return
        for follower in rset.followers:
            follower.region.put_block(cells)

    def mirror_delete(
        self, region_name: str, start_row: bytes, end_row: bytes, ts: float
    ) -> None:
        """Apply a range tombstone to every follower outside the WAL stream.

        The delete-side counterpart of :meth:`mirror`: retention expiry
        writes into primaries directly, so followers must be tombstoned
        explicitly or timeline reads would resurface expired cells.
        """
        rset = self._sets.get(region_name)
        if rset is None:
            return
        for follower in rset.followers:
            follower.region.delete_range(start_row, end_row, ts)

    def best_follower(self, region_name: str) -> Optional[Tuple[Region, float]]:
        """Most-caught-up live follower and its staleness bound, if any."""
        rset = self._sets.get(region_name)
        if rset is None:
            return None
        live = [f for f in rset.followers if not self.master.server(f.server_name).crashed]
        if not live:
            return None
        best = max(live, key=lambda f: f.applied_seq)
        return best.region, best.staleness(self.sim.now)

    # ------------------------------------------------------------------
    # chaos hooks
    # ------------------------------------------------------------------
    def stall_followers(self, server_name: str) -> None:
        """``replica_stall``: the server's apply loops stop draining."""
        self._stalled.add(server_name)
        self.metrics.counter("replication.stalls").inc(label=server_name)

    def resume_followers(self, server_name: str) -> None:
        self._stalled.discard(server_name)
        for rset in self._sets.values():
            for follower in rset.followers:
                if follower.server_name == server_name:
                    self._drain(rset, follower)

    def set_ship_lag(self, server_name: str, factor: float) -> None:
        """``wal_lag``: multiply the shipping delay out of ``server_name``."""
        self._ship_lag[server_name] = max(1.0, factor)
        self.metrics.counter("replication.wal_lag_events").inc(label=server_name)

    def clear_ship_lag(self, server_name: str) -> None:
        self._ship_lag.pop(server_name, None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        return {
            "regions": len(self._sets),
            "followers": sum(len(r.followers) for r in self._sets.values()),
            "pending_cells": self._pending_cells,
            "promotions": self.promotions,
        }

    def max_staleness(self) -> float:
        """Worst staleness bound across every live follower (seconds)."""
        worst = 0.0
        now = self.sim.now
        for rset in self._sets.values():
            for follower in rset.followers:
                worst = max(worst, follower.staleness(now))
        return worst
