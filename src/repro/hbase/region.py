"""Regions: contiguous key-range shards backed by a mini-LSM tree.

A region owns the half-open row-key interval ``[start_key, end_key)``
(empty bytes meaning unbounded on either side, as in HBase).  Writes
land in an in-memory *memstore*; when the memstore exceeds its flush
threshold it is frozen into an immutable, sorted :class:`StoreFile`.
Reads merge the memstore with all store files, newest first.  Minor
compaction merges store files back into one.

The data plane is real — cells written here are the cells the TSDB
query engine later reads — while the *timing* of RPCs is modelled by
the RegionServer's service loop, not here.

Deletes are modelled as HBase-style *range tombstones*: a tombstone
``(start_row, end_row, ts)`` masks every cell in the row range whose
write timestamp is ``<= ts`` — a later re-write of the same cell wins
over the tombstone, exactly like newest-wins between versions.  Masked
cells stay on disk until the next :meth:`Region.compact`, which purges
them physically and retires the tombstones.  Tombstones are treated as
durable region metadata (as if WAL-persisted at write time), so a
RegionServer crash loses unflushed *data* but never an acknowledged
delete.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Cell", "StoreFile", "Region", "RegionInfo"]


@dataclass(frozen=True, slots=True)
class Cell:
    """One HBase cell: ``(row, qualifier) -> value`` at a write timestamp.

    ``ts`` is a logical write timestamp used for newest-wins conflict
    resolution between memstore and store files.
    """

    row: bytes
    qualifier: bytes
    value: bytes
    ts: float

    @property
    def key(self) -> Tuple[bytes, bytes]:
        return (self.row, self.qualifier)


@dataclass(frozen=True)
class RegionInfo:
    """Identity and key range of a region."""

    table: str
    start_key: bytes
    end_key: bytes  # exclusive; b"" = unbounded
    region_id: int

    @property
    def name(self) -> str:
        return f"{self.table},{self.start_key.hex()},{self.region_id}"

    def contains(self, row: bytes) -> bool:
        if row < self.start_key:
            return False
        if self.end_key and row >= self.end_key:
            return False
        return True


class StoreFile:
    """Immutable sorted run of cells (an HFile stand-in).

    Cells are stored sorted by ``(row, qualifier)``; point lookups use
    binary search, scans use slicing.  One entry per key (the flush
    already deduplicated by newest timestamp).
    """

    def __init__(self, cells: List[Cell]) -> None:
        self._cells = sorted(cells, key=lambda c: c.key)
        self._keys = [c.key for c in self._cells]

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, row: bytes, qualifier: bytes) -> Optional[Cell]:
        i = bisect.bisect_left(self._keys, (row, qualifier))
        if i < len(self._keys) and self._keys[i] == (row, qualifier):
            return self._cells[i]
        return None

    def scan(self, start_row: bytes, end_row: bytes) -> Iterator[Cell]:
        """Cells with ``start_row <= row < end_row`` (``b''`` end = unbounded)."""
        lo = bisect.bisect_left(self._keys, (start_row, b""))
        for cell in self._cells[lo:]:
            if end_row and cell.row >= end_row:
                break
            yield cell

    def cells(self) -> Iterator[Cell]:
        return iter(self._cells)


class Region:
    """A key-range shard with memstore + store files.

    Parameters
    ----------
    info:
        Identity/key-range of the region.
    flush_threshold:
        Number of memstore entries that triggers an automatic flush.
        Real HBase flushes on bytes; entries keep the model simple and
        deterministic.
    """

    def __init__(
        self,
        info: RegionInfo,
        flush_threshold: int = 100_000,
        retain_data: bool = True,
    ) -> None:
        if flush_threshold < 1:
            raise ValueError("flush_threshold must be >= 1")
        self.info = info
        self.flush_threshold = flush_threshold
        self.retain_data = retain_data
        self._memstore: Dict[Tuple[bytes, bytes], Cell] = {}
        self._store_files: List[StoreFile] = []
        self._tombstones: List[Tuple[bytes, bytes, float]] = []
        self.writes = 0
        self.flushes = 0
        self.compactions = 0
        self.deletes = 0

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, cell: Cell) -> None:
        """Insert/overwrite one cell.  Raises if the row is out of range.

        Point-wise convenience form of :meth:`put_block` (the single
        implementation).
        """
        self.put_block([cell])

    def put_block(self, cells: List[Cell]) -> None:
        """Insert a run of cells in one call (the block write path).

        Semantically identical to calling :meth:`put` per cell, but the
        range check runs once per distinct row (block runs repeat rows
        for long stretches), counting-only mode becomes one counter
        bump, and the flush trigger is evaluated once per run instead
        of once per cell.
        """
        if not cells:
            return
        prev_row: Optional[bytes] = None
        for cell in cells:
            if cell.row != prev_row:
                if not self.info.contains(cell.row):
                    raise KeyError(
                        f"row {cell.row.hex()} outside region range "
                        f"[{self.info.start_key.hex()}, {self.info.end_key.hex()})"
                    )
                prev_row = cell.row
        if not self.retain_data:
            # Counting-only mode for pure-throughput ingestion studies:
            # the writes are accounted for but the bytes are discarded, so
            # multi-million-sample simulations stay within memory.
            self.writes += len(cells)
            return
        memstore = self._memstore
        for cell in cells:
            existing = memstore.get(cell.key)
            if existing is None or cell.ts >= existing.ts:
                memstore[cell.key] = cell
        self.writes += len(cells)
        if len(memstore) >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        """Freeze the memstore into a new store file."""
        if not self._memstore:
            return
        self._store_files.append(StoreFile(list(self._memstore.values())))
        self._memstore.clear()
        self.flushes += 1

    def discard_memstore(self) -> int:
        """Drop unflushed data (crash model).  Returns the number of cells lost.

        Store files survive a RegionServer crash (they live on shared
        storage); the memstore does not.  The master replays the WAL
        after calling this, restoring acknowledged writes.
        """
        lost = len(self._memstore)
        self._memstore.clear()
        return lost

    # ------------------------------------------------------------------
    # delete path (range tombstones)
    # ------------------------------------------------------------------
    def delete_range(self, start_row: bytes, end_row: bytes, ts: float) -> int:
        """Mask every cell in ``[start_row, end_row)`` written at or before ``ts``.

        Returns the number of currently-visible cells the tombstone
        masks (for expiry accounting).  The mask is logical until the
        next :meth:`compact` purges the bytes; a re-write with a newer
        timestamp resurfaces the cell, which is what lets the lifecycle
        tier detect and re-drop too-late backfill explicitly.
        """
        doomed = sum(1 for c in self.scan(start_row, end_row) if c.ts <= ts)
        self._tombstones.append((start_row, end_row, ts))
        self.deletes += 1
        return doomed

    def _masked(self, cell: Cell) -> bool:
        for lo, hi, ts in self._tombstones:
            if cell.row >= lo and (not hi or cell.row < hi) and cell.ts <= ts:
                return True
        return False

    @property
    def tombstone_count(self) -> int:
        return len(self._tombstones)

    def compact(self) -> None:
        """Minor compaction: merge store files into one, newest-wins.

        Also the physical delete point: cells masked by a tombstone are
        dropped from the merged file *and* the memstore, after which the
        tombstones are retired.
        """
        if len(self._store_files) <= 1 and not self._tombstones:
            return
        merged: Dict[Tuple[bytes, bytes], Cell] = {}
        for sf in self._store_files:  # oldest first; later files overwrite
            for cell in sf.cells():
                existing = merged.get(cell.key)
                if existing is None or cell.ts >= existing.ts:
                    merged[cell.key] = cell
        if self._tombstones:
            merged = {k: c for k, c in merged.items() if not self._masked(c)}
            self._memstore = {
                k: c for k, c in self._memstore.items() if not self._masked(c)
            }
            self._tombstones.clear()
        self._store_files = [StoreFile(list(merged.values()))] if merged else []
        self.compactions += 1

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, row: bytes, qualifier: bytes) -> Optional[Cell]:
        """Point lookup, newest version wins; tombstoned cells are invisible."""
        best = self._memstore.get((row, qualifier))
        for sf in reversed(self._store_files):
            cell = sf.get(row, qualifier)
            if cell is not None and (best is None or cell.ts > best.ts):
                best = cell
        if best is not None and self._tombstones and self._masked(best):
            return None
        return best

    def scan(self, start_row: bytes = b"", end_row: bytes = b"") -> List[Cell]:
        """Range scan, sorted by ``(row, qualifier)``, newest version wins.

        Bounds are clamped to the region's own range.
        """
        lo = max(start_row, self.info.start_key)
        hi = end_row
        if self.info.end_key:
            hi = self.info.end_key if not hi else min(hi, self.info.end_key)
        merged: Dict[Tuple[bytes, bytes], Cell] = {}
        for sf in self._store_files:
            for cell in sf.scan(lo, hi):
                existing = merged.get(cell.key)
                if existing is None or cell.ts >= existing.ts:
                    merged[cell.key] = cell
        for key, cell in self._memstore.items():
            row = key[0]
            if row < lo or (hi and row >= hi):
                continue
            existing = merged.get(key)
            if existing is None or cell.ts >= existing.ts:
                merged[key] = cell
        cells = merged.values()
        if self._tombstones:
            cells = [c for c in cells if not self._masked(c)]
        return sorted(cells, key=lambda c: c.key)

    # ------------------------------------------------------------------
    # split support
    # ------------------------------------------------------------------
    @property
    def memstore_size(self) -> int:
        return len(self._memstore)

    @property
    def store_file_count(self) -> int:
        return len(self._store_files)

    def cell_count(self) -> int:
        """Total live cells (deduplicated)."""
        return len(self.scan())

    def midpoint_key(self) -> Optional[bytes]:
        """A row key that splits the live data roughly in half.

        Returns ``None`` when the region holds fewer than two distinct
        rows (nothing to split).
        """
        cells = self.scan()
        rows = sorted({c.row for c in cells})
        if len(rows) < 2:
            return None
        return rows[len(rows) // 2]

    def split(self, split_key: bytes, new_region_ids: Tuple[int, int]) -> Tuple["Region", "Region"]:
        """Split into two daughter regions at ``split_key``.

        The parent must contain ``split_key`` strictly inside its range.
        Live cells are rewritten into the daughters' memstores (real
        HBase uses reference files; the observable result is the same).
        """
        if not self.info.contains(split_key) or split_key == self.info.start_key:
            raise ValueError("split key must fall strictly inside the region range")
        left_info = RegionInfo(self.info.table, self.info.start_key, split_key, new_region_ids[0])
        right_info = RegionInfo(self.info.table, split_key, self.info.end_key, new_region_ids[1])
        left = Region(left_info, self.flush_threshold, self.retain_data)
        right = Region(right_info, self.flush_threshold, self.retain_data)
        for cell in self.scan():
            (left if cell.row < split_key else right).put(cell)
        # Splitting must not inflate the write counters used for skew metrics.
        left.writes = 0
        right.writes = 0
        return left, right

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Region {self.info.name} memstore={self.memstore_size} "
            f"files={self.store_file_count}>"
        )
