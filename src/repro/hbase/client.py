"""HBase client: row-key routing, retries, deadlines and hedged reads.

The client looks up region locations from the master (the meta-table
stand-in), groups batched puts per destination RegionServer, and retries
retryable failures — queue overflow, regions in motion after a crash —
with exponential backoff, exactly the behaviour the TSD daemons layer
on top of.

The read path is replica-aware: scans fan out one RPC per region with
a per-RPC deadline, bounded *jittered* retries, an optional hedged
second request after a latency threshold, and an explicit consistency
mode — ``strong`` reads primary copies only, ``timeline`` may rotate
onto follower replicas and reports the staleness bound that came back
with the data.

All operations are asynchronous: they return immediately and invoke the
supplied callback when the RPC (including retries) resolves, in
simulated time.
"""

from __future__ import annotations

import random
import zlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..cluster.metrics import MetricsRegistry
from ..obs.telemetry import component_registry
from ..cluster.network import Network
from ..cluster.simulation import Simulator
from .master import HMaster, ReplicaLocation
from .region import Cell
from .regionserver import GetRequest, PutRequest, RpcReply, ScanRequest

__all__ = ["CONSISTENCY_MODES", "HTableClient", "ScanResult"]

#: Explicit read-consistency modes (HBase's Consistency.STRONG/TIMELINE).
CONSISTENCY_MODES = ("strong", "timeline")

#: Sentinel meaning "use the client's configured rpc_timeout".
_DEFAULT_DEADLINE = object()


@dataclass
class ScanResult:
    """Outcome of one replica-aware scan.

    ``ok`` is False when at least one region's share could not be read
    within the retry budget (the merged ``cells`` are then partial).
    ``staleness`` is the worst follower staleness bound that
    contributed; 0.0 when every share came from a primary.
    """

    cells: List[Cell] = field(default_factory=list)
    ok: bool = True
    staleness: float = 0.0
    retries: int = 0
    hedges: int = 0
    follower_reads: int = 0


class HTableClient:
    """Asynchronous table client for the simulated cluster.

    Parameters
    ----------
    host:
        Hostname the client runs on (for network latency purposes).
    max_retries:
        Attempts per RPC before reporting permanent failure.
    backoff_base, backoff_mult:
        Exponential backoff schedule: retry ``k`` waits
        ``backoff_base * backoff_mult**k`` seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        master: HMaster,
        host: str,
        max_retries: int = 8,
        backoff_base: float = 0.02,
        backoff_mult: float = 2.0,
        rpc_timeout: Optional[float] = 2.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if rpc_timeout is not None and rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive (or None)")
        self.sim = sim
        self.network = network
        self.master = master
        self.host = host
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_mult = backoff_mult
        self.rpc_timeout = rpc_timeout
        self.metrics = metrics if metrics is not None else component_registry("tsd")
        # Deterministic per-host jitter source (seeded, so simulations
        # replay identically; hash() is process-randomised, crc32 is not).
        self._rng = random.Random(zlib.crc32(host.encode("utf-8", "replace")))

    # ------------------------------------------------------------------
    # puts
    # ------------------------------------------------------------------
    def put(
        self,
        table: str,
        cells: List[Cell],
        on_done: Optional[Callable[[bool, int], None]] = None,
        batch_ids: Tuple[int, ...] = (),
        block: bool = False,
    ) -> None:
        """Write a batch of cells; ``on_done(ok, n_cells)`` when resolved.

        The batch is partitioned by destination server; each partition
        succeeds or fails independently and ``on_done`` fires once per
        partition with that partition's cell count (on failure too, so
        callers can reconcile exactly how many cells each resolution
        covers).  ``batch_ids`` is trace correlation only: the ingest
        batch ids whose cells this put carries, stamped onto the
        :class:`PutRequest` so RegionServer spans join the batch trace.
        With ``block=True`` the cells are declared to be sorted
        per-series runs and each partition is served at the cheaper
        block-put cost (the retry path keeps the flag).
        """
        if not cells:
            if on_done is not None:
                on_done(True, 0)
            return
        groups = self._group_by_server(table, cells)
        for server_name, group in groups.items():
            self._send_put(table, server_name, group, 0, on_done, batch_ids, block)

    def _group_by_server(self, table: str, cells: List[Cell]) -> Dict[Optional[str], List[Cell]]:
        # Cells arrive in row runs (coalesced point batches and block
        # runs alike), so the meta lookup is memoised on row change
        # rather than paid per cell.
        groups: Dict[Optional[str], List[Cell]] = defaultdict(list)
        last_row: Optional[bytes] = None
        server_name: Optional[str] = None
        for cell in cells:
            if cell.row != last_row:
                last_row = cell.row
                _, server_name = self.master.locate(table, cell.row)
            groups[server_name].append(cell)
        return groups

    def _send_put(
        self,
        table: str,
        server_name: Optional[str],
        cells: List[Cell],
        attempt: int,
        on_done: Optional[Callable[[bool, int], None]],
        batch_ids: Tuple[int, ...] = (),
        block: bool = False,
    ) -> None:
        if server_name is None:
            # Region currently unassigned (recovery in flight): back off and re-route.
            self._retry_put(table, cells, attempt, on_done, batch_ids, block)
            return
        server = self.master.server(server_name)
        request = PutRequest(table, cells, batch_ids, block)
        # One attempt resolves exactly once: first of {reply, timeout,
        # dropped send} wins; a late reply after a timeout is ignored
        # (the retry chain owns the cells from then on).
        resolved = [False]
        timeout_handle: List[Optional[object]] = [None]

        def settle() -> bool:
            if resolved[0]:
                return False
            resolved[0] = True
            handle = timeout_handle[0]
            if handle is not None:
                handle.cancel()  # type: ignore[attr-defined]
            return True

        def handle_reply(reply: RpcReply) -> None:
            if not settle():
                return
            if reply.ok:
                self.metrics.counter("client.put_ok").inc(len(cells))
                if on_done is not None:
                    on_done(True, len(cells))
            elif reply.retryable:
                self._retry_put(table, cells, attempt, on_done, batch_ids, block)
            else:
                self._fail_put(cells, on_done)

        def handle_timeout() -> None:
            # Crashed server never replied / partition ate the reply.
            if not settle():
                return
            self.metrics.counter("client.rpc_timeouts").inc()
            self._retry_put(table, cells, attempt, on_done, batch_ids, block)

        sent = self.network.send(
            self.host, server.node.hostname, server.rpc, request, handle_reply, self.host
        )
        if sent is None:
            # The network dropped the send (partitioned endpoint): fail
            # fast into the retry path instead of hanging forever.
            if settle():
                self.metrics.counter("client.sends_dropped").inc()
                self._retry_put(table, cells, attempt, on_done, batch_ids, block)
            return
        if self.rpc_timeout is not None:
            timeout_handle[0] = self.sim.schedule(self.rpc_timeout, handle_timeout)

    def _retry_put(
        self,
        table: str,
        cells: List[Cell],
        attempt: int,
        on_done: Optional[Callable[[bool, int], None]],
        batch_ids: Tuple[int, ...] = (),
        block: bool = False,
    ) -> None:
        if attempt >= self.max_retries:
            self._fail_put(cells, on_done)
            return
        self.metrics.counter("client.retries").inc()
        delay = self.backoff_base * (self.backoff_mult ** attempt)

        def resend() -> None:
            # Re-locate: assignments may have changed while backing off.
            for server_name, group in self._group_by_server(table, cells).items():
                self._send_put(table, server_name, group, attempt + 1, on_done, batch_ids, block)

        self.sim.schedule(delay, resend)

    def _fail_put(self, cells: List[Cell], on_done: Optional[Callable[[bool, int], None]]) -> None:
        self.metrics.counter("client.put_failed").inc(len(cells))
        if on_done is not None:
            on_done(False, len(cells))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(
        self,
        table: str,
        row: bytes,
        qualifier: bytes,
        on_done: Callable[[Optional[Cell]], None],
    ) -> None:
        """Point read; delivers the cell (or None) to ``on_done``."""
        self._send_get(table, row, qualifier, 0, on_done)

    def _send_get(
        self,
        table: str,
        row: bytes,
        qualifier: bytes,
        attempt: int,
        on_done: Callable[[Optional[Cell]], None],
    ) -> None:
        _, server_name = self.master.locate(table, row)
        if server_name is None:
            if attempt >= self.max_retries:
                on_done(None)
                return
            delay = self.backoff_base * (self.backoff_mult ** attempt)
            self.sim.schedule(delay, self._send_get, table, row, qualifier, attempt + 1, on_done)
            return
        server = self.master.server(server_name)

        def handle(reply: RpcReply) -> None:
            if reply.ok:
                on_done(reply.result)  # type: ignore[arg-type]
            elif reply.retryable and attempt < self.max_retries:
                delay = self.backoff_base * (self.backoff_mult ** attempt)
                self.sim.schedule(
                    delay, self._send_get, table, row, qualifier, attempt + 1, on_done
                )
            else:
                on_done(None)

        sent = self.network.send(
            self.host, server.node.hostname, server.rpc,
            GetRequest(table, row, qualifier), handle, self.host,
        )
        if sent is None:
            # Partitioned endpoint: retry (bounded) rather than hanging.
            if attempt < self.max_retries:
                delay = self.backoff_base * (self.backoff_mult ** attempt)
                self.sim.schedule(
                    delay, self._send_get, table, row, qualifier, attempt + 1, on_done
                )
            else:
                on_done(None)

    def scan(
        self,
        table: str,
        start_row: bytes,
        end_row: bytes,
        on_done: Callable[[List[Cell]], None],
        consistency: str = "strong",
        deadline: object = _DEFAULT_DEADLINE,
        hedge_delay: Optional[float] = None,
    ) -> None:
        """Range scan across all overlapping regions; results merged sorted.

        Compatibility wrapper over :meth:`scan_replicated` delivering
        the merged cells alone (callers that need the availability/
        staleness envelope use :meth:`scan_replicated` directly).
        """
        self.scan_replicated(
            table,
            start_row,
            end_row,
            lambda result: on_done(result.cells),
            consistency=consistency,
            deadline=deadline,
            hedge_delay=hedge_delay,
        )

    def scan_replicated(
        self,
        table: str,
        start_row: bytes,
        end_row: bytes,
        on_done: Callable[[ScanResult], None],
        consistency: str = "strong",
        deadline: object = _DEFAULT_DEADLINE,
        hedge_delay: Optional[float] = None,
    ) -> None:
        """Replica-aware range scan; delivers a :class:`ScanResult`.

        One RPC per overlapping region, each with a per-RPC ``deadline``
        (defaults to the client's ``rpc_timeout``; pass ``None`` to wait
        forever).  Failed attempts retry with jittered exponential
        backoff up to ``max_retries``; ``timeline`` mode rotates retries
        across the primary and its follower replicas.  With
        ``hedge_delay`` set, a duplicate RPC goes to the next replica
        candidate once the first has been outstanding that long —
        first answer wins, the loser is ignored.
        """
        if consistency not in CONSISTENCY_MODES:
            raise ValueError(f"consistency must be one of {CONSISTENCY_MODES}")
        if deadline is _DEFAULT_DEADLINE:
            deadline = self.rpc_timeout
        if deadline is not None and deadline <= 0:  # type: ignore[operator]
            raise ValueError("deadline must be positive (or None)")
        locations = self.master.locate_range_replicas(table, start_row, end_row)
        if not locations:
            on_done(ScanResult())
            return
        shares: List[ScanResult] = []
        remaining = [len(locations)]

        def settle_share(share: ScanResult) -> None:
            shares.append(share)
            remaining[0] -= 1
            if remaining[0] > 0:
                return
            # Deduplicate cells that appear via multiple region scans
            # (e.g. a range re-located across a concurrent split).
            seen: Dict[Tuple[bytes, bytes], Cell] = {}
            for share_result in shares:
                for cell in share_result.cells:
                    existing = seen.get(cell.key)
                    if existing is None or cell.ts >= existing.ts:
                        seen[cell.key] = cell
            on_done(
                ScanResult(
                    cells=sorted(seen.values(), key=lambda c: c.key),
                    ok=all(s.ok for s in shares),
                    staleness=max((s.staleness for s in shares), default=0.0),
                    retries=sum(s.retries for s in shares),
                    hedges=sum(s.hedges for s in shares),
                    follower_reads=sum(s.follower_reads for s in shares),
                )
            )

        for location in locations:
            anchor = max(start_row, location.info.start_key)
            self._scan_region(
                table, start_row, end_row, anchor, consistency,
                deadline, hedge_delay, 0, ScanResult(), settle_share,
            )

    def _replica_candidates(
        self, location: ReplicaLocation, consistency: str, attempt: int
    ) -> List[str]:
        """Replica servers to try this attempt, preferred target first.

        ``strong`` always targets the primary.  ``timeline`` rotates the
        start of the candidate ring by attempt number, so consecutive
        retries walk away from a dead or slow primary instead of
        hammering it.
        """
        if consistency == "strong":
            return [location.primary] if location.primary is not None else []
        ring = [location.primary] if location.primary is not None else []
        ring.extend(location.followers)
        if not ring:
            return []
        shift = attempt % len(ring)
        return ring[shift:] + ring[:shift]

    def _scan_region(
        self,
        table: str,
        start_row: bytes,
        end_row: bytes,
        anchor: bytes,
        consistency: str,
        deadline: Optional[float],
        hedge_delay: Optional[float],
        attempt: int,
        stats: ScanResult,
        settle_share: Callable[[ScanResult], None],
    ) -> None:
        """One attempt at reading one region's share of a scan."""
        location = self.master.locate_replicas(table, anchor)
        candidates = self._replica_candidates(location, consistency, attempt)
        if not candidates:
            # No copy of the region is assigned anywhere: resolve this
            # share immediately (empty, failed) — matching the legacy
            # behaviour where unassigned regions contributed nothing —
            # rather than burning the retry budget on an empty cluster.
            self.metrics.counter("client.scan_failed").inc()
            settle_share(ScanResult(ok=False, retries=stats.retries,
                                    hedges=stats.hedges,
                                    follower_reads=stats.follower_reads))
            return
        request = ScanRequest(table, start_row, end_row,
                              region_name=location.info.name,
                              consistency=consistency)
        # One attempt settles exactly once: first of {reply, hedged
        # reply, deadline, dropped send} wins; late arrivals are ignored.
        resolved = [False]
        outstanding = [0]
        timers: List[object] = []

        def settle() -> bool:
            if resolved[0]:
                return False
            resolved[0] = True
            for handle in timers:
                handle.cancel()  # type: ignore[attr-defined]
            return True

        def retry() -> None:
            if attempt >= self.max_retries:
                self.metrics.counter("client.scan_failed").inc()
                settle_share(ScanResult(ok=False, retries=stats.retries,
                                        hedges=stats.hedges,
                                        follower_reads=stats.follower_reads))
                return
            stats.retries += 1
            self.metrics.counter("client.scan_retries").inc()
            # Jittered exponential backoff: the 0.5-1.5x spread keeps a
            # fleet of clients from re-converging on a recovering server.
            delay = (self.backoff_base * (self.backoff_mult ** attempt)
                     * (0.5 + self._rng.random()))
            self.sim.schedule(
                delay, self._scan_region, table, start_row, end_row, anchor,
                consistency, deadline, hedge_delay, attempt + 1, stats, settle_share,
            )

        def handle_reply(reply: RpcReply) -> None:
            if resolved[0]:
                return
            if not reply.ok and reply.retryable:
                # A fast-reject from one replica (e.g. a crashed server
                # bouncing its call queue) must not abandon a sibling
                # RPC — the original or its hedge — still in flight:
                # the first good answer or the shared deadline decides.
                outstanding[0] -= 1
                if outstanding[0] > 0:
                    return
            if not settle():
                return
            if reply.ok:
                if reply.staleness > 0.0 or reply.server != location.primary:
                    stats.follower_reads += 1
                    self.metrics.counter("client.follower_reads").inc()
                settle_share(ScanResult(
                    cells=list(reply.result or ()),  # type: ignore[arg-type]
                    ok=True,
                    staleness=reply.staleness,
                    retries=stats.retries,
                    hedges=stats.hedges,
                    follower_reads=stats.follower_reads,
                ))
            elif reply.retryable:
                retry()
            else:
                self.metrics.counter("client.scan_failed").inc()
                settle_share(ScanResult(ok=False, retries=stats.retries,
                                        hedges=stats.hedges,
                                        follower_reads=stats.follower_reads))

        def handle_deadline() -> None:
            # Crashed server never replied / partition ate the reply.
            if not settle():
                return
            self.metrics.counter("client.scan_timeouts").inc()
            retry()

        def send_to(server_name: str) -> bool:
            server = self.master.server(server_name)
            sent = self.network.send(
                self.host, server.node.hostname, server.rpc,
                request, handle_reply, self.host,
            )
            if sent is not None:
                outstanding[0] += 1
            return sent is not None

        def fire_hedge(server_name: str) -> None:
            if resolved[0]:
                return
            stats.hedges += 1
            self.metrics.counter("client.hedges").inc()
            send_to(server_name)  # a dropped hedge changes nothing

        if not send_to(candidates[0]):
            # The network dropped the send (partitioned endpoint): fail
            # fast into the retry path instead of hanging forever.
            if settle():
                self.metrics.counter("client.sends_dropped").inc()
                retry()
            return
        if deadline is not None:
            timers.append(self.sim.schedule(deadline, handle_deadline))
        if hedge_delay is not None and len(candidates) > 1:
            timers.append(self.sim.schedule(hedge_delay, fire_hedge, candidates[1]))
