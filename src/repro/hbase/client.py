"""HBase client: row-key routing, retries and exponential backoff.

The client looks up region locations from the master (the meta-table
stand-in), groups batched puts per destination RegionServer, and retries
retryable failures — queue overflow, regions in motion after a crash —
with exponential backoff, exactly the behaviour the TSD daemons layer
on top of.

All operations are asynchronous: they return immediately and invoke the
supplied callback when the RPC (including retries) resolves, in
simulated time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from ..cluster.metrics import MetricsRegistry
from ..obs.telemetry import component_registry
from ..cluster.network import Network
from ..cluster.simulation import Simulator
from .master import HMaster
from .region import Cell
from .regionserver import GetRequest, PutRequest, RpcReply, ScanRequest

__all__ = ["HTableClient"]


class HTableClient:
    """Asynchronous table client for the simulated cluster.

    Parameters
    ----------
    host:
        Hostname the client runs on (for network latency purposes).
    max_retries:
        Attempts per RPC before reporting permanent failure.
    backoff_base, backoff_mult:
        Exponential backoff schedule: retry ``k`` waits
        ``backoff_base * backoff_mult**k`` seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        master: HMaster,
        host: str,
        max_retries: int = 8,
        backoff_base: float = 0.02,
        backoff_mult: float = 2.0,
        rpc_timeout: Optional[float] = 2.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if rpc_timeout is not None and rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive (or None)")
        self.sim = sim
        self.network = network
        self.master = master
        self.host = host
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_mult = backoff_mult
        self.rpc_timeout = rpc_timeout
        self.metrics = metrics if metrics is not None else component_registry("tsd")

    # ------------------------------------------------------------------
    # puts
    # ------------------------------------------------------------------
    def put(
        self,
        table: str,
        cells: List[Cell],
        on_done: Optional[Callable[[bool, int], None]] = None,
        batch_ids: Tuple[int, ...] = (),
        block: bool = False,
    ) -> None:
        """Write a batch of cells; ``on_done(ok, n_cells)`` when resolved.

        The batch is partitioned by destination server; each partition
        succeeds or fails independently and ``on_done`` fires once per
        partition with that partition's cell count (on failure too, so
        callers can reconcile exactly how many cells each resolution
        covers).  ``batch_ids`` is trace correlation only: the ingest
        batch ids whose cells this put carries, stamped onto the
        :class:`PutRequest` so RegionServer spans join the batch trace.
        With ``block=True`` the cells are declared to be sorted
        per-series runs and each partition is served at the cheaper
        block-put cost (the retry path keeps the flag).
        """
        if not cells:
            if on_done is not None:
                on_done(True, 0)
            return
        groups = self._group_by_server(table, cells)
        for server_name, group in groups.items():
            self._send_put(table, server_name, group, 0, on_done, batch_ids, block)

    def _group_by_server(self, table: str, cells: List[Cell]) -> Dict[Optional[str], List[Cell]]:
        # Cells arrive in row runs (coalesced point batches and block
        # runs alike), so the meta lookup is memoised on row change
        # rather than paid per cell.
        groups: Dict[Optional[str], List[Cell]] = defaultdict(list)
        last_row: Optional[bytes] = None
        server_name: Optional[str] = None
        for cell in cells:
            if cell.row != last_row:
                last_row = cell.row
                _, server_name = self.master.locate(table, cell.row)
            groups[server_name].append(cell)
        return groups

    def _send_put(
        self,
        table: str,
        server_name: Optional[str],
        cells: List[Cell],
        attempt: int,
        on_done: Optional[Callable[[bool, int], None]],
        batch_ids: Tuple[int, ...] = (),
        block: bool = False,
    ) -> None:
        if server_name is None:
            # Region currently unassigned (recovery in flight): back off and re-route.
            self._retry_put(table, cells, attempt, on_done, batch_ids, block)
            return
        server = self.master.server(server_name)
        request = PutRequest(table, cells, batch_ids, block)
        # One attempt resolves exactly once: first of {reply, timeout,
        # dropped send} wins; a late reply after a timeout is ignored
        # (the retry chain owns the cells from then on).
        resolved = [False]
        timeout_handle: List[Optional[object]] = [None]

        def settle() -> bool:
            if resolved[0]:
                return False
            resolved[0] = True
            handle = timeout_handle[0]
            if handle is not None:
                handle.cancel()  # type: ignore[attr-defined]
            return True

        def handle_reply(reply: RpcReply) -> None:
            if not settle():
                return
            if reply.ok:
                self.metrics.counter("client.put_ok").inc(len(cells))
                if on_done is not None:
                    on_done(True, len(cells))
            elif reply.retryable:
                self._retry_put(table, cells, attempt, on_done, batch_ids, block)
            else:
                self._fail_put(cells, on_done)

        def handle_timeout() -> None:
            # Crashed server never replied / partition ate the reply.
            if not settle():
                return
            self.metrics.counter("client.rpc_timeouts").inc()
            self._retry_put(table, cells, attempt, on_done, batch_ids, block)

        sent = self.network.send(
            self.host, server.node.hostname, server.rpc, request, handle_reply, self.host
        )
        if sent is None:
            # The network dropped the send (partitioned endpoint): fail
            # fast into the retry path instead of hanging forever.
            if settle():
                self.metrics.counter("client.sends_dropped").inc()
                self._retry_put(table, cells, attempt, on_done, batch_ids, block)
            return
        if self.rpc_timeout is not None:
            timeout_handle[0] = self.sim.schedule(self.rpc_timeout, handle_timeout)

    def _retry_put(
        self,
        table: str,
        cells: List[Cell],
        attempt: int,
        on_done: Optional[Callable[[bool, int], None]],
        batch_ids: Tuple[int, ...] = (),
        block: bool = False,
    ) -> None:
        if attempt >= self.max_retries:
            self._fail_put(cells, on_done)
            return
        self.metrics.counter("client.retries").inc()
        delay = self.backoff_base * (self.backoff_mult ** attempt)

        def resend() -> None:
            # Re-locate: assignments may have changed while backing off.
            for server_name, group in self._group_by_server(table, cells).items():
                self._send_put(table, server_name, group, attempt + 1, on_done, batch_ids, block)

        self.sim.schedule(delay, resend)

    def _fail_put(self, cells: List[Cell], on_done: Optional[Callable[[bool, int], None]]) -> None:
        self.metrics.counter("client.put_failed").inc(len(cells))
        if on_done is not None:
            on_done(False, len(cells))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(
        self,
        table: str,
        row: bytes,
        qualifier: bytes,
        on_done: Callable[[Optional[Cell]], None],
    ) -> None:
        """Point read; delivers the cell (or None) to ``on_done``."""
        self._send_get(table, row, qualifier, 0, on_done)

    def _send_get(
        self,
        table: str,
        row: bytes,
        qualifier: bytes,
        attempt: int,
        on_done: Callable[[Optional[Cell]], None],
    ) -> None:
        _, server_name = self.master.locate(table, row)
        if server_name is None:
            if attempt >= self.max_retries:
                on_done(None)
                return
            delay = self.backoff_base * (self.backoff_mult ** attempt)
            self.sim.schedule(delay, self._send_get, table, row, qualifier, attempt + 1, on_done)
            return
        server = self.master.server(server_name)

        def handle(reply: RpcReply) -> None:
            if reply.ok:
                on_done(reply.result)  # type: ignore[arg-type]
            elif reply.retryable and attempt < self.max_retries:
                delay = self.backoff_base * (self.backoff_mult ** attempt)
                self.sim.schedule(
                    delay, self._send_get, table, row, qualifier, attempt + 1, on_done
                )
            else:
                on_done(None)

        sent = self.network.send(
            self.host, server.node.hostname, server.rpc,
            GetRequest(table, row, qualifier), handle, self.host,
        )
        if sent is None:
            # Partitioned endpoint: retry (bounded) rather than hanging.
            if attempt < self.max_retries:
                delay = self.backoff_base * (self.backoff_mult ** attempt)
                self.sim.schedule(
                    delay, self._send_get, table, row, qualifier, attempt + 1, on_done
                )
            else:
                on_done(None)

    def scan(
        self,
        table: str,
        start_row: bytes,
        end_row: bytes,
        on_done: Callable[[List[Cell]], None],
    ) -> None:
        """Range scan across all overlapping regions; results merged sorted."""
        targets = self.master.locate_range(table, start_row, end_row)
        servers = sorted({srv for _, srv in targets if srv is not None})
        if not servers:
            on_done([])
            return
        collected: List[Cell] = []
        remaining = [len(servers)]

        def handle(reply: RpcReply) -> None:
            if reply.ok and reply.result:
                collected.extend(reply.result)  # type: ignore[arg-type]
            remaining[0] -= 1
            if remaining[0] == 0:
                # Deduplicate cells that appear via multiple region scans.
                seen = {}
                for cell in collected:
                    existing = seen.get(cell.key)
                    if existing is None or cell.ts >= existing.ts:
                        seen[cell.key] = cell
                on_done(sorted(seen.values(), key=lambda c: c.key))

        request = ScanRequest(table, start_row, end_row)
        for name in servers:
            server = self.master.server(name)
            sent = self.network.send(
                self.host, server.node.hostname, server.rpc, request, handle, self.host
            )
            if sent is None:
                # Partitioned server contributes no cells; resolve its
                # share so the merge still completes.
                handle(RpcReply.failure("partitioned", name))
