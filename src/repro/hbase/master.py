"""HMaster: table catalog, region assignment, splits and crash recovery.

The master is control-plane only — it never touches the data path, so
its operations execute synchronously in simulated time.  It provides:

* ``create_table`` with optional pre-split keys (the paper manually
  pre-split regions so "each region handled an equal proportion of the
  writes");
* ``locate`` — the meta-table lookup clients use to route by row key;
* crash recovery — on RegionServer death, memstores are discarded, the
  WAL's durable prefix is replayed, and regions are re-assigned
  round-robin across the survivors;
* region splitting and a simple count-based balancer.

Liveness is tracked through ZooKeeper ephemeral znodes, mirroring real
HBase: each RegionServer holds a session with an ephemeral node under
``/hbase/rs``; session expiry triggers recovery.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .region import Region, RegionInfo
from .regionserver import RegionServer
from .zookeeper import Session, ZooKeeper

__all__ = ["HMaster", "TableNotFoundError"]


class TableNotFoundError(KeyError):
    """Lookup of a table that was never created."""


@dataclass
class _Assignment:
    region: Region
    server: Optional[str]  # None while unassigned (no live servers)


class HMaster:
    """Cluster coordinator for the simulated HBase deployment."""

    def __init__(self, zk: Optional[ZooKeeper] = None) -> None:
        self.zk = zk if zk is not None else ZooKeeper()
        if not self.zk.exists("/hbase"):
            self.zk.create("/hbase")
        if not self.zk.exists("/hbase/rs"):
            self.zk.create("/hbase/rs")
        self._servers: Dict[str, RegionServer] = {}
        self._sessions: Dict[str, Session] = {}
        self._tables: Dict[str, List[_Assignment]] = {}
        # Per-table sorted region start keys, parallel to the assignment
        # list, so ``locate`` is a binary search (clients call it per cell).
        self._starts: Dict[str, List[bytes]] = {}
        self._region_ids = itertools.count(1)
        self._assign_cursor = 0
        self.recoveries = 0
        self.cells_lost_unsynced = 0
        # Size-based auto-splitting (off by default: the paper split
        # manually; see enable_auto_split).
        self._auto_split_threshold: Optional[int] = None
        self.auto_splits = 0

    # ------------------------------------------------------------------
    # server membership
    # ------------------------------------------------------------------
    def register_server(self, server: RegionServer) -> None:
        """Add a RegionServer to the cluster (ephemeral znode + callbacks)."""
        if server.name in self._servers:
            raise ValueError(f"duplicate server {server.name}")
        self._servers[server.name] = server
        session = self.zk.connect()
        self._sessions[server.name] = session
        self.zk.create(f"/hbase/rs/{server.name}", ephemeral=True, session=session)
        server.on_crash = self._handle_crash
        server.on_restart = self._handle_restart

    def live_servers(self) -> List[str]:
        return sorted(
            name for name, srv in self._servers.items() if not srv.crashed
        )

    def server(self, name: str) -> RegionServer:
        return self._servers[name]

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def create_table(
        self,
        table: str,
        split_keys: Optional[List[bytes]] = None,
        retain_data: bool = True,
    ) -> None:
        """Create a table pre-split at ``split_keys`` (sorted, non-empty keys).

        ``n`` split keys produce ``n + 1`` regions covering the whole
        keyspace.  With no split keys the table starts as one region —
        the configuration that exhibits the hot-spotting pathology E6
        measures.
        """
        if table in self._tables:
            raise ValueError(f"table {table!r} already exists")
        keys = sorted(split_keys or [])
        if any(not k for k in keys):
            raise ValueError("split keys must be non-empty")
        if len(set(keys)) != len(keys):
            raise ValueError("split keys must be distinct")
        boundaries = [b""] + keys + [b""]
        assignments: List[_Assignment] = []
        for start, end in zip(boundaries[:-1], boundaries[1:]):
            info = RegionInfo(table, start, end, next(self._region_ids))
            assignments.append(_Assignment(Region(info, retain_data=retain_data), None))
        self._tables[table] = assignments
        self._starts[table] = [a.region.info.start_key for a in assignments]
        for assignment in assignments:
            self._assign(table, assignment)

    def table_regions(self, table: str) -> List[Tuple[RegionInfo, Optional[str]]]:
        """Region layout: ``[(info, server_name)]`` sorted by start key."""
        return [(a.region.info, a.server) for a in self._assignments(table)]

    def _assignments(self, table: str) -> List[_Assignment]:
        try:
            return self._tables[table]
        except KeyError:
            raise TableNotFoundError(table) from None

    # ------------------------------------------------------------------
    # routing (the meta table)
    # ------------------------------------------------------------------
    def locate(self, table: str, row: bytes) -> Tuple[RegionInfo, Optional[str]]:
        """Which region serves ``row``, and on which server (binary search)."""
        assignments = self._assignments(table)
        starts = self._starts[table]
        idx = bisect.bisect_right(starts, row) - 1
        if idx < 0:
            idx = 0  # pragma: no cover - first region starts at b"" by construction
        assignment = assignments[idx]
        if not assignment.region.info.contains(row):  # pragma: no cover - defensive
            raise RuntimeError(f"no region covers row {row.hex()} in {table!r}")
        return assignment.region.info, assignment.server

    def locate_range(self, table: str, start: bytes, end: bytes) -> List[Tuple[RegionInfo, Optional[str]]]:
        """All regions overlapping the scan range ``[start, end)``."""
        out = []
        for assignment in self._assignments(table):
            info = assignment.region.info
            if end and info.start_key and info.start_key >= end:
                continue
            if info.end_key and info.end_key <= start:
                continue
            out.append((info, assignment.server))
        return out

    def direct_scan(self, table: str, start_row: bytes = b"", end_row: bytes = b"") -> List:
        """Administrative scan reading region data directly (no RPC timing).

        Used by offline components — the TSDB query engine, tests, the
        visualization pipeline — where simulated network timing is not
        under study.  Returns cells sorted by ``(row, qualifier)``.
        """
        cells = []
        for assignment in self._assignments(table):
            cells.extend(assignment.region.scan(start_row, end_row))
        cells.sort(key=lambda c: c.key)
        return cells

    # ------------------------------------------------------------------
    # assignment / balancing
    # ------------------------------------------------------------------
    def _assign(self, table: str, assignment: _Assignment) -> None:
        live = self.live_servers()
        if not live:
            assignment.server = None
            return
        name = live[self._assign_cursor % len(live)]
        self._assign_cursor += 1
        assignment.server = name
        self._servers[name].open_region(assignment.region)

    def move_region(self, table: str, region_name: str, dest: str) -> None:
        """Relocate one region to ``dest`` (must be live)."""
        if dest not in self._servers or self._servers[dest].crashed:
            raise ValueError(f"destination server {dest!r} not live")
        for assignment in self._assignments(table):
            if assignment.region.info.name == region_name:
                if assignment.server is not None:
                    # Close flushes the memstore (HBase close semantics):
                    # the old host's WAL stops being responsible for the
                    # region's unflushed data once it moves away.
                    assignment.region.flush()
                    self._servers[assignment.server].close_region(region_name)
                assignment.server = dest
                self._servers[dest].open_region(assignment.region)
                return
        raise KeyError(f"region {region_name!r} not in table {table!r}")

    def split_region(self, table: str, region_name: str, split_key: Optional[bytes] = None) -> Tuple[str, str]:
        """Split a region (at ``split_key`` or its data midpoint).

        Daughters are assigned round-robin, so splitting a hot region
        spreads its load — the manual-split remedy from §III-B.
        """
        assignments = self._assignments(table)
        for i, assignment in enumerate(assignments):
            if assignment.region.info.name != region_name:
                continue
            key = split_key if split_key is not None else assignment.region.midpoint_key()
            if key is None:
                raise ValueError("region has too little data to auto-split")
            left, right = assignment.region.split(
                key, (next(self._region_ids), next(self._region_ids))
            )
            if assignment.server is not None:
                self._servers[assignment.server].close_region(region_name)
            la, ra = _Assignment(left, None), _Assignment(right, None)
            assignments[i : i + 1] = [la, ra]
            self._starts[table] = [a.region.info.start_key for a in assignments]
            self._assign(table, la)
            self._assign(table, ra)
            return left.info.name, right.info.name
        raise KeyError(f"region {region_name!r} not in table {table!r}")

    def balance(self) -> int:
        """Even out region counts across live servers.  Returns moves made."""
        live = self.live_servers()
        if not live:
            return 0
        loads: Dict[str, List[Tuple[str, str]]] = {name: [] for name in live}
        for table, assignments in self._tables.items():
            for a in assignments:
                if a.server in loads:
                    loads[a.server].append((table, a.region.info.name))
        total = sum(len(v) for v in loads.values())
        target = -(-total // len(live))  # ceil
        moves = 0
        overloaded = [(n, regions) for n, regions in loads.items() if len(regions) > target]
        underloaded = [n for n, regions in loads.items() if len(regions) < target]
        for name, regions in overloaded:
            while len(regions) > target and underloaded:
                dest = underloaded[0]
                table, region_name = regions.pop()
                self.move_region(table, region_name, dest)
                loads[dest].append((table, region_name))
                if len(loads[dest]) >= target:
                    underloaded.pop(0)
                moves += 1
        return moves

    # ------------------------------------------------------------------
    # auto-splitting
    # ------------------------------------------------------------------
    def enable_auto_split(self, threshold_cells: int) -> None:
        """Split any region whose live cell count exceeds the threshold.

        The paper pre-split manually; production HBase splits by store
        size.  Checks run via :meth:`run_auto_split_pass` (call it
        periodically — e.g. from a simulator timer — like the real
        split-checker chore).
        """
        if threshold_cells < 2:
            raise ValueError("threshold must be >= 2 cells")
        self._auto_split_threshold = threshold_cells

    def disable_auto_split(self) -> None:
        self._auto_split_threshold = None

    def run_auto_split_pass(self) -> int:
        """One split-checker sweep; returns the number of splits made."""
        if self._auto_split_threshold is None:
            return 0
        splits = 0
        for table in list(self._tables):
            # snapshot: splitting mutates the assignment list
            for assignment in list(self._assignments(table)):
                region = assignment.region
                if region.memstore_size == 0 and region.store_file_count == 0:
                    continue  # empty region: skip the (costlier) exact count
                if region.cell_count() <= self._auto_split_threshold:
                    continue
                if region.midpoint_key() is None:
                    continue
                self.split_region(table, region.info.name)
                splits += 1
                self.auto_splits += 1
        return splits

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def _handle_crash(self, server: RegionServer) -> None:
        """WAL-based recovery: discard memstores, replay durable prefix, reassign."""
        self.recoveries += 1
        session = self._sessions.get(server.name)
        if session is not None:
            session.expire()
        victims: List[_Assignment] = []
        for assignments in self._tables.values():
            for a in assignments:
                if a.server == server.name:
                    victims.append(a)
        for a in victims:
            a.region.discard_memstore()
            server.close_region(a.region.info.name)
            a.server = None
        # Replay the durable WAL prefix; puts are idempotent (newest-wins).
        replayed = 0
        for cell in server.wal.replayable():
            for a in victims:
                if a.region.info.contains(cell.row):
                    a.region.put(cell)
                    replayed += 1
                    break
        self.cells_lost_unsynced += len(server.wal) - server.wal.durable_count
        for a in victims:
            # Flush after recovery replay (as real HBase does): the
            # recovered edits become store files, so they no longer
            # depend on the dead server's WAL — which the restart will
            # discard.  Without this, a second crash of whichever server
            # inherits the region would lose the recovered data.
            a.region.flush()
            self._assign(a.region.info.table, a)

    def _handle_restart(self, server: RegionServer) -> None:
        """Re-admit a restarted server and give it work again."""
        session = self.zk.connect()
        self._sessions[server.name] = session
        path = f"/hbase/rs/{server.name}"
        if not self.zk.exists(path):
            self.zk.create(path, ephemeral=True, session=session)
        self.balance()
