"""HMaster: table catalog, region assignment, splits and crash recovery.

The master is control-plane only — it never touches the data path, so
its operations execute synchronously in simulated time.  It provides:

* ``create_table`` with optional pre-split keys (the paper manually
  pre-split regions so "each region handled an equal proportion of the
  writes");
* ``locate`` — the meta-table lookup clients use to route by row key;
* crash recovery — on RegionServer death, memstores are discarded, the
  WAL's durable prefix is replayed, and regions are re-assigned
  round-robin across the survivors;
* region splitting and a simple count-based balancer.

Liveness is tracked through ZooKeeper ephemeral znodes, mirroring real
HBase: each RegionServer holds a session with an ephemeral node under
``/hbase/rs``; session expiry triggers recovery.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..cluster.metrics import MetricsRegistry
from ..obs.telemetry import component_registry
from .region import Cell, Region, RegionInfo
from .regionserver import RegionServer
from .zookeeper import Session, ZooKeeper

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.simulation import Simulator
    from .replication import ReplicationCoordinator

__all__ = ["HMaster", "RegionUnavailableError", "ReplicaLocation", "TableNotFoundError"]


class TableNotFoundError(KeyError):
    """Lookup of a table that was never created."""


class RegionUnavailableError(RuntimeError):
    """No copy of a region can serve the requested consistency mode."""


@dataclass(frozen=True)
class ReplicaLocation:
    """Replica-aware routing entry: region + primary + follower servers."""

    info: RegionInfo
    primary: Optional[str]
    followers: Tuple[str, ...]


@dataclass
class _Assignment:
    region: Region
    server: Optional[str]  # None while unassigned (no live servers)


class HMaster:
    """Cluster coordinator for the simulated HBase deployment."""

    def __init__(
        self,
        zk: Optional[ZooKeeper] = None,
        metrics: Optional[MetricsRegistry] = None,
        sim: Optional["Simulator"] = None,
        failure_detection_delay: float = 0.0,
    ) -> None:
        if failure_detection_delay < 0:
            raise ValueError("failure_detection_delay must be >= 0")
        self.zk = zk if zk is not None else ZooKeeper()
        if not self.zk.exists("/hbase"):
            self.zk.create("/hbase")
        if not self.zk.exists("/hbase/rs"):
            self.zk.create("/hbase/rs")
        self._servers: Dict[str, RegionServer] = {}
        self._sessions: Dict[str, Session] = {}
        self._tables: Dict[str, List[_Assignment]] = {}
        # Per-table sorted region start keys, parallel to the assignment
        # list, so ``locate`` is a binary search (clients call it per cell).
        self._starts: Dict[str, List[bytes]] = {}
        self._region_ids = itertools.count(1)
        self._assign_cursor = 0
        self.metrics = metrics if metrics is not None else component_registry("master")
        #: Simulator + detection delay model ZooKeeper session timeout:
        #: with a simulator attached and a positive delay, recovery runs
        #: that long after the crash (the window failover must bridge).
        #: Without a simulator, recovery stays synchronous as before.
        self.sim = sim
        self.failure_detection_delay = failure_detection_delay
        #: Region replication coordinator (see :meth:`enable_replication`).
        self.replication: Optional["ReplicationCoordinator"] = None
        self._crash_epoch: Dict[str, int] = {}
        self.recoveries = 0
        self.cells_lost_unsynced = 0
        self.failovers = 0
        # Size-based auto-splitting (off by default: the paper split
        # manually; see enable_auto_split).
        self._auto_split_threshold: Optional[int] = None
        self.auto_splits = 0

    # ------------------------------------------------------------------
    # server membership
    # ------------------------------------------------------------------
    def register_server(self, server: RegionServer) -> None:
        """Add a RegionServer to the cluster (ephemeral znode + callbacks)."""
        if server.name in self._servers:
            raise ValueError(f"duplicate server {server.name}")
        self._servers[server.name] = server
        session = self.zk.connect()
        self._sessions[server.name] = session
        self.zk.create(f"/hbase/rs/{server.name}", ephemeral=True, session=session)
        server.on_crash = self._handle_crash
        server.on_restart = self._handle_restart

    def live_servers(self) -> List[str]:
        return sorted(
            name for name, srv in self._servers.items() if not srv.crashed
        )

    def server(self, name: str) -> RegionServer:
        return self._servers[name]

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def create_table(
        self,
        table: str,
        split_keys: Optional[List[bytes]] = None,
        retain_data: bool = True,
    ) -> None:
        """Create a table pre-split at ``split_keys`` (sorted, non-empty keys).

        ``n`` split keys produce ``n + 1`` regions covering the whole
        keyspace.  With no split keys the table starts as one region —
        the configuration that exhibits the hot-spotting pathology E6
        measures.
        """
        if table in self._tables:
            raise ValueError(f"table {table!r} already exists")
        keys = sorted(split_keys or [])
        if any(not k for k in keys):
            raise ValueError("split keys must be non-empty")
        if len(set(keys)) != len(keys):
            raise ValueError("split keys must be distinct")
        boundaries = [b""] + keys + [b""]
        assignments: List[_Assignment] = []
        for start, end in zip(boundaries[:-1], boundaries[1:]):
            info = RegionInfo(table, start, end, next(self._region_ids))
            assignments.append(_Assignment(Region(info, retain_data=retain_data), None))
        self._tables[table] = assignments
        self._starts[table] = [a.region.info.start_key for a in assignments]
        for assignment in assignments:
            self._assign(table, assignment)
        if self.replication is not None:
            for assignment in assignments:
                self.replication.ensure_replicas(assignment.region, assignment.server)

    def table_regions(self, table: str) -> List[Tuple[RegionInfo, Optional[str]]]:
        """Region layout: ``[(info, server_name)]`` sorted by start key."""
        return [(a.region.info, a.server) for a in self._assignments(table)]

    def _assignments(self, table: str) -> List[_Assignment]:
        try:
            return self._tables[table]
        except KeyError:
            raise TableNotFoundError(table) from None

    # ------------------------------------------------------------------
    # routing (the meta table)
    # ------------------------------------------------------------------
    def locate(self, table: str, row: bytes) -> Tuple[RegionInfo, Optional[str]]:
        """Which region serves ``row``, and on which server (binary search)."""
        assignments = self._assignments(table)
        starts = self._starts[table]
        idx = bisect.bisect_right(starts, row) - 1
        if idx < 0:
            idx = 0  # pragma: no cover - first region starts at b"" by construction
        assignment = assignments[idx]
        if not assignment.region.info.contains(row):  # pragma: no cover - defensive
            raise RuntimeError(f"no region covers row {row.hex()} in {table!r}")
        return assignment.region.info, assignment.server

    def locate_range(self, table: str, start: bytes, end: bytes) -> List[Tuple[RegionInfo, Optional[str]]]:
        """All regions overlapping the scan range ``[start, end)``."""
        out = []
        for assignment in self._assignments(table):
            info = assignment.region.info
            if end and info.start_key and info.start_key >= end:
                continue
            if info.end_key and info.end_key <= start:
                continue
            out.append((info, assignment.server))
        return out

    def locate_replicas(self, table: str, row: bytes) -> ReplicaLocation:
        """Replica-aware :meth:`locate`: primary plus follower servers."""
        info, server = self.locate(table, row)
        return ReplicaLocation(info, server, self._follower_names(info.name))

    def locate_range_replicas(
        self, table: str, start: bytes, end: bytes
    ) -> List[ReplicaLocation]:
        """Replica-aware :meth:`locate_range` for scan fan-out."""
        return [
            ReplicaLocation(info, server, self._follower_names(info.name))
            for info, server in self.locate_range(table, start, end)
        ]

    def _follower_names(self, region_name: str) -> Tuple[str, ...]:
        if self.replication is None:
            return ()
        return self.replication.follower_servers(region_name)

    def direct_scan(self, table: str, start_row: bytes = b"", end_row: bytes = b"") -> List:
        """Administrative scan reading region data directly (no RPC timing).

        Used by offline components — the TSDB query engine, tests, the
        visualization pipeline — where simulated network timing is not
        under study.  Returns cells sorted by ``(row, qualifier)``.
        """
        cells = []
        for assignment in self._assignments(table):
            cells.extend(assignment.region.scan(start_row, end_row))
        cells.sort(key=lambda c: c.key)
        return cells

    def direct_delete_range(
        self, table: str, start_row: bytes, end_row: bytes, ts: float
    ) -> int:
        """Administrative range delete: tombstone ``[start_row, end_row)``.

        The retention manager's expiry path.  Applies a range tombstone
        (at logical write time ``ts``) to every overlapping region and
        mirrors it to follower replicas — deletes bypass the WAL stream
        like :meth:`~repro.tsdb.ingest.TsdbCluster.direct_put` bulk
        loads do, so followers can never resurface expired cells on a
        timeline read.  Returns the number of visible cells masked
        across primaries.
        """
        masked = 0
        for assignment in self._assignments(table):
            info = assignment.region.info
            if end_row and info.start_key and info.start_key >= end_row:
                continue
            if info.end_key and info.end_key <= start_row:
                continue
            masked += assignment.region.delete_range(start_row, end_row, ts)
            if self.replication is not None:
                self.replication.mirror_delete(info.name, start_row, end_row, ts)
        return masked

    def direct_scan_consistent(
        self,
        table: str,
        start_row: bytes = b"",
        end_row: bytes = b"",
        timeline: bool = False,
    ) -> Tuple[List, float]:
        """Availability-aware :meth:`direct_scan` with a consistency mode.

        ``strong`` (the default) reads primary copies only and raises
        :class:`RegionUnavailableError` if any region overlapping the
        range has no live primary.  ``timeline=True`` falls back to the
        most-caught-up live follower for such regions and returns the
        worst staleness bound alongside the cells.  On a healthy
        cluster both modes return exactly what :meth:`direct_scan`
        returns for the same range, at staleness 0.
        """
        cells: List = []
        staleness = 0.0
        for assignment in self._assignments(table):
            info = assignment.region.info
            if end_row and info.start_key and info.start_key >= end_row:
                continue
            if info.end_key and info.end_key <= start_row:
                continue
            region = assignment.region
            primary_down = (
                assignment.server is None or self._servers[assignment.server].crashed
            )
            if primary_down:
                fallback = None
                if timeline and self.replication is not None:
                    fallback = self.replication.best_follower(info.name)
                if fallback is None:
                    raise RegionUnavailableError(info.name)
                region, follower_staleness = fallback
                staleness = max(staleness, follower_staleness)
            cells.extend(region.scan(start_row, end_row))
        cells.sort(key=lambda c: c.key)
        return cells, staleness

    # ------------------------------------------------------------------
    # assignment / balancing
    # ------------------------------------------------------------------
    def _assign(self, table: str, assignment: _Assignment) -> None:
        live = self.live_servers()
        if not live:
            assignment.server = None
            return
        name = live[self._assign_cursor % len(live)]
        self._assign_cursor += 1
        assignment.server = name
        self._servers[name].open_region(assignment.region)
        if self.replication is not None:
            self.replication.primary_moved(assignment.region.info.name, name)

    def move_region(self, table: str, region_name: str, dest: str) -> None:
        """Relocate one region to ``dest`` (must be live)."""
        if dest not in self._servers or self._servers[dest].crashed:
            raise ValueError(f"destination server {dest!r} not live")
        for assignment in self._assignments(table):
            if assignment.region.info.name == region_name:
                if assignment.server is not None:
                    # Close flushes the memstore (HBase close semantics):
                    # the old host's WAL stops being responsible for the
                    # region's unflushed data once it moves away.
                    assignment.region.flush()
                    self._servers[assignment.server].close_region(region_name)
                assignment.server = dest
                self._servers[dest].open_region(assignment.region)
                if self.replication is not None:
                    self.replication.primary_moved(region_name, dest)
                return
        raise KeyError(f"region {region_name!r} not in table {table!r}")

    def split_region(self, table: str, region_name: str, split_key: Optional[bytes] = None) -> Tuple[str, str]:
        """Split a region (at ``split_key`` or its data midpoint).

        Daughters are assigned round-robin, so splitting a hot region
        spreads its load — the manual-split remedy from §III-B.
        """
        assignments = self._assignments(table)
        for i, assignment in enumerate(assignments):
            if assignment.region.info.name != region_name:
                continue
            key = split_key if split_key is not None else assignment.region.midpoint_key()
            if key is None:
                raise ValueError("region has too little data to auto-split")
            left, right = assignment.region.split(
                key, (next(self._region_ids), next(self._region_ids))
            )
            if assignment.server is not None:
                self._servers[assignment.server].close_region(region_name)
            la, ra = _Assignment(left, None), _Assignment(right, None)
            assignments[i : i + 1] = [la, ra]
            self._starts[table] = [a.region.info.start_key for a in assignments]
            self._assign(table, la)
            self._assign(table, ra)
            if self.replication is not None:
                self.replication.on_split(
                    region_name, [(la.region, la.server), (ra.region, ra.server)]
                )
            return left.info.name, right.info.name
        raise KeyError(f"region {region_name!r} not in table {table!r}")

    def balance(self) -> int:
        """Even out region counts across live servers.  Returns moves made."""
        live = self.live_servers()
        if not live:
            return 0
        loads: Dict[str, List[Tuple[str, str]]] = {name: [] for name in live}
        for table, assignments in self._tables.items():
            for a in assignments:
                if a.server in loads:
                    loads[a.server].append((table, a.region.info.name))
        total = sum(len(v) for v in loads.values())
        target = -(-total // len(live))  # ceil
        moves = 0
        overloaded = [(n, regions) for n, regions in loads.items() if len(regions) > target]
        underloaded = [n for n, regions in loads.items() if len(regions) < target]
        for name, regions in overloaded:
            while len(regions) > target and underloaded:
                dest = underloaded[0]
                table, region_name = regions.pop()
                self.move_region(table, region_name, dest)
                loads[dest].append((table, region_name))
                if len(loads[dest]) >= target:
                    underloaded.pop(0)
                moves += 1
        return moves

    # ------------------------------------------------------------------
    # auto-splitting
    # ------------------------------------------------------------------
    def enable_auto_split(self, threshold_cells: int) -> None:
        """Split any region whose live cell count exceeds the threshold.

        The paper pre-split manually; production HBase splits by store
        size.  Checks run via :meth:`run_auto_split_pass` (call it
        periodically — e.g. from a simulator timer — like the real
        split-checker chore).
        """
        if threshold_cells < 2:
            raise ValueError("threshold must be >= 2 cells")
        self._auto_split_threshold = threshold_cells

    def disable_auto_split(self) -> None:
        self._auto_split_threshold = None

    def run_auto_split_pass(self) -> int:
        """One split-checker sweep; returns the number of splits made."""
        if self._auto_split_threshold is None:
            return 0
        splits = 0
        for table in list(self._tables):
            # snapshot: splitting mutates the assignment list
            for assignment in list(self._assignments(table)):
                region = assignment.region
                if region.memstore_size == 0 and region.store_file_count == 0:
                    continue  # empty region: skip the (costlier) exact count
                if region.cell_count() <= self._auto_split_threshold:
                    continue
                if region.midpoint_key() is None:
                    continue
                self.split_region(table, region.info.name)
                splits += 1
                self.auto_splits += 1
        return splits

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------
    def enable_replication(self, coordinator: "ReplicationCoordinator") -> None:
        """Attach a replication coordinator and replicate existing tables.

        From here on the master keeps follower sets placed through
        every assignment change (create/move/split/crash), promotes the
        best follower on primary death, and serves timeline fallbacks
        via :meth:`direct_scan_consistent`.
        """
        self.replication = coordinator
        for assignments in self._tables.values():
            for a in assignments:
                coordinator.ensure_replicas(a.region, a.server)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def _handle_crash(self, server: RegionServer) -> None:
        """Crash detected (or scheduled for detection) — see :meth:`_recover`.

        With a simulator attached and ``failure_detection_delay > 0``,
        recovery runs after the detection window (ZooKeeper session
        timeout); the crash epoch guards against a crash/restart/crash
        cycle racing a stale detection.
        """
        epoch = self._crash_epoch.get(server.name, 0) + 1
        self._crash_epoch[server.name] = epoch
        wal = server.wal  # restart replaces the WAL; recover from this one
        if self.sim is not None and self.failure_detection_delay > 0:
            self.sim.schedule(
                self.failure_detection_delay, self._detect_crash, server, wal, epoch
            )
        else:
            self._recover(server, wal)

    def _detect_crash(self, server: RegionServer, wal, epoch: int) -> None:
        if self._crash_epoch.get(server.name) != epoch:
            return  # superseded by a newer crash cycle
        self._recover(server, wal)

    def _recover(self, server: RegionServer, wal) -> None:
        """WAL-based recovery: promote followers (or discard-and-replay).

        For each region whose primary lived on the dead server the
        most-caught-up live follower is promoted to primary; the dead
        server's durable WAL prefix is then replayed on top (grouped
        per region through the block write path, idempotent by
        newest-wins), so every WAL-synced cell survives even when the
        promoted follower was lagging.  Without replication — or with
        no live follower — recovery falls back to discard-and-replay
        plus round-robin reassignment, exactly as before.
        """
        self.recoveries += 1
        self.metrics.counter("master.recoveries").inc(label=server.name)
        if server.crashed:
            session = self._sessions.get(server.name)
            if session is not None:
                session.expire()
        victims: List[_Assignment] = []
        for assignments in self._tables.values():
            for a in assignments:
                if a.server == server.name:
                    victims.append(a)
        for a in victims:
            a.region.discard_memstore()
            server.close_region(a.region.info.name)
            a.server = None
            if self.replication is not None and server.crashed:
                promoted = self.replication.promote(a.region.info.name)
                if promoted is not None:
                    a.region, a.server = promoted
                    self.failovers += 1
                    self.metrics.counter("master.failovers").inc(label=server.name)
        # Replay the durable WAL prefix grouped per region through the
        # block write path; puts are idempotent (newest-wins), so the
        # replay composes with whatever the promoted follower applied.
        buckets: List[List[Cell]] = [[] for _ in victims]
        for cell in wal.replayable():
            for i, a in enumerate(victims):
                if a.region.info.contains(cell.row):
                    buckets[i].append(cell)
                    break
        for a, cells in zip(victims, buckets):
            if cells:
                a.region.put_block(cells)
        lost = len(wal) - wal.durable_count
        self.cells_lost_unsynced += lost
        if lost:
            self.metrics.counter("master.cells_lost_unsynced").inc(lost, label=server.name)
        for a in victims:
            # Flush after recovery replay (as real HBase does): the
            # recovered edits become store files, so they no longer
            # depend on the dead server's WAL — which the restart will
            # discard.  Without this, a second crash of whichever server
            # inherits the region would lose the recovered data.
            a.region.flush()
            if a.server is None:
                self._assign(a.region.info.table, a)
        if self.replication is not None:
            # Re-place followers lost with the dead server (bootstrapped
            # from the post-replay primaries), then push the replayed
            # cells to surviving followers, which never saw them via
            # WAL shipping (the replay wrote into regions directly).
            self.replication.handle_server_crash(server.name)
            for a, cells in zip(victims, buckets):
                if cells:
                    self.replication.mirror(a.region.info.name, cells)

    def _handle_restart(self, server: RegionServer) -> None:
        """Re-admit a restarted server and give it work again."""
        session = self.zk.connect()
        self._sessions[server.name] = session
        path = f"/hbase/rs/{server.name}"
        if not self.zk.exists(path):
            self.zk.create(path, ephemeral=True, session=session)
        self.balance()
