"""Byte-level codecs for row keys and values.

HBase orders rows lexicographically by their raw bytes, and OpenTSDB's
whole key design (metric UID + base timestamp + tag UIDs, optionally
salt-prefixed) depends on that ordering.  These helpers provide the
fixed-width big-endian encodings the row-key codec builds on.

All functions are pure and operate on :class:`bytes`.
"""

from __future__ import annotations

import struct
from typing import Iterable

__all__ = [
    "encode_u8",
    "encode_u16",
    "encode_u24",
    "encode_u32",
    "encode_u64",
    "decode_u8",
    "decode_u16",
    "decode_u24",
    "decode_u32",
    "decode_u64",
    "encode_f64",
    "decode_f64",
    "concat",
    "increment_key",
    "common_prefix_len",
]


def _check_range(value: int, bits: int) -> None:
    if not 0 <= value < (1 << bits):
        raise ValueError(f"value {value} out of range for u{bits}")


def encode_u8(value: int) -> bytes:
    """Encode an unsigned 8-bit integer, big-endian."""
    _check_range(value, 8)
    return bytes([value])


def encode_u16(value: int) -> bytes:
    """Encode an unsigned 16-bit integer, big-endian."""
    _check_range(value, 16)
    return struct.pack(">H", value)


def encode_u24(value: int) -> bytes:
    """Encode an unsigned 24-bit integer, big-endian.

    OpenTSDB uses 3-byte UIDs for metrics and tags; 24 bits covers
    ~16.7M distinct names.
    """
    _check_range(value, 24)
    return struct.pack(">I", value)[1:]


def encode_u32(value: int) -> bytes:
    """Encode an unsigned 32-bit integer, big-endian (Unix timestamps)."""
    _check_range(value, 32)
    return struct.pack(">I", value)


def encode_u64(value: int) -> bytes:
    """Encode an unsigned 64-bit integer, big-endian."""
    _check_range(value, 64)
    return struct.pack(">Q", value)


def decode_u8(data: bytes, offset: int = 0) -> int:
    """Decode an unsigned 8-bit integer at ``offset``."""
    return data[offset]


def decode_u16(data: bytes, offset: int = 0) -> int:
    """Decode a big-endian unsigned 16-bit integer at ``offset``."""
    return struct.unpack_from(">H", data, offset)[0]


def decode_u24(data: bytes, offset: int = 0) -> int:
    """Decode a big-endian unsigned 24-bit integer at ``offset``."""
    return int.from_bytes(data[offset : offset + 3], "big")


def decode_u32(data: bytes, offset: int = 0) -> int:
    """Decode a big-endian unsigned 32-bit integer at ``offset``."""
    return struct.unpack_from(">I", data, offset)[0]


def decode_u64(data: bytes, offset: int = 0) -> int:
    """Decode a big-endian unsigned 64-bit integer at ``offset``."""
    return struct.unpack_from(">Q", data, offset)[0]


def encode_f64(value: float) -> bytes:
    """Encode an IEEE-754 double, big-endian (TSDB cell values)."""
    return struct.pack(">d", value)


def decode_f64(data: bytes, offset: int = 0) -> float:
    """Decode a big-endian IEEE-754 double at ``offset``."""
    return struct.unpack_from(">d", data, offset)[0]


def concat(parts: Iterable[bytes]) -> bytes:
    """Concatenate byte fragments into one key."""
    return b"".join(parts)


def increment_key(key: bytes) -> bytes:
    """Smallest key strictly greater than every key with prefix ``key``.

    Used to form exclusive scan upper bounds: the byte string is
    incremented like a big-endian integer, dropping trailing 0xFF bytes.
    An all-0xFF (or empty) key has no successor prefix; we signal that
    with ``b''`` which scanners treat as "end of table".
    """
    ba = bytearray(key)
    while ba:
        if ba[-1] != 0xFF:
            ba[-1] += 1
            return bytes(ba)
        ba.pop()
    return b""


def common_prefix_len(a: bytes, b: bytes) -> int:
    """Length of the longest common prefix of two byte strings."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n
