"""Write-ahead log for RegionServer durability.

Every mutation is appended to the server's WAL before being applied to
a region's memstore.  When a RegionServer crashes (e.g. from RPC-queue
overflow, §III-B of the paper) the master replays its WAL into the
reassigned regions, so acknowledged writes survive crashes — which the
backpressure ablation (E7) relies on to distinguish *lost* throughput
from *recovered* throughput.
"""

from __future__ import annotations

from typing import Iterator, List

from .region import Cell

__all__ = ["WriteAheadLog"]


class WriteAheadLog:
    """Append-only log of cells with a sync watermark.

    ``append`` adds entries; ``sync`` advances the durable watermark.
    On crash, only entries up to the last sync are replayable (entries
    after it are torn, as with a real un-fsynced tail).  RegionServers
    here sync per RPC batch, matching HBase's default `hflush`-per-batch
    behaviour.
    """

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._entries: List[Cell] = []
        self._synced = 0
        self.syncs = 0

    def append(self, cell: Cell) -> None:
        self._entries.append(cell)

    def append_batch(self, cells: List[Cell]) -> None:
        self._entries.extend(cells)

    def sync(self) -> None:
        """Make everything appended so far durable."""
        self._synced = len(self._entries)
        self.syncs += 1

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def durable_count(self) -> int:
        return self._synced

    def replayable(self) -> Iterator[Cell]:
        """Durable entries, in append order (what survives a crash)."""
        return iter(self._entries[: self._synced])

    def truncate(self) -> None:
        """Discard the log (after regions have been flushed/replayed)."""
        self._entries.clear()
        self._synced = 0
