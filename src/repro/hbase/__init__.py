"""HBase-like distributed, region-sharded key-value store (simulated).

Data plane is real (cells written are cells read back); RPC timing,
queueing and crashes are modelled on the :mod:`repro.cluster`
discrete-event substrate.
"""

from .bytescodec import (
    common_prefix_len,
    concat,
    decode_f64,
    decode_u8,
    decode_u16,
    decode_u24,
    decode_u32,
    decode_u64,
    encode_f64,
    encode_u8,
    encode_u16,
    encode_u24,
    encode_u32,
    encode_u64,
    increment_key,
)
from .client import CONSISTENCY_MODES, HTableClient, ScanResult
from .master import (
    HMaster,
    RegionUnavailableError,
    ReplicaLocation,
    TableNotFoundError,
)
from .region import Cell, Region, RegionInfo, StoreFile
from .regionserver import (
    GetRequest,
    PutRequest,
    RegionServer,
    RpcReply,
    ScanRequest,
    ServiceModel,
)
from .replication import FollowerReplica, ReplicaSet, ReplicationCoordinator
from .wal import WriteAheadLog
from .zookeeper import NodeExistsError, NoNodeError, Session, ZooKeeper

__all__ = [
    "CONSISTENCY_MODES",
    "Cell",
    "FollowerReplica",
    "GetRequest",
    "HMaster",
    "HTableClient",
    "NoNodeError",
    "NodeExistsError",
    "PutRequest",
    "Region",
    "RegionInfo",
    "RegionServer",
    "RegionUnavailableError",
    "ReplicaLocation",
    "ReplicaSet",
    "ReplicationCoordinator",
    "RpcReply",
    "ScanRequest",
    "ScanResult",
    "ServiceModel",
    "Session",
    "StoreFile",
    "TableNotFoundError",
    "WriteAheadLog",
    "ZooKeeper",
    "common_prefix_len",
    "concat",
    "decode_f64",
    "decode_u16",
    "decode_u24",
    "decode_u32",
    "decode_u64",
    "decode_u8",
    "encode_f64",
    "encode_u16",
    "encode_u24",
    "encode_u32",
    "encode_u64",
    "encode_u8",
    "increment_key",
]
