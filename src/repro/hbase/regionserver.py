"""RegionServers: the RPC-serving shard hosts.

A RegionServer hosts a set of regions and serves put/get/scan RPCs
through a single bounded-queue service loop (:class:`repro.cluster.Server`).
Two behaviours from the paper's §III-B are modelled faithfully:

* **Bounded RPC queue** — HBase RegionServers have a fixed call-queue;
  sustained overflow crashes the server.  Overflow here rejects the RPC
  and feeds an :class:`~repro.cluster.failures.OverflowCrashPolicy`.
* **Service capacity** — each RPC costs ``rpc_overhead +
  per_cell * batch_size`` seconds of server time, so a single server
  saturates at a fixed cell rate and cluster throughput scales with the
  number of servers *provided writes are spread across them* (the
  row-key salting finding, E6).

On crash the memstores are lost, the WAL's durable prefix survives, and
the master replays it during reassignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..cluster.failures import OverflowCrashPolicy
from ..cluster.metrics import MetricsRegistry
from ..cluster.network import Network
from ..cluster.node import Node, Server
from ..cluster.simulation import Simulator
from ..obs.telemetry import component_registry
from ..obs.trace import NULL_SPAN, SpanLike, Tracer
from .region import Cell, Region
from .wal import WriteAheadLog

__all__ = [
    "ServiceModel",
    "PutRequest",
    "GetRequest",
    "ScanRequest",
    "RpcReply",
    "RegionServer",
]


@dataclass(frozen=True)
class ServiceModel:
    """Server-side cost model for RPC service times (seconds).

    Calibrated end-to-end so a deployed server saturates at ≈13-15k
    cell-writes/s at the coalesced batch sizes the TSD write path
    actually produces, putting a 30-server cluster in the ≈400k
    samples/s regime — the paper's headline point.  The cost is
    deliberately per-cell dominated (as in real HBase multi-puts), so
    partially filled flushes degrade throughput only mildly rather
    than multiplying RPC count into a server-killing overhead.
    """

    rpc_overhead: float = 0.00025
    per_cell_write: float = 0.00005
    per_cell_read: float = 0.00002
    #: Marginal cost of a cell arriving in a *block* put.  Block RPCs
    #: deliver pre-sorted per-series runs, so the server skips the
    #: per-cell region lookup and framing that dominate point puts and
    #: appends whole runs — modelled as per_cell_write / 5, matching
    #: the measured kernel-level speedup of the columnar path.
    per_cell_write_block: float = 0.00001

    def put_cost(self, n_cells: int) -> float:
        return self.rpc_overhead + self.per_cell_write * n_cells

    def put_block_cost(self, n_cells: int) -> float:
        return self.rpc_overhead + self.per_cell_write_block * n_cells

    def get_cost(self) -> float:
        return self.rpc_overhead + self.per_cell_read

    def scan_cost(self, n_cells: int) -> float:
        return self.rpc_overhead + self.per_cell_read * max(1, n_cells)


@dataclass
class PutRequest:
    """Batched write RPC: cells for one table, possibly many regions.

    ``batch_ids`` carries trace correlation only — the inbound ingest
    batch ids whose coalesced cells this RPC delivers.
    """

    table: str
    cells: List[Cell]
    batch_ids: Tuple[int, ...] = ()
    #: Block-granular put: the cells arrive as sorted per-series runs
    #: and are served at the cheaper ``put_block_cost``.
    block: bool = False


@dataclass
class GetRequest:
    table: str
    row: bytes
    qualifier: bytes


@dataclass
class ScanRequest:
    table: str
    start_row: bytes = b""
    end_row: bytes = b""
    #: Targeted replica scan: name the region and the consistency mode.
    #: ``strong`` is served by the primary copy only; ``timeline`` may
    #: be served from a follower replica, with the reply carrying the
    #: replica's staleness bound.  ``None`` keeps the legacy semantics
    #: (scan every primary region this server hosts).
    region_name: Optional[str] = None
    consistency: str = "strong"


@dataclass
class RpcReply:
    """Reply envelope delivered back to the caller over the network."""

    ok: bool
    result: object = None
    error: str = ""
    server: str = ""
    retryable: bool = False
    #: Staleness bound (seconds) of the replica that served a timeline
    #: read; 0.0 for primary-served results.
    staleness: float = 0.0

    @staticmethod
    def success(result: object, server: str) -> "RpcReply":
        return RpcReply(True, result, "", server)

    @staticmethod
    def failure(error: str, server: str, retryable: bool = True) -> "RpcReply":
        return RpcReply(False, None, error, server, retryable)


class RegionServer:
    """One RegionServer process: RPC queue + hosted regions + WAL."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node: Node,
        name: str,
        queue_capacity: int = 256,
        service_model: Optional[ServiceModel] = None,
        metrics: Optional[MetricsRegistry] = None,
        crash_policy_factory: Optional[Callable[["RegionServer"], OverflowCrashPolicy]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node = node
        self.name = name
        self.service_model = service_model if service_model is not None else ServiceModel()
        self.metrics = metrics if metrics is not None else component_registry("regionserver")
        self.tracer = tracer if tracer is not None else Tracer()
        self.rpc_server = Server(sim, name, queue_capacity, self.metrics)
        node.add_server(self.rpc_server)
        self.regions: Dict[str, Region] = {}
        # Read-only follower replicas hosted here, keyed by region name.
        # Never written by client RPCs and invisible to legacy scans;
        # only timeline reads targeting the region by name touch them.
        self.follower_regions: Dict[str, object] = {}
        # Post-WAL-sync replication hook: ``(region_name, cells, server)``
        # per region touched by the synced batch (set by the deployment
        # when region replication is enabled).
        self.replication_ship: Optional[Callable[[str, List[Cell], str], None]] = None
        self.wal = WriteAheadLog(name)
        self.crash_policy = crash_policy_factory(self) if crash_policy_factory else None
        self.on_crash: Optional[Callable[["RegionServer"], None]] = None
        self.on_restart: Optional[Callable[["RegionServer"], None]] = None
        self.crashed = False
        self.cells_written = 0
        self.rpcs_rejected = 0
        self.wal_roll_threshold = 200_000

    # ------------------------------------------------------------------
    # region hosting (control plane, driven by the master)
    # ------------------------------------------------------------------
    def open_region(self, region: Region) -> None:
        self.regions[region.info.name] = region

    def close_region(self, region_name: str) -> Optional[Region]:
        return self.regions.pop(region_name, None)

    def open_follower(self, replica: object) -> None:
        """Host a read-only follower replica (timeline reads only)."""
        self.follower_regions[replica.region.info.name] = replica  # type: ignore[attr-defined]

    def close_follower(self, region_name: str) -> None:
        self.follower_regions.pop(region_name, None)

    def hosted_regions(self) -> List[Region]:
        return list(self.regions.values())

    def _region_for(self, row: bytes) -> Optional[Region]:
        for region in self.regions.values():
            if region.info.contains(row):
                return region
        return None

    # ------------------------------------------------------------------
    # RPC entry point
    # ------------------------------------------------------------------
    def rpc(
        self,
        request: object,
        reply_to: Callable[[RpcReply], None],
        src_host: str,
    ) -> None:
        """Handle one inbound RPC; the reply travels back over the network.

        Queue overflow rejects the call immediately (the client sees a
        retryable failure) and is reported to the crash policy.
        """
        if isinstance(request, PutRequest):
            if request.block:
                cost = self.service_model.put_block_cost(len(request.cells))
            else:
                cost = self.service_model.put_cost(len(request.cells))
        elif isinstance(request, GetRequest):
            cost = self.service_model.get_cost()
        elif isinstance(request, ScanRequest):
            cost = self.service_model.scan_cost(self._estimate_scan_cells(request))
        else:
            self._reply(reply_to, src_host, RpcReply.failure("bad request", self.name, False))
            return

        span: SpanLike = NULL_SPAN
        if self.tracer.enabled and isinstance(request, PutRequest):
            # Covers queueing + service + region writes for one put RPC.
            span = self.tracer.begin(
                "regionserver.put",
                server=self.name,
                cells=len(request.cells),
                batch_ids=request.batch_ids,
            )
        accepted = self.rpc_server.submit(
            request,
            cost,
            on_done=lambda req: self._serve(req, reply_to, src_host, span),
            on_reject=lambda req: self._rejected(req, reply_to, src_host, span),
        )
        if accepted:
            self.metrics.gauge("rpc.queue_depth").set(self.rpc_server.queue_depth)

    def _estimate_scan_cells(self, request: ScanRequest) -> int:
        # Cost estimation uses a cheap proxy (live memstore sizes) rather
        # than materialising the scan twice.
        return sum(r.memstore_size + r.store_file_count * 1000 for r in self.regions.values())

    def _rejected(
        self,
        request: object,
        reply_to: Callable[[RpcReply], None],
        src_host: str,
        span: SpanLike = NULL_SPAN,
    ) -> None:
        span.end(outcome="rejected")
        self.rpcs_rejected += 1
        self.metrics.counter("rpc.rejected").inc(label=self.name)
        self._reply(
            reply_to, src_host, RpcReply.failure("CallQueueTooBigException", self.name, True)
        )
        if self.crash_policy is not None and not self.crashed:
            self.crash_policy.record_rejection()

    # ------------------------------------------------------------------
    # request execution (runs after the modelled service time)
    # ------------------------------------------------------------------
    def _serve(
        self,
        request: object,
        reply_to: Callable[[RpcReply], None],
        src_host: str,
        span: SpanLike = NULL_SPAN,
    ) -> None:
        if self.crashed:
            span.end(outcome="crashed")
            return  # dying server never replies; client will time out / retry
        if isinstance(request, PutRequest):
            reply = self._serve_put(request)
        elif isinstance(request, GetRequest):
            reply = self._serve_get(request)
        else:
            reply = self._serve_scan(request)  # type: ignore[arg-type]
        span.end(outcome="ok" if reply.ok else reply.error)
        self._reply(reply_to, src_host, reply)

    def _serve_put(self, request: PutRequest) -> RpcReply:
        if request.block:
            return self._serve_put_block(request)
        staged: List[tuple[Region, Cell]] = []
        for cell in request.cells:
            region = self._region_for(cell.row)
            if region is None:
                return RpcReply.failure("NotServingRegionException", self.name, True)
            staged.append((region, cell))
        self.wal.append_batch([c for _, c in staged])
        self.wal.sync()
        for region, cell in staged:
            region.put(cell)
        if self.replication_ship is not None:
            shipped: Dict[str, List[Cell]] = {}
            for region, cell in staged:
                shipped.setdefault(region.info.name, []).append(cell)
            for region_name, cells in shipped.items():
                self.replication_ship(region_name, cells, self.name)
        if len(self.wal) > self.wal_roll_threshold:
            # Log roll: flush hosted regions so the old log can be
            # archived, then truncate (HBase's roll-and-archive cycle).
            for region in self.regions.values():
                region.flush()
            self.wal.truncate()
        self.cells_written += len(staged)
        self.metrics.counter("cells.written").inc(len(staged), label=self.name)
        return RpcReply.success(len(staged), self.name)

    def _serve_put_block(self, request: PutRequest) -> RpcReply:
        """Block twin of the point put: per-region runs, not per-cell ops.

        Routing resolves once per row *change* (block cells repeat rows
        for long runs) and regions ingest whole runs via
        :meth:`Region.put_block`; WAL durability and all failure/crash
        semantics are identical to the point path.
        """
        runs: List[tuple[Region, List[Cell]]] = []
        region: Optional[Region] = None
        run: List[Cell] = []
        prev_row: Optional[bytes] = None
        for cell in request.cells:
            if cell.row != prev_row:
                prev_row = cell.row
                if region is None or not region.info.contains(cell.row):
                    target = self._region_for(cell.row)
                    if target is None:
                        return RpcReply.failure("NotServingRegionException", self.name, True)
                    if region is not None and run:
                        runs.append((region, run))
                    region, run = target, []
            run.append(cell)
        if region is not None and run:
            runs.append((region, run))
        self.wal.append_batch(request.cells)
        self.wal.sync()
        for target, cells in runs:
            target.put_block(cells)
        if self.replication_ship is not None:
            for target, cells in runs:
                self.replication_ship(target.info.name, cells, self.name)
        if len(self.wal) > self.wal_roll_threshold:
            for hosted in self.regions.values():
                hosted.flush()
            self.wal.truncate()
        n = len(request.cells)
        self.cells_written += n
        self.metrics.counter("cells.written").inc(n, label=self.name)
        return RpcReply.success(n, self.name)

    def _serve_get(self, request: GetRequest) -> RpcReply:
        region = self._region_for(request.row)
        if region is None:
            return RpcReply.failure("NotServingRegionException", self.name, True)
        return RpcReply.success(region.get(request.row, request.qualifier), self.name)

    def _serve_scan(self, request: ScanRequest) -> RpcReply:
        if request.region_name is not None:
            return self._serve_targeted_scan(request)
        cells: List[Cell] = []
        for region in self.regions.values():
            cells.extend(region.scan(request.start_row, request.end_row))
        cells.sort(key=lambda c: c.key)
        return RpcReply.success(cells, self.name)

    def _serve_targeted_scan(self, request: ScanRequest) -> RpcReply:
        """Replica-aware scan of one named region.

        A primary copy serves either consistency mode at staleness 0;
        a follower copy serves *timeline* reads only, stamping its
        staleness bound on the reply so the caller can surface it.
        """
        region = self.regions.get(request.region_name)
        staleness = 0.0
        if region is None:
            replica = self.follower_regions.get(request.region_name)
            if replica is None or request.consistency != "timeline":
                return RpcReply.failure("NotServingRegionException", self.name, True)
            region = replica.region  # type: ignore[attr-defined]
            staleness = replica.staleness(self.sim.now)  # type: ignore[attr-defined]
            self.metrics.counter("regionserver.follower_reads").inc(label=self.name)
        cells = region.scan(request.start_row, request.end_row)
        cells.sort(key=lambda c: c.key)
        reply = RpcReply.success(cells, self.name)
        reply.staleness = staleness
        return reply

    def _reply(self, reply_to: Callable[[RpcReply], None], dst_host: str, reply: RpcReply) -> None:
        self.network.send(self.node.hostname, dst_host, reply_to, reply)

    # ------------------------------------------------------------------
    # crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Abort: stop serving, lose memstores (WAL durable prefix survives)."""
        if self.crashed:
            return
        self.crashed = True
        self.rpc_server.stop()
        self.metrics.counter("regionserver.crashes").inc(label=self.name)
        if self.on_crash is not None:
            self.on_crash(self)

    def restart(self) -> None:
        """Come back up empty; the master re-assigns regions."""
        if not self.crashed:
            return
        self.crashed = False
        self.regions.clear()
        self.follower_regions.clear()
        self.wal = WriteAheadLog(self.name)
        self.rpc_server.start()
        if self.on_restart is not None:
            self.on_restart(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "crashed" if self.crashed else "up"
        return f"<RegionServer {self.name} {state} regions={len(self.regions)}>"
