"""Minimal ZooKeeper-style coordination service.

HBase uses ZooKeeper for RegionServer liveness (ephemeral znodes),
master election and the location of the meta table.  This module
provides the same three facilities over the simulated cluster: a
hierarchical znode tree, sessions whose ephemeral nodes vanish on
expiry, one-shot watches, and sequential znodes for leader election.

The implementation is synchronous (calls take effect immediately in
simulated time); session expiry is driven by explicit ``expire`` calls
from failure-injection code rather than heartbeat timing, which keeps
runs deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

__all__ = ["ZooKeeper", "Session", "NodeExistsError", "NoNodeError"]


class NodeExistsError(KeyError):
    """Create of an already-existing znode."""


class NoNodeError(KeyError):
    """Access to a missing znode."""


class Session:
    """A client session.  Ephemeral znodes die with it."""

    _next_id = 0

    def __init__(self, zk: "ZooKeeper") -> None:
        self.zk = zk
        self.session_id = Session._next_id
        Session._next_id += 1
        self.alive = True
        self.ephemerals: Set[str] = set()

    def expire(self) -> None:
        """Expire the session, deleting its ephemeral znodes (fires watches)."""
        if not self.alive:
            return
        self.alive = False
        for path in sorted(self.ephemerals, reverse=True):
            self.zk._delete_internal(path)
        self.ephemerals.clear()


class _ZNode:
    __slots__ = ("data", "children", "ephemeral_session", "seq_counter")

    def __init__(self, data: bytes = b"", ephemeral_session: Optional[Session] = None) -> None:
        self.data = data
        self.children: Set[str] = set()
        self.ephemeral_session = ephemeral_session
        self.seq_counter = 0


def _parent(path: str) -> str:
    idx = path.rfind("/")
    return path[:idx] if idx > 0 else "/"


class ZooKeeper:
    """In-process znode tree with ephemeral/sequential nodes and watches."""

    def __init__(self) -> None:
        self._nodes: Dict[str, _ZNode] = {"/": _ZNode()}
        self._watches: Dict[str, List[Callable[[str, str], None]]] = {}

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def connect(self) -> Session:
        return Session(self)

    # ------------------------------------------------------------------
    # znode CRUD
    # ------------------------------------------------------------------
    def create(
        self,
        path: str,
        data: bytes = b"",
        ephemeral: bool = False,
        sequential: bool = False,
        session: Optional[Session] = None,
    ) -> str:
        """Create a znode; returns the actual path (suffixed if sequential)."""
        self._validate(path)
        parent_path = _parent(path)
        parent = self._nodes.get(parent_path)
        if parent is None:
            raise NoNodeError(parent_path)
        if ephemeral:
            if session is None or not session.alive:
                raise ValueError("ephemeral znodes require a live session")
        if sequential:
            path = f"{path}{parent.seq_counter:010d}"
            parent.seq_counter += 1
        if path in self._nodes:
            raise NodeExistsError(path)
        self._nodes[path] = _ZNode(data, session if ephemeral else None)
        parent.children.add(path)
        if ephemeral and session is not None:
            session.ephemerals.add(path)
        self._fire(parent_path, "child")
        self._fire(path, "created")
        return path

    def exists(self, path: str) -> bool:
        return path in self._nodes

    def get(self, path: str) -> bytes:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        return node.data

    def set(self, path: str, data: bytes) -> None:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        node.data = data
        self._fire(path, "changed")

    def get_children(self, path: str) -> List[str]:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        return sorted(node.children)

    def delete(self, path: str) -> None:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        if node.children:
            raise ValueError(f"znode {path} has children")
        self._delete_internal(path)

    def _delete_internal(self, path: str) -> None:
        node = self._nodes.pop(path, None)
        if node is None:
            return
        for child in list(node.children):
            self._delete_internal(child)
        parent = self._nodes.get(_parent(path))
        if parent is not None:
            parent.children.discard(path)
        if node.ephemeral_session is not None:
            node.ephemeral_session.ephemerals.discard(path)
        self._fire(path, "deleted")
        self._fire(_parent(path), "child")

    # ------------------------------------------------------------------
    # watches
    # ------------------------------------------------------------------
    def watch(self, path: str, callback: Callable[[str, str], None]) -> None:
        """Register a one-shot watch; ``callback(path, event)`` on change.

        ``event`` is one of ``created``/``changed``/``deleted``/``child``.
        """
        self._watches.setdefault(path, []).append(callback)

    def _fire(self, path: str, event: str) -> None:
        callbacks = self._watches.pop(path, [])
        for cb in callbacks:
            cb(path, event)

    # ------------------------------------------------------------------
    # leader election (standard sequential-ephemeral recipe)
    # ------------------------------------------------------------------
    def elect(self, election_path: str, candidate: str, session: Session) -> bool:
        """Join an election; returns True if ``candidate`` is the leader.

        Each candidate creates an ephemeral-sequential znode; the lowest
        sequence number leads.  Call again after a watch fires to learn
        about leadership changes.
        """
        if not self.exists(election_path):
            self.create(election_path)
        mine = None
        for child in self.get_children(election_path):
            node = self._nodes[child]
            if node.ephemeral_session is session and node.data == candidate.encode():
                mine = child
                break
        if mine is None:
            mine = self.create(
                f"{election_path}/n_", candidate.encode(), ephemeral=True,
                sequential=True, session=session,
            )
        children = self.get_children(election_path)
        return bool(children) and children[0] == mine

    def _validate(self, path: str) -> None:
        if not path.startswith("/") or path.endswith("/") or "//" in path:
            raise ValueError(f"invalid znode path {path!r}")
