"""Trained model artifacts and their persistence.

The offline trainer (§IV-A: covariance → SVD, results "cached to
HDFS") produces one :class:`UnitModel` per unit.  The artifact holds
everything the online evaluator needs — sensor means/stds and the
top-k eigenpairs of the sensor covariance with the derived whitening
map — and round-trips losslessly through the
:class:`~repro.sparklet.storage.BlockStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sparklet.storage import BlockStore

__all__ = ["UnitModel", "save_model", "load_model", "model_key"]


@dataclass
class UnitModel:
    """Per-unit detection model.

    Attributes
    ----------
    mean, std:
        Per-sensor training mean and standard deviation, shape ``(p,)``.
    eigenvalues:
        Top-k eigenvalues of the *standardised* sensor covariance
        (correlation matrix), descending, shape ``(k,)``.
    components:
        Matching eigenvectors, shape ``(p, k)``.
    whitening:
        ``components · diag(1/√λ)`` — maps standardised observations to
        k independent N(0,1) coordinates under H₀, shape ``(p, k)``.
    n_train:
        Training sample count (documentation / sanity checks).
    """

    unit_id: int
    mean: np.ndarray
    std: np.ndarray
    eigenvalues: np.ndarray
    components: np.ndarray
    whitening: np.ndarray
    n_train: int

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=np.float64)
        self.std = np.asarray(self.std, dtype=np.float64)
        self.eigenvalues = np.asarray(self.eigenvalues, dtype=np.float64)
        self.components = np.asarray(self.components, dtype=np.float64)
        self.whitening = np.asarray(self.whitening, dtype=np.float64)
        p = self.mean.shape[0]
        k = self.eigenvalues.shape[0]
        if self.std.shape != (p,):
            raise ValueError("std must match mean's shape")
        if np.any(self.std <= 0):
            raise ValueError("sensor stds must be positive")
        if self.components.shape != (p, k) or self.whitening.shape != (p, k):
            raise ValueError("components/whitening must have shape (p, k)")
        if k and np.any(np.diff(self.eigenvalues) > 1e-9):
            raise ValueError("eigenvalues must be sorted descending")
        if np.any(self.eigenvalues < 0):
            raise ValueError("eigenvalues must be non-negative")
        if self.n_train < 2:
            raise ValueError("n_train must be >= 2")

    @property
    def n_sensors(self) -> int:
        return self.mean.shape[0]

    @property
    def n_components(self) -> int:
        return self.eigenvalues.shape[0]

    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of (standardised) variance captured per component."""
        total = float(self.n_sensors)
        return self.eigenvalues / total


def model_key(unit_id: int) -> str:
    """BlockStore key for a unit's model."""
    return f"unit-model-{unit_id:05d}"


def save_model(store: BlockStore, model: UnitModel) -> str:
    """Persist a model; returns its store key."""
    key = model_key(model.unit_id)
    store.put(
        key,
        {
            "unit_id": np.array([model.unit_id], dtype=np.int64),
            "mean": model.mean,
            "std": model.std,
            "eigenvalues": model.eigenvalues,
            "components": model.components,
            "whitening": model.whitening,
            "n_train": np.array([model.n_train], dtype=np.int64),
        },
    )
    return key


def load_model(store: BlockStore, unit_id: int) -> Optional[UnitModel]:
    """Load a unit's model, or None if never trained."""
    key = model_key(unit_id)
    if not store.exists(key):
        return None
    arrays = store.get(key)
    return UnitModel(
        unit_id=int(arrays["unit_id"][0]),
        mean=arrays["mean"],
        std=arrays["std"],
        eigenvalues=arrays["eigenvalues"],
        components=arrays["components"],
        whitening=arrays["whitening"],
        n_train=int(arrays["n_train"][0]),
    )
