"""Detection-quality metrics: power, FDP, FWER, detection delay.

These quantify exactly the trade-off §IV argues about: an anomaly
detector must "balance identifying the majority of true faults while
also controlling the rate of false alarms".  Metrics are computed from
a ``(T, p)`` flag mask against the generator's ground-truth mask.

Conventions
-----------
* A *false alarm* is a flagged sample-cell with no injected fault
  signal at that (time, sensor).
* *Power* is measured over faulted cells after the onset.
* *FDP* (false-discovery proportion) is false alarms / all alarms —
  the realised analogue of the FDR the BH procedure controls in
  expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["DetectionOutcome", "evaluate_flags", "aggregate_outcomes", "detection_delay"]


@dataclass
class DetectionOutcome:
    """Confusion counts and derived ratios for one unit window."""

    unit_id: int
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int
    any_false_alarm: bool
    delay: Optional[int]  # samples from fault onset to first true detection
    family_fdp: float = 0.0  # mean FDP per time-step family (what BH controls)
    null_family_rate: float = 0.0  # fraction of fault-free time steps with >= 1 flag

    @property
    def discoveries(self) -> int:
        return self.true_positives + self.false_positives

    @property
    def fdp(self) -> float:
        """False-discovery proportion (0 when nothing was flagged)."""
        d = self.discoveries
        return self.false_positives / d if d else 0.0

    @property
    def power(self) -> float:
        """Recall over faulted cells (NaN when the window has no fault)."""
        faulted = self.true_positives + self.false_negatives
        return self.true_positives / faulted if faulted else float("nan")

    @property
    def false_alarm_rate(self) -> float:
        """Per-cell type I rate over null cells."""
        nulls = self.false_positives + self.true_negatives
        return self.false_positives / nulls if nulls else 0.0


def evaluate_flags(
    flags: np.ndarray, truth: np.ndarray, unit_id: int = 0
) -> DetectionOutcome:
    """Score a flag mask against ground truth (both ``(T, p)`` bool)."""
    f = np.asarray(flags, dtype=bool)
    t = np.asarray(truth, dtype=bool)
    if f.shape != t.shape:
        raise ValueError(f"shape mismatch: flags {f.shape} vs truth {t.shape}")
    tp = int(np.sum(f & t))
    fp = int(np.sum(f & ~t))
    fn = int(np.sum(~f & t))
    tn = int(np.sum(~f & ~t))
    # Per-time-step (per-family) quantities: BH controls E[FDP] within
    # each family, so the honest realised-FDR readout averages FDP over
    # time steps rather than pooling the whole window.
    fp_t = np.sum(f & ~t, axis=1)
    disc_t = np.sum(f, axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        fdp_t = np.where(disc_t > 0, fp_t / np.maximum(disc_t, 1), 0.0)
    family_fdp = float(np.mean(fdp_t)) if fdp_t.size else 0.0
    null_steps = ~t.any(axis=1)
    if null_steps.any():
        null_family_rate = float(np.mean(f[null_steps].any(axis=1)))
    else:
        null_family_rate = 0.0
    return DetectionOutcome(
        unit_id=unit_id,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
        any_false_alarm=fp > 0,
        delay=detection_delay(f, t),
        family_fdp=family_fdp,
        null_family_rate=null_family_rate,
    )


def detection_delay(flags: np.ndarray, truth: np.ndarray) -> Optional[int]:
    """Samples between fault onset and the first *true* detection.

    None when the window is fault-free or the fault is never caught.
    """
    f = np.asarray(flags, dtype=bool)
    t = np.asarray(truth, dtype=bool)
    fault_times = np.flatnonzero(t.any(axis=1))
    if fault_times.size == 0:
        return None
    onset = int(fault_times[0])
    hits = np.flatnonzero((f & t).any(axis=1))
    if hits.size == 0:
        return None
    return int(hits[0]) - onset


@dataclass
class AggregateMetrics:
    """Fleet-level summary over many unit outcomes."""

    n_units: int
    mean_fdp: float  # pooled-window FDP, averaged over units
    mean_family_fdp: float  # per-time-step FDP (the quantity BH controls)
    mean_power: float
    fwer: float  # fraction of units with >= 1 false alarm anywhere in the window
    null_family_rate: float  # P(>= 1 false alarm in a fault-free time step)
    mean_false_alarm_rate: float
    mean_delay: float  # over detected faults only (NaN if none)
    detected_fraction: float  # faulted units with >= 1 true detection

    def row(self) -> str:
        return (
            f"famFDP={self.mean_family_fdp:6.3f}  power={self.mean_power:6.3f}  "
            f"nullFam={self.null_family_rate:6.3f}  FAR={self.mean_false_alarm_rate:.5f}  "
            f"delay={self.mean_delay:7.1f}  detected={self.detected_fraction:5.2f}"
        )


def aggregate_outcomes(outcomes: Sequence[DetectionOutcome]) -> AggregateMetrics:
    """Average per-unit outcomes into the E4 summary numbers."""
    if not outcomes:
        raise ValueError("no outcomes to aggregate")
    fdps = [o.fdp for o in outcomes]
    powers = [o.power for o in outcomes if not np.isnan(o.power)]
    delays = [o.delay for o in outcomes if o.delay is not None]
    faulted = [o for o in outcomes if o.true_positives + o.false_negatives > 0]
    detected = [o for o in faulted if o.true_positives > 0]
    return AggregateMetrics(
        n_units=len(outcomes),
        mean_fdp=float(np.mean(fdps)),
        mean_family_fdp=float(np.mean([o.family_fdp for o in outcomes])),
        mean_power=float(np.mean(powers)) if powers else float("nan"),
        fwer=float(np.mean([o.any_false_alarm for o in outcomes])),
        null_family_rate=float(np.mean([o.null_family_rate for o in outcomes])),
        mean_false_alarm_rate=float(np.mean([o.false_alarm_rate for o in outcomes])),
        mean_delay=float(np.mean(delays)) if delays else float("nan"),
        detected_fraction=len(detected) / len(faulted) if faulted else float("nan"),
    )
