"""End-to-end anomaly pipeline: train → evaluate → publish to the TSDB.

The integration layer gluing the three systems together, mirroring
Figure 1: sensor data and *flagged anomalies* both live in OpenTSDB
("Results from online evaluation are reported back to OpenTSDB for use
by the integrated visualization tool"), the trainer runs as a sparklet
batch job, and the visualization reads everything back through the
query engine.

Anomalies are stored under metric ``anomaly`` with the same
``unit``/``sensor`` tags as the data; the stored value is the
standardised test score at the flagged instant, so drill-down views
can show severity.  Unit-level T² alarms are stored under
``anomaly.unit`` with a ``unit`` tag only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..simdata.generator import FleetGenerator, UnitData
from ..simdata.workload import METRIC, sensor_tag, unit_points, unit_tag
from ..sparklet.context import SparkletContext
from ..sparklet.storage import BlockStore
from ..tsdb.ingest import TsdbCluster
from ..tsdb.tsd import DataPoint
from .fdr import AnomalyReport, FDRDetector, FDRDetectorConfig
from .metrics import DetectionOutcome, evaluate_flags
from .model import UnitModel
from .online import OnlineEvaluator
from .training import OfflineTrainer, TrainingResult

__all__ = ["ANOMALY_METRIC", "UNIT_ALARM_METRIC", "PipelineResult", "AnomalyPipeline"]

ANOMALY_METRIC = "anomaly"
UNIT_ALARM_METRIC = "anomaly.unit"


@dataclass
class PipelineResult:
    """Everything one pipeline run produced, per unit."""

    reports: Dict[int, AnomalyReport] = field(default_factory=dict)
    outcomes: Dict[int, DetectionOutcome] = field(default_factory=dict)
    points_published: int = 0
    anomalies_published: int = 0

    def total_discoveries(self) -> int:
        return sum(r.n_discoveries for r in self.reports.values())


class AnomalyPipeline:
    """Drives the full train/evaluate/publish loop for a fleet.

    Parameters
    ----------
    generator:
        The synthetic fleet (§II-A dataset).
    cluster:
        The simulated TSDB deployment to publish into (optional; the
        pipeline also works storage-less for pure detection studies).
    store:
        Block store for model artifacts.
    config:
        Detector configuration.
    """

    def __init__(
        self,
        generator: FleetGenerator,
        cluster: Optional[TsdbCluster] = None,
        store: Optional[BlockStore] = None,
        config: Optional[FDRDetectorConfig] = None,
        ctx: Optional[SparkletContext] = None,
    ) -> None:
        self.generator = generator
        self.cluster = cluster
        self.config = config if config is not None else FDRDetectorConfig()
        self.ctx = ctx
        self.store = store
        self._models: Dict[int, UnitModel] = {}

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(
        self, unit_ids: Optional[Sequence[int]] = None, n_train: int = 600
    ) -> TrainingResult | List[int]:
        """Train models for the units (sparklet job when ctx+store given)."""
        units = list(unit_ids) if unit_ids is not None else list(self.generator.units())
        if self.ctx is not None and self.store is not None:
            trainer = OfflineTrainer(self.ctx, self.store, self.config)
            result = trainer.train_fleet(self.generator, units, n_train)
            self._models.update(trainer.load_models(units))
            return result
        detector = FDRDetector(self.config)
        for unit_id in units:
            window = self.generator.training_window(unit_id, n_train)
            self._models[unit_id] = detector.fit(window.values, unit_id=unit_id)
        return units

    def model_for(self, unit_id: int) -> UnitModel:
        try:
            return self._models[unit_id]
        except KeyError:
            raise KeyError(f"unit {unit_id} has no trained model; call train() first") from None

    # ------------------------------------------------------------------
    # evaluation + publishing
    # ------------------------------------------------------------------
    def evaluate_unit(
        self, unit_id: int, n_eval: int = 600, publish: bool = True
    ) -> AnomalyReport:
        """Score one unit's evaluation window; optionally publish results."""
        model = self.model_for(unit_id)
        window = self.generator.evaluation_window(unit_id, n_eval)
        detector = FDRDetector(self.config)
        report = detector.detect(model, window.values)
        if publish and self.cluster is not None:
            self._publish(window, report)
        return report

    def run(
        self,
        unit_ids: Optional[Sequence[int]] = None,
        n_train: int = 600,
        n_eval: int = 600,
        publish: bool = True,
    ) -> PipelineResult:
        """Full loop over the fleet; returns reports and scored outcomes."""
        units = list(unit_ids) if unit_ids is not None else list(self.generator.units())
        self.train(units, n_train)
        result = PipelineResult()
        for unit_id in units:
            window = self.generator.evaluation_window(unit_id, n_eval)
            detector = FDRDetector(self.config)
            report = detector.detect(self.model_for(unit_id), window.values)
            result.reports[unit_id] = report
            result.outcomes[unit_id] = evaluate_flags(report.flags, window.truth, unit_id)
            if publish and self.cluster is not None:
                data_n, anom_n = self._publish(window, report)
                result.points_published += data_n
                result.anomalies_published += anom_n
        return result

    # ------------------------------------------------------------------
    def _publish(self, window: UnitData, report: AnomalyReport) -> tuple[int, int]:
        """Write the window's sensor data and its flagged anomalies."""
        assert self.cluster is not None
        data_written = self.cluster.direct_put(unit_points(window))
        anomaly_points = list(self._anomaly_points(window, report))
        anom_written = self.cluster.direct_put(anomaly_points)
        return data_written, anom_written

    def _anomaly_points(self, window: UnitData, report: AnomalyReport):
        utag = ("unit", unit_tag(window.unit_id))
        rows, cols = np.nonzero(report.flags)
        for row, sensor in zip(rows.tolist(), cols.tolist()):
            yield DataPoint(
                ANOMALY_METRIC,
                window.start_time + row,
                float(report.zscores[row, sensor]),
                (("sensor", sensor_tag(sensor)), utag),
            )
        for row in np.flatnonzero(report.unit_alarm).tolist():
            yield DataPoint(
                UNIT_ALARM_METRIC,
                window.start_time + row,
                float(report.t2[row]),
                (utag,),
            )
