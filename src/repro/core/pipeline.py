"""End-to-end anomaly pipeline: train → evaluate → publish to the TSDB.

The integration layer gluing the three systems together, mirroring
Figure 1: sensor data and *flagged anomalies* both live in OpenTSDB
("Results from online evaluation are reported back to OpenTSDB for use
by the integrated visualization tool"), the trainer runs as a sparklet
batch job, and the visualization reads everything back through the
query engine.

Evaluation is driven by the
:class:`~repro.core.engine.FleetEvaluationEngine`: per-unit scoring
fans out across sparklet executor threads through cached
:class:`~repro.core.online.OnlineEvaluator` fast paths, and results
are published through the cluster's real ingress
(:meth:`~repro.tsdb.ingest.TsdbCluster.submit` → the buffering reverse
proxy) with bounded in-flight batches and durable-ack tracking — the
§III backpressure discipline, applied to the analysis write-back path
too.  A :class:`PipelineConfig` consolidates the run knobs, and every
run is instrumented with a
:class:`~repro.cluster.metrics.MetricsRegistry` (per-stage timings,
scored samples/s, publish acks and retries) surfaced on
:class:`PipelineResult`.

Anomalies are stored under metric ``anomaly`` with the same
``unit``/``sensor`` tags as the data; the stored value is the
standardised test score at the flagged instant, so drill-down views
can show severity.  Unit-level T² alarms are stored under
``anomaly.unit`` with a ``unit`` tag only.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.metrics import MetricsRegistry
from ..obs.selfreport import SelfReporter
from ..obs.telemetry import Telemetry, component_registry
from ..obs.trace import Tracer
from ..simdata.generator import FleetGenerator, UnitData
from ..simdata.workload import sensor_tag, unit_points, unit_tag
from ..sparklet.context import SparkletContext
from ..sparklet.storage import BlockStore
from ..tsdb.ingest import TsdbCluster
from ..tsdb.publish import BatchPublisher, PublishReport
from ..tsdb.tsd import DataPoint
from .engine import FleetEvaluationEngine
from .fdr import AnomalyReport, FDRDetector, FDRDetectorConfig
from .metrics import DetectionOutcome
from .model import UnitModel
from .training import OfflineTrainer, TrainingResult

__all__ = [
    "ANOMALY_METRIC",
    "UNIT_ALARM_METRIC",
    "AnomalyPipeline",
    "PipelineConfig",
    "PipelineResult",
]

ANOMALY_METRIC = "anomaly"
UNIT_ALARM_METRIC = "anomaly.unit"


@dataclass(frozen=True)
class PipelineConfig:
    """Run-shape knobs for :meth:`AnomalyPipeline.run`.

    Consolidates what used to be keyword sprawl on ``run()`` /
    ``evaluate_unit()`` into one (immutable) object that can be reused
    across runs.  All fields are also accepted as keyword-only
    overrides on ``run()`` itself.

    Parameters
    ----------
    n_train / n_eval:
        Training and evaluation window lengths in samples.
    publish:
        Whether to write data + anomalies back to the attached cluster.
    parallelism:
        Worker count for fleet scoring.  ``None`` follows the attached
        sparklet context (or the CPU count); ``1`` forces the inline
        serial path.
    publish_batch_size:
        Points per put batch submitted to the cluster ingress.
    use_proxy_path:
        ``True`` (default) publishes through ``TsdbCluster.submit()``
        — the buffering reverse proxy with durable acks.  ``False``
        falls back to ``direct_put`` bulk loads (no simulated RPC).
    max_in_flight_batches:
        Driver-side backpressure window for the proxy path.
    wave_size:
        Units scored per fan-out wave (bounds peak window memory);
        ``None`` derives it from the parallelism.
    self_report:
        Periodically flush the run's and the cluster's telemetry back
        into the attached TSDB as ``proxy.*``/``tsd.*``/``engine.*``
        series (queryable platform self-telemetry).  Ignored without a
        cluster.
    self_report_interval:
        Sim-seconds between self-telemetry flushes.
    trace:
        Enable span tracing on the attached cluster for this run; the
        resulting :class:`~repro.obs.Tracer` is surfaced on
        ``PipelineResult.trace``.
    """

    n_train: int = 600
    n_eval: int = 600
    publish: bool = True
    parallelism: Optional[int] = None
    publish_batch_size: int = 500
    use_proxy_path: bool = True
    max_in_flight_batches: int = 32
    wave_size: Optional[int] = None
    self_report: bool = False
    self_report_interval: float = 0.25
    trace: bool = False

    def __post_init__(self) -> None:
        if self.n_train < 2:
            raise ValueError("n_train must be >= 2")
        if self.n_eval < 1:
            raise ValueError("n_eval must be >= 1")
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.publish_batch_size < 1:
            raise ValueError("publish_batch_size must be >= 1")
        if self.max_in_flight_batches < 1:
            raise ValueError("max_in_flight_batches must be >= 1")
        if self.wave_size is not None and self.wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if self.self_report_interval <= 0:
            raise ValueError("self_report_interval must be positive")

    def with_overrides(self, **overrides: object) -> "PipelineConfig":
        """A copy with every non-``None`` override applied."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self


@dataclass
class PipelineResult:
    """Everything one pipeline run produced, per unit.

    Beyond the per-unit reports/outcomes, a run carries its own
    instrumentation: ``stage_seconds`` (wall-clock per train / evaluate
    / publish stage), ``samples_per_second`` (sensor samples scored per
    evaluation-stage second), the publish-side
    :class:`~repro.tsdb.publish.PublishReport` for the data and anomaly
    channels, and the backing ``metrics`` registry with the raw
    counters (``publish.data.acks``, ``publish.anomaly.retries``, …).
    """

    reports: Dict[int, AnomalyReport] = field(default_factory=dict)
    outcomes: Dict[int, DetectionOutcome] = field(default_factory=dict)
    points_published: int = 0
    anomalies_published: int = 0
    metrics: MetricsRegistry = field(default_factory=component_registry)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    samples_per_second: float = 0.0
    data_publish: Optional[PublishReport] = None
    anomaly_publish: Optional[PublishReport] = None
    trace: Optional[Tracer] = None
    self_reporter: Optional[SelfReporter] = None

    def total_discoveries(self) -> int:
        return sum(r.n_discoveries for r in self.reports.values())

    @property
    def publish_acks(self) -> int:
        """Durably acknowledged put batches across both channels."""
        return sum(
            rep.batches_acked
            for rep in (self.data_publish, self.anomaly_publish)
            if rep is not None
        )

    @property
    def publish_retries(self) -> int:
        """Proxy re-dispatches of bounced batches across both channels."""
        return sum(
            rep.retries
            for rep in (self.data_publish, self.anomaly_publish)
            if rep is not None
        )


class AnomalyPipeline:
    """Drives the full train/evaluate/publish loop for a fleet.

    Parameters
    ----------
    generator:
        The synthetic fleet (§II-A dataset).
    cluster:
        The simulated TSDB deployment to publish into (optional; the
        pipeline also works storage-less for pure detection studies).
    store:
        Block store for model artifacts.
    config:
        Detector configuration.
    ctx:
        Sparklet context shared by the batch trainer and the fleet
        evaluation engine's fan-out.
    pipeline_config:
        Default :class:`PipelineConfig` for runs (overridable per
        call).
    """

    def __init__(
        self,
        generator: FleetGenerator,
        cluster: Optional[TsdbCluster] = None,
        store: Optional[BlockStore] = None,
        config: Optional[FDRDetectorConfig] = None,
        ctx: Optional[SparkletContext] = None,
        pipeline_config: Optional[PipelineConfig] = None,
    ) -> None:
        self.generator = generator
        self.cluster = cluster
        self.config = config if config is not None else FDRDetectorConfig()
        self.ctx = ctx
        self.store = store
        self.pipeline_config = (
            pipeline_config if pipeline_config is not None else PipelineConfig()
        )
        self._models: Dict[int, UnitModel] = {}
        self.engine = FleetEvaluationEngine(
            generator, self._models, self.config, ctx=ctx
        )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(
        self, unit_ids: Optional[Sequence[int]] = None, *, n_train: int = 600
    ) -> TrainingResult:
        """Train models for the units (sparklet job when ctx+store given).

        Training is idempotent per ``(unit, n_train)``: the generator's
        training windows are deterministic, so refitting an
        already-trained unit would recompute the identical model — such
        units are skipped.  Calling with a different ``n_train`` refits.

        Both branches return a :class:`TrainingResult` (the local path
        synthesizes one with no persisted keys).  Iterating the result
        yields the trained unit ids — the deprecation shim for callers
        of the old ``List[int]`` local-path return.
        """
        units = list(unit_ids) if unit_ids is not None else list(self.generator.units())
        stale = [
            u
            for u in units
            if u not in self._models or self._models[u].n_train != n_train
        ]
        if self.ctx is not None and self.store is not None:
            keys: List[str] = []
            if stale:
                trainer = OfflineTrainer(self.ctx, self.store, self.config)
                keys = trainer.train_fleet(self.generator, stale, n_train).keys
                self._models.update(trainer.load_models(stale))
            return TrainingResult(unit_ids=units, keys=keys, n_train=n_train)
        detector = FDRDetector(self.config)
        for unit_id in stale:
            window = self.generator.training_window(unit_id, n_train)
            self._models[unit_id] = detector.fit(window.values, unit_id=unit_id)
        return TrainingResult(unit_ids=units, keys=[], n_train=n_train)

    def model_for(self, unit_id: int) -> UnitModel:
        try:
            return self._models[unit_id]
        except KeyError:
            raise KeyError(f"unit {unit_id} has no trained model; call train() first") from None

    # ------------------------------------------------------------------
    # evaluation + publishing
    # ------------------------------------------------------------------
    def evaluate_unit(
        self,
        unit_id: int,
        *,
        n_eval: int = 600,
        publish: bool = True,
        use_proxy_path: Optional[bool] = None,
    ) -> AnomalyReport:
        """Score one unit's evaluation window; optionally publish results."""
        evaluation = self.engine.evaluate_unit(unit_id, n_eval)
        if publish and self.cluster is not None:
            cfg = self.pipeline_config.with_overrides(use_proxy_path=use_proxy_path)
            data_pub, anomaly_pub = self._publishers(cfg, component_registry())
            data_pub.publish(unit_points(evaluation.window))
            anomaly_pub.publish(self._anomaly_points(evaluation.window, evaluation.report))
            data_pub.flush()
            anomaly_pub.flush()
        return evaluation.report

    def run(
        self,
        unit_ids: Optional[Sequence[int]] = None,
        *,
        config: Optional[PipelineConfig] = None,
        n_train: Optional[int] = None,
        n_eval: Optional[int] = None,
        publish: Optional[bool] = None,
        parallelism: Optional[int] = None,
        publish_batch_size: Optional[int] = None,
        use_proxy_path: Optional[bool] = None,
        wave_size: Optional[int] = None,
        self_report: Optional[bool] = None,
        trace: Optional[bool] = None,
    ) -> PipelineResult:
        """Full loop over the fleet; returns reports, outcomes, metrics.

        ``config`` (or the pipeline's default :class:`PipelineConfig`)
        supplies the run shape; the remaining keyword-only arguments
        override individual fields for this call.  Scoring fans out
        across the evaluation engine in waves; publishing streams each
        wave through the backpressured proxy path as the next wave is
        scored.
        """
        cfg = (config if config is not None else self.pipeline_config).with_overrides(
            n_train=n_train,
            n_eval=n_eval,
            publish=publish,
            parallelism=parallelism,
            publish_batch_size=publish_batch_size,
            use_proxy_path=use_proxy_path,
            wave_size=wave_size,
            self_report=self_report,
            trace=trace,
        )
        units = list(unit_ids) if unit_ids is not None else list(self.generator.units())
        # Fresh telemetry per run so counters never bleed across runs.
        # ``registry`` is the catch-all routed view: the publishers'
        # ``publish.*`` land in the publisher tree, the ``pipeline.*``
        # gauges below in the engine tree, all discoverable through
        # ``result.metrics`` exactly as before.
        telemetry = Telemetry()
        registry = telemetry.root
        result = PipelineResult(metrics=registry)
        self.engine.metrics = telemetry.registry("engine")

        if cfg.trace and self.cluster is not None:
            self.cluster.tracer.enable()
            result.trace = self.cluster.tracer

        reporter = None
        if cfg.self_report and self.cluster is not None:
            # Flush cluster-side *and* run-side telemetry back into the
            # TSDB itself, so platform health is queryable like any
            # other series (tsd.*, proxy.*, engine.*, publish.*).
            reporter = SelfReporter(
                self.cluster,
                extra=(telemetry,),
                interval=cfg.self_report_interval,
            )
            reporter.start()
            result.self_reporter = reporter

        t0 = time.perf_counter()
        self.train(units, n_train=cfg.n_train)
        train_seconds = time.perf_counter() - t0

        publishing = cfg.publish and self.cluster is not None
        data_pub = anomaly_pub = None
        if publishing:
            data_pub, anomaly_pub = self._publishers(cfg, registry)

        evaluate_seconds = 0.0
        publish_seconds = 0.0
        samples_scored = 0
        waves = self.engine.evaluate_fleet(
            units, cfg.n_eval, parallelism=cfg.parallelism, wave_size=cfg.wave_size
        )
        while True:
            t0 = time.perf_counter()
            wave = next(waves, None)
            evaluate_seconds += time.perf_counter() - t0
            if wave is None:
                break
            t0 = time.perf_counter()
            for evaluation in wave:
                result.reports[evaluation.unit_id] = evaluation.report
                result.outcomes[evaluation.unit_id] = evaluation.outcome
                samples_scored += evaluation.window.values.size
                if publishing:
                    data_pub.publish(unit_points(evaluation.window))
                    anomaly_pub.publish(
                        self._anomaly_points(evaluation.window, evaluation.report)
                    )
            publish_seconds += time.perf_counter() - t0

        if publishing:
            t0 = time.perf_counter()
            result.data_publish = data_pub.flush()
            result.anomaly_publish = anomaly_pub.flush()
            publish_seconds += time.perf_counter() - t0
            result.points_published = result.data_publish.points_written
            result.anomalies_published = result.anomaly_publish.points_written

        result.stage_seconds = {
            "train": train_seconds,
            "evaluate": evaluate_seconds,
            "publish": publish_seconds,
        }
        if evaluate_seconds > 0:
            result.samples_per_second = samples_scored / evaluate_seconds
        registry.gauge("pipeline.train_seconds").set(train_seconds)
        registry.gauge("pipeline.evaluate_seconds").set(evaluate_seconds)
        registry.gauge("pipeline.publish_seconds").set(publish_seconds)
        registry.gauge("pipeline.samples_per_second").set(result.samples_per_second)
        registry.counter("pipeline.units").inc(len(units))
        registry.counter("pipeline.samples_scored").inc(samples_scored)
        if reporter is not None:
            # Final flush after the stage gauges above, so the last
            # self-metric snapshot includes the completed run's totals.
            reporter.stop()
            reporter.flush()
        return result

    # ------------------------------------------------------------------
    def _publishers(
        self, cfg: PipelineConfig, registry: MetricsRegistry
    ) -> Tuple[BatchPublisher, BatchPublisher]:
        """Separate data / anomaly publishers so ack counts stay attributable."""
        assert self.cluster is not None
        make = lambda channel: BatchPublisher(  # noqa: E731
            self.cluster,
            batch_size=cfg.publish_batch_size,
            max_in_flight_batches=cfg.max_in_flight_batches,
            use_proxy_path=cfg.use_proxy_path,
            metrics=registry,
            channel=channel,
        )
        return make("publish.data"), make("publish.anomaly")

    def _anomaly_points(
        self, window: UnitData, report: AnomalyReport
    ) -> Iterator[DataPoint]:
        """Flagged per-sensor scores and unit alarms as TSDB points."""
        utag = ("unit", unit_tag(window.unit_id))
        rows, cols = np.nonzero(report.flags)
        for row, sensor in zip(rows.tolist(), cols.tolist()):
            yield DataPoint(
                ANOMALY_METRIC,
                window.start_time + row,
                float(report.zscores[row, sensor]),
                (("sensor", sensor_tag(sensor)), utag),
            )
        for row in np.flatnonzero(report.unit_alarm).tolist():
            yield DataPoint(
                UNIT_ALARM_METRIC,
                window.start_time + row,
                float(report.t2[row]),
                (utag,),
            )
