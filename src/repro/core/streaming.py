"""Streaming (online) training — the paper's §VI ongoing work.

"Ongoing work for the project includes ... migrating our anomaly
detection implementation to Spark Streaming for online training."

Two pieces:

* :class:`IncrementalMoments` — exact streaming estimation of per-sensor
  means and the full covariance via Chan et al.'s pairwise batch-merge
  update (a batched Welford).  After any sequence of ``update`` calls
  the moments equal the batch computation over the concatenated data,
  to floating-point round-off — the property the tests pin down.
* :class:`StreamingTrainer` — consumes micro-batches of ``(unit_id,
  samples)`` (e.g. from a :class:`repro.sparklet.streaming.DStream`),
  maintains per-unit moment state, and refreshes each unit's
  :class:`~repro.core.model.UnitModel` (eigendecomposition + whitening)
  every ``refresh_every`` batches, so the online evaluator always scores
  against a recent model without paying the SVD per batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .fdr import FDRDetector, FDRDetectorConfig
from .model import UnitModel

__all__ = ["IncrementalMoments", "StreamingTrainer"]


class IncrementalMoments:
    """Exact streaming mean/covariance over batches of rows.

    State after ``update`` calls with batches ``X₁..X_k`` equals the
    batch statistics of ``vstack(X₁..X_k)``.  Uses the numerically
    stable merge::

        δ = μ_b − μ
        M ← M + M_b + δδᵀ · n·n_b/(n+n_b)

    where ``M`` is the centred sum-of-squares matrix.
    """

    def __init__(self, n_sensors: int) -> None:
        if n_sensors < 1:
            raise ValueError("n_sensors must be >= 1")
        self.n_sensors = n_sensors
        self.count = 0
        self._mean = np.zeros(n_sensors)
        self._m2 = np.zeros((n_sensors, n_sensors))

    def update(self, batch: np.ndarray) -> None:
        """Fold in a batch of shape ``(n_b, p)``."""
        x = np.asarray(batch, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_sensors:
            raise ValueError(f"batch must be (n, {self.n_sensors}); got {x.shape}")
        n_b = x.shape[0]
        if n_b == 0:
            return
        mean_b = x.mean(axis=0)
        centred = x - mean_b
        m2_b = centred.T @ centred
        if self.count == 0:
            self.count = n_b
            self._mean = mean_b
            self._m2 = m2_b
            return
        n = self.count
        total = n + n_b
        delta = mean_b - self._mean
        self._mean = self._mean + delta * (n_b / total)
        self._m2 = self._m2 + m2_b + np.outer(delta, delta) * (n * n_b / total)
        self.count = total

    # ------------------------------------------------------------------
    @property
    def mean(self) -> np.ndarray:
        if self.count == 0:
            raise ValueError("no data seen yet")
        return self._mean.copy()

    def covariance(self) -> np.ndarray:
        """Sample covariance (ddof=1)."""
        if self.count < 2:
            raise ValueError("covariance requires at least 2 samples")
        cov = self._m2 / (self.count - 1)
        return (cov + cov.T) / 2.0

    def std(self) -> np.ndarray:
        return np.sqrt(np.diag(self.covariance()))

    def merge(self, other: "IncrementalMoments") -> "IncrementalMoments":
        """Combine two independent accumulators (tree-reduction support)."""
        if other.n_sensors != self.n_sensors:
            raise ValueError("sensor-count mismatch")
        out = IncrementalMoments(self.n_sensors)
        if self.count == 0:
            out.count, out._mean, out._m2 = other.count, other._mean.copy(), other._m2.copy()
            return out
        if other.count == 0:
            out.count, out._mean, out._m2 = self.count, self._mean.copy(), self._m2.copy()
            return out
        n, n_b = self.count, other.count
        total = n + n_b
        delta = other._mean - self._mean
        out.count = total
        out._mean = self._mean + delta * (n_b / total)
        out._m2 = self._m2 + other._m2 + np.outer(delta, delta) * (n * n_b / total)
        return out


@dataclass
class _UnitState:
    moments: IncrementalMoments
    batches_since_refresh: int = 0
    model: Optional[UnitModel] = None
    refreshes: int = 0
    quarantines: int = 0


class StreamingTrainer:
    """Per-unit online training with periodic model refresh.

    Parameters
    ----------
    n_sensors:
        Sensor count per unit (all units share the fleet schema).
    config:
        Detector configuration (governs component selection).
    refresh_every:
        Micro-batches between eigendecomposition refreshes per unit.
    min_samples:
        Samples required before the first model is produced.
    on_model:
        Optional callback fired with every refreshed :class:`UnitModel`
        (e.g. to persist to a block store or hot-swap an evaluator).
    on_quarantine:
        Optional callback fired with the unit id whenever a due refresh
        is skipped because the unit's accumulated variance is degenerate
        (see :meth:`ingest`); the unit keeps its last good model.
    """

    def __init__(
        self,
        n_sensors: int,
        config: Optional[FDRDetectorConfig] = None,
        refresh_every: int = 5,
        min_samples: int = 50,
        on_model: Optional[Callable[[UnitModel], None]] = None,
        on_quarantine: Optional[Callable[[int], None]] = None,
    ) -> None:
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.n_sensors = n_sensors
        self.config = config if config is not None else FDRDetectorConfig()
        self.refresh_every = refresh_every
        self.min_samples = min_samples
        self.on_model = on_model
        self.on_quarantine = on_quarantine
        #: Total degenerate-variance refreshes skipped across all units.
        self.total_quarantines = 0
        self._units: Dict[int, _UnitState] = {}

    # ------------------------------------------------------------------
    def ingest(self, unit_id: int, batch: np.ndarray) -> Optional[UnitModel]:
        """Fold one micro-batch in; returns a refreshed model if due.

        Empty micro-batches (idle stream intervals) contribute nothing
        to the moments and do **not** advance the refresh cadence — a
        refresh is only ever triggered by new samples, never by the
        passage of empty intervals.

        A due refresh over degenerate statistics (some sensor's sample
        variance is zero or non-finite — a stuck sensor, or a constant
        feed) does not raise: the unit is *quarantined* for this cycle —
        the refresh is skipped, the last good model stays live, the
        per-unit and total quarantine counters advance, and
        ``on_quarantine`` fires.  The cadence resets, so the refresh is
        retried after another ``refresh_every`` non-empty batches (new
        data may restore the variance).
        """
        state = self._units.get(unit_id)
        if state is None:
            state = self._units[unit_id] = _UnitState(IncrementalMoments(self.n_sensors))
        state.moments.update(batch)
        if np.asarray(batch).shape[0] == 0:
            return None
        state.batches_since_refresh += 1
        due = (
            state.moments.count >= self.min_samples
            and (state.model is None or state.batches_since_refresh >= self.refresh_every)
        )
        if not due:
            return None
        model = self._refresh(unit_id, state)
        state.batches_since_refresh = 0
        return model

    def ingest_pairs(self, pairs) -> List[UnitModel]:
        """Ingest ``(unit_id, batch)`` records; returns refreshed models."""
        out = []
        for unit_id, batch in pairs:
            model = self.ingest(unit_id, batch)
            if model is not None:
                out.append(model)
        return out

    def _refresh(self, unit_id: int, state: _UnitState) -> Optional[UnitModel]:
        moments = state.moments
        mean = moments.mean
        cov = moments.covariance()
        std = np.sqrt(np.diag(cov))
        if np.any(std <= 0) or not np.all(np.isfinite(std)):
            # Quarantine, don't propagate: one stuck sensor on one unit
            # must not kill the whole stream mid-run.  Keep the last
            # good model and surface the skip through the counters.
            state.quarantines += 1
            self.total_quarantines += 1
            if self.on_quarantine is not None:
                self.on_quarantine(unit_id)
            return None
        # correlation matrix = D^{-1/2} Σ D^{-1/2}
        inv = 1.0 / std
        corr = cov * np.outer(inv, inv)
        eigvals, eigvecs = np.linalg.eigh((corr + corr.T) / 2.0)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.clip(eigvals[order], 0.0, None)
        eigvecs = eigvecs[:, order]
        k = FDRDetector(self.config)._select_k(eigvals)
        eigvals, eigvecs = eigvals[:k], eigvecs[:, :k]
        whitening = eigvecs / np.sqrt(np.maximum(eigvals, 1e-12))
        model = UnitModel(
            unit_id=unit_id,
            mean=mean,
            std=std,
            eigenvalues=eigvals,
            components=eigvecs,
            whitening=whitening,
            n_train=moments.count,
        )
        state.model = model
        state.refreshes += 1
        if self.on_model is not None:
            self.on_model(model)
        return model

    # ------------------------------------------------------------------
    def model_for(self, unit_id: int) -> Optional[UnitModel]:
        state = self._units.get(unit_id)
        return state.model if state else None

    def samples_seen(self, unit_id: int) -> int:
        state = self._units.get(unit_id)
        return state.moments.count if state else 0

    def refreshes(self, unit_id: int) -> int:
        state = self._units.get(unit_id)
        return state.refreshes if state else 0

    def quarantines(self, unit_id: int) -> int:
        """Degenerate-variance refreshes skipped for one unit."""
        state = self._units.get(unit_id)
        return state.quarantines if state else 0

    def units(self) -> List[int]:
        return sorted(self._units)
