"""Parallel fleet evaluation engine: §IV-A scoring at fleet scale.

The paper's online evaluation is embarrassingly parallel across units
("the system can deal with one machine at a time") and its 939k
samples/s headline number is a *fleet* throughput.  This engine is the
integration layer that makes the reproduction's hot path behave the
same way:

* one cached :class:`~repro.core.online.OnlineEvaluator` per unit —
  the pre-bound fast path (reciprocal stds, whitening map, χ² and
  |z|-prefilter thresholds) is constructed once and reused across
  runs instead of re-deriving everything through a fresh
  :class:`~repro.core.fdr.FDRDetector` per call;
* per-unit scoring fanned out over
  :class:`~repro.sparklet.context.SparkletContext` executor threads
  (NumPy/SciPy release the GIL in the kernels that dominate), using a
  caller-supplied context or a transient one;
* results delivered in bounded *waves*, so a 100×1000-sensor fleet
  never needs every evaluation window in memory at once and the caller
  can overlap publishing one wave with scoring the next.

Scoring through the engine is flag-for-flag identical to the serial
``FDRDetector.detect`` reference path — the prefilter is exact and the
windows are deterministic per ``(seed, unit)`` — which the parity tests
and ``benchmarks/bench_pipeline_parallel.py`` both assert.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.raceaudit import assert_holds, audited_lock
from ..cluster.metrics import MetricsRegistry
from ..obs.telemetry import component_registry
from ..simdata.generator import FleetGenerator, UnitData
from ..sparklet.context import SparkletContext
from .fdr import AnomalyReport, FDRDetectorConfig
from .metrics import DetectionOutcome, evaluate_flags
from .model import UnitModel
from .online import OnlineEvaluator

__all__ = ["FleetEvaluationEngine", "UnitEvaluation"]


@dataclass
class UnitEvaluation:
    """One unit's scored evaluation window (engine fan-out result)."""

    unit_id: int
    window: UnitData
    report: AnomalyReport
    outcome: DetectionOutcome
    seconds: float = 0.0  # wall-clock scoring time (observability)


class FleetEvaluationEngine:
    """Fan-out scorer over cached per-unit online evaluators.

    Parameters
    ----------
    generator:
        The fleet dataset (deterministic per ``(seed, unit)``, so
        worker tasks regenerate their own windows race-free).
    models:
        Live mapping of trained unit models.  Shared by reference with
        the owning pipeline: retraining a unit is picked up on the next
        evaluation, and the cached evaluator for it is rebuilt.
    config:
        Detector configuration the evaluators are bound to.
    ctx:
        Optional sparklet context supplying the executor pool.  Without
        one, the engine spins up a transient thread-backed context when
        a run asks for ``parallelism > 1``.
    """

    def __init__(
        self,
        generator: FleetGenerator,
        models: Dict[int, UnitModel],
        config: Optional[FDRDetectorConfig] = None,
        ctx: Optional[SparkletContext] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.generator = generator
        self.models = models
        self.config = config if config is not None else FDRDetectorConfig()
        self.ctx = ctx
        self.metrics = metrics if metrics is not None else component_registry("engine")
        self._evaluators: Dict[int, Tuple[UnitModel, OnlineEvaluator]] = {}  # guarded-by: _lock
        self._lock = audited_lock("core.engine.evaluators")

    # ------------------------------------------------------------------
    # evaluator cache
    # ------------------------------------------------------------------
    def evaluator_for(self, unit_id: int) -> OnlineEvaluator:
        """The unit's cached evaluator (rebuilt if its model changed)."""
        try:
            model = self.models[unit_id]
        except KeyError:
            raise KeyError(
                f"unit {unit_id} has no trained model; train it first"
            ) from None
        with self._lock:
            return self._evaluator_locked(unit_id, model)

    def _evaluator_locked(self, unit_id: int, model: UnitModel) -> OnlineEvaluator:
        """Cache lookup/rebuild; caller holds ``_lock`` (worker threads
        hit the read path concurrently during fan-out)."""
        assert_holds(self._lock)
        cached = self._evaluators.get(unit_id)
        if cached is not None and cached[0] is model:
            return cached[1]
        evaluator = OnlineEvaluator(model, self.config)
        self._evaluators[unit_id] = (model, evaluator)
        return evaluator

    def invalidate(self, unit_id: Optional[int] = None) -> None:
        """Drop cached evaluators (one unit, or all when ``None``)."""
        with self._lock:
            if unit_id is None:
                self._evaluators.clear()
            else:
                self._evaluators.pop(unit_id, None)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def evaluate_unit(self, unit_id: int, n_eval: int = 600) -> UnitEvaluation:
        """Score one unit's evaluation window through the cached fast path."""
        t0 = time.perf_counter()
        window = self.generator.evaluation_window(unit_id, n_eval)
        report = self.evaluator_for(unit_id).report(window.values)
        outcome = evaluate_flags(report.flags, window.truth, unit_id)
        return UnitEvaluation(
            unit_id, window, report, outcome, seconds=time.perf_counter() - t0
        )

    def evaluate_fleet(
        self,
        unit_ids: Sequence[int],
        n_eval: int = 600,
        *,
        parallelism: Optional[int] = None,
        wave_size: Optional[int] = None,
    ) -> Iterator[List[UnitEvaluation]]:
        """Score the fleet in order, yielding bounded waves of results.

        ``parallelism=None`` uses the attached context's pool (or the
        CPU count when the engine owns its pool); ``parallelism=1``
        forces the inline serial path.  Results arrive wave by wave in
        ``unit_ids`` order regardless of executor interleaving.
        """
        units = list(unit_ids)
        if not units:
            return
        par = self._resolve_parallelism(parallelism)
        wave = wave_size if wave_size is not None else max(4 * par, 8)
        if wave < 1:
            raise ValueError("wave_size must be >= 1")
        # Warm the evaluator cache up front in the driver thread so the
        # fan-out hits the locked fast path without rebuild contention.
        for unit_id in units:
            self.evaluator_for(unit_id)

        ctx, transient = self._executor_ctx(par)
        try:
            for lo in range(0, len(units), wave):
                chunk = units[lo : lo + wave]
                if ctx is None:
                    results = [self.evaluate_unit(u, n_eval) for u in chunk]
                else:
                    results = ctx.map_tasks(
                        lambda u: self.evaluate_unit(u, n_eval), chunk
                    )
                # Fold metrics in the driver thread only: Counter.inc is
                # not atomic, and workers already carry their timings on
                # the evaluation records.
                self._note_wave(results)
                yield results
        finally:
            if transient and ctx is not None:
                ctx.stop()

    # ------------------------------------------------------------------
    def _note_wave(self, wave: List[UnitEvaluation]) -> None:
        self.metrics.counter("engine.units_scored").inc(len(wave))
        hist = self.metrics.histogram("engine.unit_eval_seconds")
        for ev in wave:
            hist.observe(ev.seconds)
            self.metrics.counter("engine.samples_scored").inc(ev.window.values.shape[0])

    # ------------------------------------------------------------------
    def _resolve_parallelism(self, parallelism: Optional[int]) -> int:
        if parallelism is not None:
            if parallelism < 1:
                raise ValueError("parallelism must be >= 1")
            return parallelism
        if self.ctx is not None:
            return self.ctx.parallelism
        return os.cpu_count() or 1

    def _executor_ctx(
        self, parallelism: int
    ) -> Tuple[Optional[SparkletContext], bool]:
        """The context to fan out on: attached, transient, or None (inline)."""
        if self.ctx is not None:
            return self.ctx, False
        if parallelism <= 1:
            return None, False
        return SparkletContext(parallelism, executor="threads"), True
