"""Multiple-testing procedures: the heart of the paper's §IV.

With ``m`` sensors tested at per-test level α, the probability of at
least one false alarm is ``1 − (1 − α)^m`` — 40% already at m = 10
(the paper's worked example).  The procedures here trade off how that
multiplicity is controlled:

* ``uncorrected`` — no control; the baseline whose false alarms explode;
* ``bonferroni`` — FWER control at α by testing each at α/m (Dunn 1961),
  valid but "overly conservative ... much less detection power";
* ``holm`` — uniformly more powerful step-down FWER control;
* ``benjamini_hochberg`` — the FDR procedure the paper adopts
  (Benjamini & Hochberg 1995): controls E[FDP] ≤ q under independence
  / PRDS;
* ``benjamini_yekutieli`` — BH with the harmonic-sum correction, valid
  under arbitrary dependence (Benjamini & Yekutieli 2001) — relevant
  here because sensor faults are *correlated*.

All procedures accept p-value arrays of shape ``(..., m)`` and apply
the correction independently along the last axis (one family per time
step), returning boolean rejection masks of the same shape.
Implemented from scratch — this repository carries no statsmodels
dependency — and cross-checked in the test-suite against brute-force
reference implementations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uncorrected",
    "bonferroni",
    "holm",
    "benjamini_hochberg",
    "benjamini_yekutieli",
    "step_up_sparse",
    "adaptive_benjamini_hochberg",
    "apply_procedure",
    "PROCEDURES",
    "family_wise_error_probability",
    "bh_threshold",
]


def _check(pvalues: np.ndarray, level: float) -> np.ndarray:
    p = np.asarray(pvalues, dtype=np.float64)
    if p.size == 0:
        return p
    lo, hi = p.min(), p.max()
    # NaN fails both comparisons, so non-finite values are caught too.
    if not (lo >= 0.0 and hi <= 1.0):
        raise ValueError("p-values must lie in [0, 1]")
    if not 0.0 < level < 1.0:
        raise ValueError("significance level must be in (0, 1)")
    return p


def uncorrected(pvalues: np.ndarray, alpha: float = 0.05) -> np.ndarray:
    """Reject every test with p ≤ α.  No multiplicity control."""
    p = _check(pvalues, alpha)
    return p <= alpha


def bonferroni(pvalues: np.ndarray, alpha: float = 0.05) -> np.ndarray:
    """FWER ≤ α by rejecting p ≤ α/m."""
    p = _check(pvalues, alpha)
    m = p.shape[-1]
    if m == 0:
        return np.zeros_like(p, dtype=bool)
    return p <= alpha / m


def holm(pvalues: np.ndarray, alpha: float = 0.05) -> np.ndarray:
    """Holm's step-down: FWER ≤ α, uniformly more powerful than Bonferroni.

    Sort p-values ascending; find the first index ``i`` with
    ``p_(i) > α/(m − i)``; reject everything before it.
    """
    p = _check(pvalues, alpha)
    m = p.shape[-1]
    if m == 0:
        return np.zeros_like(p, dtype=bool)
    order = np.argsort(p, axis=-1)
    sorted_p = np.take_along_axis(p, order, axis=-1)
    thresholds = alpha / (m - np.arange(m))
    fails = sorted_p > thresholds
    # Index of the first failure along the last axis; if none fail, m.
    first_fail = np.where(fails.any(axis=-1), fails.argmax(axis=-1), m)
    ranks = np.empty_like(order)
    np.put_along_axis(ranks, order, np.broadcast_to(np.arange(m), p.shape), axis=-1)
    return ranks < first_fail[..., None]


def benjamini_hochberg(pvalues: np.ndarray, q: float = 0.05) -> np.ndarray:
    """BH step-up: FDR ≤ q (independent / PRDS p-values).

    Reject the ``k`` smallest p-values where ``k`` is the largest index
    with ``p_(k) ≤ k·q/m``.
    """
    return _step_up(pvalues, q, dependence_correction=False)


def benjamini_yekutieli(pvalues: np.ndarray, q: float = 0.05) -> np.ndarray:
    """BY step-up: FDR ≤ q under arbitrary dependence.

    Identical to BH with the effective level divided by the harmonic
    sum ``c(m) = Σ 1/i`` — the price of dependence-robustness.
    """
    return _step_up(pvalues, q, dependence_correction=True)


def _step_up(pvalues: np.ndarray, q: float, dependence_correction: bool) -> np.ndarray:
    p = _check(pvalues, q)
    m = p.shape[-1]
    if m == 0:
        return np.zeros_like(p, dtype=bool)
    effective_q = q
    if dependence_correction:
        effective_q = q / np.sum(1.0 / np.arange(1, m + 1))
    order = np.argsort(p, axis=-1)
    sorted_p = np.take_along_axis(p, order, axis=-1)
    thresholds = effective_q * np.arange(1, m + 1) / m
    passing = sorted_p <= thresholds
    # Largest passing index per family (step-up): k = last True + 1.
    reversed_pass = passing[..., ::-1]
    k = np.where(
        passing.any(axis=-1), m - reversed_pass.argmax(axis=-1), 0
    )
    ranks = np.empty_like(order)
    np.put_along_axis(ranks, order, np.broadcast_to(np.arange(m), p.shape), axis=-1)
    return ranks < k[..., None]


def step_up_sparse(
    pvalues: np.ndarray, q: float = 0.05, dependence_correction: bool = False
) -> np.ndarray:
    """BH/BY step-up evaluated only on the p-values that could reject.

    Exactly equivalent to :func:`benjamini_hochberg` /
    :func:`benjamini_yekutieli` (same rejection sets, same float
    comparisons against the same threshold ladder) but built for the
    online scoring hot path: every rejected p-value must satisfy
    ``p ≤ q·k/m ≤ q_eff``, so only entries at or below the top rung
    participate.  Those are bucketed into the smallest rank whose
    threshold they meet (one ``searchsorted`` against the ladder), the
    per-family pass counts come from a histogram instead of a sort, and
    the step-up index ``k`` is read off the counts' running sum —
    truncated at the largest per-family candidate count, since ``k``
    can never exceed it.  No ``O(T·m·log m)`` argsort, no dense
    rank scatter.
    """
    p = _check(pvalues, q)
    m = p.shape[-1]
    if m == 0:
        return np.zeros_like(p, dtype=bool)
    effective_q = q
    if dependence_correction:
        effective_q = q / np.sum(1.0 / np.arange(1, m + 1))
    flat = p.reshape(-1, m)
    n_fam = flat.shape[0]
    thresholds = effective_q * np.arange(1, m + 1) / m
    flags = np.zeros(flat.shape, dtype=bool)
    rows, cols = np.nonzero(flat <= thresholds[-1])
    if rows.size:
        vals = flat[rows, cols]
        # k per family is bounded by its candidate count; the histogram
        # only needs that many rungs.
        top = int(np.bincount(rows, minlength=n_fam).max())
        # Smallest 1-based rank whose threshold this p-value meets.
        bucket = np.searchsorted(thresholds, vals, side="left") + 1
        keep = bucket <= top
        counts = np.bincount(
            rows[keep] * (top + 1) + bucket[keep], minlength=n_fam * (top + 1)
        ).reshape(n_fam, top + 1)
        passed = np.cumsum(counts, axis=1)[:, 1:] >= np.arange(1, top + 1)
        k = np.where(passed.any(axis=1), top - passed[:, ::-1].argmax(axis=1), 0)
        # Everything at or below the k-th rung's threshold is rejected
        # (p_(k) ≤ q·k/m, and no non-rejected value can sit between).
        family_cut = np.where(k > 0, thresholds[np.maximum(k, 1) - 1], -1.0)
        flags[rows, cols] = vals <= family_cut[rows]
    return flags.reshape(p.shape)


def adaptive_benjamini_hochberg(pvalues: np.ndarray, q: float = 0.05) -> np.ndarray:
    """Two-stage adaptive BH (Benjamini, Krieger & Yekutieli 2006).

    Stage 1 runs BH at level ``q' = q/(1+q)`` and uses its rejection
    count to estimate the number of true nulls ``m₀ = m − r₁``; stage 2
    reruns BH at ``q'·m/m₀``.  When many sensors are genuinely faulted
    (small m₀), the effective level rises and power improves over plain
    BH while FDR stays ≤ q.  Applied independently along the last axis.
    """
    p = _check(pvalues, q)
    m = p.shape[-1]
    if m == 0:
        return np.zeros_like(p, dtype=bool)
    q_prime = q / (1.0 + q)
    stage1 = _step_up(p, q_prime, dependence_correction=False)
    r1 = stage1.sum(axis=-1)
    m0 = m - r1
    flat_p = p.reshape(-1, m)
    flat_m0 = np.asarray(m0).reshape(-1)
    flat_r1 = np.asarray(r1).reshape(-1)
    out = np.zeros_like(flat_p, dtype=bool)
    for i in range(flat_p.shape[0]):
        if flat_r1[i] == 0:
            continue  # stage 1 rejected nothing; adaptive BH rejects nothing
        if flat_m0[i] == 0:
            out[i] = True  # everything rejected at stage 1
            continue
        level = q_prime * m / flat_m0[i]
        if level >= 1.0:
            level = 1.0 - 1e-12
        out[i] = _step_up(flat_p[i], float(level), dependence_correction=False)
    return out.reshape(p.shape)


def bh_threshold(pvalues: np.ndarray, q: float = 0.05) -> float:
    """The data-dependent BH rejection threshold for a single family.

    Useful diagnostically: every p ≤ the returned value is rejected.
    Returns 0.0 when nothing is rejected.
    """
    p = _check(pvalues, q).ravel()
    m = p.size
    if m == 0:
        return 0.0
    sorted_p = np.sort(p)
    thresholds = q * np.arange(1, m + 1) / m
    passing = np.flatnonzero(sorted_p <= thresholds)
    if passing.size == 0:
        return 0.0
    return float(sorted_p[passing[-1]])


PROCEDURES = {
    "none": uncorrected,
    "bonferroni": bonferroni,
    "holm": holm,
    "bh": benjamini_hochberg,
    "by": benjamini_yekutieli,
    "adaptive-bh": adaptive_benjamini_hochberg,
}


def apply_procedure(name: str, pvalues: np.ndarray, level: float = 0.05) -> np.ndarray:
    """Dispatch by procedure name (see :data:`PROCEDURES`)."""
    try:
        proc = PROCEDURES[name]
    except KeyError:
        raise ValueError(f"unknown procedure {name!r}; choose from {sorted(PROCEDURES)}") from None
    return proc(pvalues, level)


def family_wise_error_probability(alpha: float, m: int) -> float:
    """``1 − (1 − α)^m``: P(≥1 false alarm) over m independent tests.

    The paper's motivating formula: 5% at m=1 grows to 40% at m=10.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    if m < 0:
        raise ValueError("m must be non-negative")
    return 1.0 - (1.0 - alpha) ** m
