"""Offline training as a sparklet batch job.

§IV-A: "Our implementation of the FDR algorithm is composed of two
parts — an offline training component and an online evaluation
component.  Offline training occurs in Spark, running in batch mode.
... model estimation of each sensor on each unit begins by calculating
the covariance matrix of each data set.  Singular Value Decomposition
is then performed on each covariance matrix ... Results from the
decomposition are cached to HDFS."

The job parallelises *across units* (each unit's model is independent)
and, inside a unit, computes the covariance via the distributed
:class:`~repro.sparklet.linalg.RowMatrix` pathway — the same two-level
decomposition the paper's Spark/MLlib job uses.  Models are persisted
to the :class:`~repro.sparklet.storage.BlockStore` (the HDFS cache
stand-in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..simdata.generator import FleetGenerator
from ..sparklet.context import SparkletContext
from ..sparklet.linalg import RowMatrix
from ..sparklet.storage import BlockStore
from .fdr import FDRDetector, FDRDetectorConfig
from .model import UnitModel, load_model, save_model

__all__ = ["TrainingResult", "OfflineTrainer", "train_unit_distributed"]


@dataclass
class TrainingResult:
    """Summary of one training job.

    ``keys`` lists the block-store keys of persisted model artifacts;
    the pipeline's local (store-less) training path synthesizes a
    result with no keys.  Iterating yields the trained unit ids — a
    deprecation shim for callers of the old list-of-units return of
    ``AnomalyPipeline.train``.
    """

    unit_ids: List[int]
    keys: List[str]
    n_train: int

    @property
    def n_units(self) -> int:
        return len(self.unit_ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.unit_ids)

    def __len__(self) -> int:
        return len(self.unit_ids)


def train_unit_distributed(
    ctx: SparkletContext,
    values: np.ndarray,
    unit_id: int,
    config: Optional[FDRDetectorConfig] = None,
) -> UnitModel:
    """Train one unit with the covariance computed distributively.

    Functionally identical to :meth:`FDRDetector.fit` but the Gram
    matrix is assembled from per-partition BLAS calls on the sparklet
    executors — the path that scales to sensor counts and training
    windows that exceed one task's memory.
    """
    cfg = config if config is not None else FDRDetectorConfig()
    x = np.asarray(values, dtype=np.float64)
    if x.ndim != 2 or x.shape[0] < 2:
        raise ValueError("training data must be (n >= 2, p)")
    matrix = RowMatrix.from_numpy(ctx, x)
    mean = matrix.column_means()
    n = matrix.num_rows()
    # Standardise via the distributed pass' own moments.
    gram_diag = np.diag(matrix.gramian())
    var = (gram_diag - n * mean**2) / (n - 1)
    if np.any(var <= 0):
        raise ValueError("every sensor needs non-zero training variance")
    std = np.sqrt(var)
    standardized = matrix.blocks.map(lambda b: (b - mean) / std)
    zmat = RowMatrix(standardized, num_cols=x.shape[1])
    eigvals, eigvecs = zmat.covariance_eigen()
    detector = FDRDetector(cfg)
    k = detector._select_k(eigvals)
    eigvals, eigvecs = eigvals[:k], eigvecs[:, :k]
    whitening = eigvecs / np.sqrt(np.maximum(eigvals, 1e-12))
    return UnitModel(
        unit_id=unit_id,
        mean=mean,
        std=std,
        eigenvalues=eigvals,
        components=eigvecs,
        whitening=whitening,
        n_train=n,
    )


class OfflineTrainer:
    """Fleet-scale batch trainer.

    Parameters
    ----------
    ctx:
        Sparklet context supplying the executor pool.
    store:
        Block store for trained model artifacts.
    config:
        Detector configuration (component selection etc.).
    """

    def __init__(
        self,
        ctx: SparkletContext,
        store: BlockStore,
        config: Optional[FDRDetectorConfig] = None,
    ) -> None:
        self.ctx = ctx
        self.store = store
        self.config = config if config is not None else FDRDetectorConfig()

    def train_fleet(
        self,
        generator: FleetGenerator,
        unit_ids: Optional[Sequence[int]] = None,
        n_train: int = 600,
    ) -> TrainingResult:
        """Train and persist models for the given units (all by default).

        One task per unit: generate the fault-free training window, fit,
        save.  Unit tasks run concurrently on the executor pool; each
        task is itself vectorised NumPy, so threads give real speedup.
        """
        units = list(unit_ids) if unit_ids is not None else list(generator.units())
        config = self.config
        store = self.store

        def fit_and_save(unit_id: int) -> str:
            window = generator.training_window(unit_id, n_train)
            model = FDRDetector(config).fit(window.values, unit_id=unit_id)
            return save_model(store, model)

        keys = (
            self.ctx.parallelize(units, min(len(units), self.ctx.parallelism * 4))
            .map(fit_and_save)
            .collect()
        )
        return TrainingResult(unit_ids=units, keys=keys, n_train=n_train)

    def load_models(self, unit_ids: Sequence[int]) -> Dict[int, UnitModel]:
        """Fetch persisted models (missing units are silently skipped)."""
        out: Dict[int, UnitModel] = {}
        for unit_id in unit_ids:
            model = load_model(self.store, unit_id)
            if model is not None:
                out[unit_id] = model
        return out
