"""Test statistics and p-values for sensor mean-shift detection.

"From a statistical standpoint, anomaly detection amounts to performing
a hypothesis test on sample observations to detect possible shifts in
the mean of the sampling distribution." (§IV)

Under H₀ a standardised sensor reading is N(0, 1); evidence against H₀
is measured by two-sided normal p-values.  Detection power for small
persistent shifts comes from testing *window means*: the mean of ``w``
consecutive samples has std ``σ/√w``, so the standardised window
statistic is ``√w (x̄ − μ)/σ``.

All functions are vectorised over arbitrary leading axes; the sensor
axis is the last one.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "zscores",
    "window_mean_zscores",
    "two_sided_pvalues",
    "one_sided_pvalues",
    "t2_statistic",
    "t2_pvalues",
]


def zscores(values: np.ndarray, mean: np.ndarray, std: np.ndarray) -> np.ndarray:
    """Per-observation standardised scores ``(x − μ)/σ``.

    ``mean``/``std`` broadcast against the last axis of ``values``.
    Degenerate sensors (σ ≤ 0) are rejected rather than silently
    producing infinities.
    """
    std = np.asarray(std, dtype=np.float64)
    if np.any(std <= 0):
        raise ValueError("all sensor stds must be positive")
    return (np.asarray(values, dtype=np.float64) - mean) / std


def window_mean_zscores(
    values: np.ndarray, mean: np.ndarray, std: np.ndarray, window: int
) -> np.ndarray:
    """Standardised trailing-window means, one row per time step.

    ``values`` is ``(T, p)``; the output row ``t`` tests the mean of
    samples ``max(0, t-window+1) .. t`` (shorter at the start, with the
    correct √n scaling, so early rows are valid tests too).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    x = np.asarray(values, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("values must be (T, p)")
    z = zscores(x, mean, std)
    if window == 1:
        return z
    csum = np.cumsum(z, axis=0)
    t_idx = np.arange(x.shape[0])
    counts = np.minimum(t_idx + 1, window).astype(np.float64)
    lagged = np.zeros_like(csum)
    lagged[window:] = csum[:-window]
    window_sums = csum - lagged
    return window_sums / np.sqrt(counts)[:, None]


def two_sided_pvalues(z: np.ndarray) -> np.ndarray:
    """Two-sided normal p-values: ``2·Φ(−|z|)``."""
    return 2.0 * stats.norm.sf(np.abs(z))


def one_sided_pvalues(z: np.ndarray) -> np.ndarray:
    """Upper-tail p-values ``Φ(−z)`` (for strictly increasing degradation)."""
    return stats.norm.sf(z)


def t2_statistic(whitened: np.ndarray) -> np.ndarray:
    """Hotelling-style T² over whitened scores (sum of squares, last axis).

    With ``k`` whitened components each N(0,1) under H₀, T² ~ χ²(k) —
    the classical multivariate SPC statistic the covariance/SVD training
    enables.
    """
    w = np.asarray(whitened, dtype=np.float64)
    return np.sum(w * w, axis=-1)


def t2_pvalues(t2: np.ndarray, dof: int) -> np.ndarray:
    """χ² upper-tail p-values for T² statistics."""
    if dof < 1:
        raise ValueError("dof must be >= 1")
    return stats.chi2.sf(t2, dof)
