"""Statistical-process-control baselines.

The paper situates its work against classical SPC ("a multitude of
detection algorithms ... applied in the manufacturing domain for what
has become known as Statistical Process Control").  These are the
standard univariate charts, applied independently per sensor — the
comparison points for the FDR detector in E4:

* :class:`ShewhartChart` — fixed ±Lσ limits on individual samples;
* :class:`CusumChart` — tabular CUSUM with reference value k and
  decision interval h (fast for small persistent shifts);
* :class:`EwmaChart` — exponentially weighted moving average with
  variance-corrected limits.

Each chart's ``flags(model, values)`` returns a ``(T, p)`` boolean
mask.  Recursions run over time with the sensor axis vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from scipy import stats

from .model import UnitModel

__all__ = ["ControlChart", "ShewhartChart", "CusumChart", "EwmaChart", "MewmaChart"]


class ControlChart(Protocol):
    """Common interface of the SPC baselines."""

    def flags(self, model: UnitModel, values: np.ndarray) -> np.ndarray:
        """Boolean (T, p) out-of-control mask."""
        ...  # pragma: no cover


def _standardise(model: UnitModel, values: np.ndarray) -> np.ndarray:
    x = np.asarray(values, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != model.n_sensors:
        raise ValueError(f"values must be (T, {model.n_sensors}); got {x.shape}")
    return (x - model.mean) / model.std


@dataclass(frozen=True)
class ShewhartChart:
    """Individuals chart: flag |z| > L (classically L = 3).

    Per-sensor false-alarm rate is 2Φ(−L) ≈ 0.27% at L = 3 — which
    across 1000 sensors still produces ~2.7 false alarms per second,
    the exact multiplicity pathology of §IV.
    """

    limit: float = 3.0

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ValueError("limit must be positive")

    def flags(self, model: UnitModel, values: np.ndarray) -> np.ndarray:
        z = _standardise(model, values)
        return np.abs(z) > self.limit


@dataclass(frozen=True)
class CusumChart:
    """Two-sided tabular CUSUM on standardised data.

    ``S⁺_t = max(0, S⁺_{t−1} + z_t − k)``, flag when ``S⁺ > h`` (and
    symmetrically for the lower side).  Defaults (k = 0.5, h = 5) are
    the textbook tuning for detecting 1σ mean shifts.
    """

    k: float = 0.5
    h: float = 5.0

    def __post_init__(self) -> None:
        if self.k < 0 or self.h <= 0:
            raise ValueError("k must be >= 0 and h > 0")

    def flags(self, model: UnitModel, values: np.ndarray) -> np.ndarray:
        z = _standardise(model, values)
        n_t, n_p = z.shape
        upper = np.zeros(n_p)
        lower = np.zeros(n_p)
        out = np.zeros((n_t, n_p), dtype=bool)
        for t in range(n_t):
            upper = np.maximum(0.0, upper + z[t] - self.k)
            lower = np.maximum(0.0, lower - z[t] - self.k)
            out[t] = (upper > self.h) | (lower > self.h)
        return out

    def statistics(self, model: UnitModel, values: np.ndarray) -> np.ndarray:
        """The running max(S⁺, S⁻) path, for plotting/drill-down."""
        z = _standardise(model, values)
        n_t, n_p = z.shape
        upper = np.zeros(n_p)
        lower = np.zeros(n_p)
        out = np.zeros((n_t, n_p))
        for t in range(n_t):
            upper = np.maximum(0.0, upper + z[t] - self.k)
            lower = np.maximum(0.0, lower - z[t] - self.k)
            out[t] = np.maximum(upper, lower)
        return out


@dataclass(frozen=True)
class EwmaChart:
    """EWMA chart: ``E_t = λ z_t + (1−λ) E_{t−1}``.

    Flags when |E_t| exceeds ``L·σ_E(t)`` with the exact time-dependent
    standard deviation ``σ_E(t) = √(λ/(2−λ)·(1−(1−λ)^{2t}))``, so the
    chart is properly calibrated from the first sample.
    """

    lam: float = 0.2
    limit: float = 2.7

    def __post_init__(self) -> None:
        if not 0.0 < self.lam <= 1.0:
            raise ValueError("lam must be in (0, 1]")
        if self.limit <= 0:
            raise ValueError("limit must be positive")

    def flags(self, model: UnitModel, values: np.ndarray) -> np.ndarray:
        z = _standardise(model, values)
        n_t, n_p = z.shape
        ewma = np.zeros(n_p)
        out = np.zeros((n_t, n_p), dtype=bool)
        lam = self.lam
        base_var = lam / (2.0 - lam)
        decay = (1.0 - lam) ** 2
        var_factor = 1.0
        for t in range(n_t):
            ewma = lam * z[t] + (1.0 - lam) * ewma
            var_factor *= decay
            sigma = np.sqrt(base_var * (1.0 - var_factor))
            out[t] = np.abs(ewma) > self.limit * sigma
        return out


@dataclass(frozen=True)
class MewmaChart:
    """Multivariate EWMA (Lowry et al. 1992) over whitened scores.

    The classical multivariate companion to T²: smooth the whitened
    observation vector, ``Z_t = λ w_t + (1−λ) Z_{t−1}``, and alarm on
    the quadratic form ``Q_t = Z_tᵀ Σ_Z(t)⁻¹ Z_t``.  Because the
    model's whitening map makes ``w_t ~ N(0, I_k)`` under H₀,
    ``Σ_Z(t) = (λ/(2−λ))(1 − (1−λ)^{2t}) · I_k`` exactly, so ``Q_t`` is
    χ²(k)-calibrated from the very first sample and the control limit
    is ``χ²_k(α)``.

    Unlike the per-sensor charts this is a *unit-level* detector: it
    returns one alarm per time step, sensitive to small shifts that are
    coherent across sensors — the regime where per-sensor charts (and
    even instantaneous T²) lack power.
    """

    lam: float = 0.1
    alpha: float = 0.001

    def __post_init__(self) -> None:
        if not 0.0 < self.lam <= 1.0:
            raise ValueError("lam must be in (0, 1]")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")

    def statistics(self, model: UnitModel, values: np.ndarray) -> np.ndarray:
        """The ``Q_t`` path, shape ``(T,)``."""
        if model.n_components < 1:
            raise ValueError("model retains no components; cannot run MEWMA")
        z = _standardise(model, values)
        w = z @ model.whitening  # (T, k), N(0, I_k) under H0
        n_t, k = w.shape
        lam = self.lam
        base_var = lam / (2.0 - lam)
        decay = (1.0 - lam) ** 2
        smoothed = np.zeros(k)
        var_factor = 1.0
        out = np.zeros(n_t)
        for t in range(n_t):
            smoothed = lam * w[t] + (1.0 - lam) * smoothed
            var_factor *= decay
            sigma2 = base_var * (1.0 - var_factor)
            out[t] = float(smoothed @ smoothed) / sigma2
        return out

    def flags(self, model: UnitModel, values: np.ndarray) -> np.ndarray:
        """Unit-level alarm mask, shape ``(T,)``."""
        limit = float(stats.chi2.isf(self.alpha, model.n_components))
        return self.statistics(model, values) > limit
