"""Online evaluation: the high-throughput scoring path.

§IV-A: "Evaluation is thereby relatively fast requiring a single
matrix multiplication per iteration ... we can evaluate for anomalies
at a rate of 939,000 sensor samples per second on average."

:class:`OnlineEvaluator` pre-binds everything derivable from the model
(means, inverse stds, whitening map, χ² threshold, normal-quantile
thresholds) so the steady-state cost per batch is: one subtraction,
one multiply by the reciprocal stds, the window-mean update, a
|z|-threshold comparison, and — only for time steps that survive the
cheap pre-filter — the exact BH step-up.  The E5 benchmark measures
this path in real wall-clock samples/second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np
from scipy import stats

from .fdr import AnomalyReport, FDRDetectorConfig
from .model import UnitModel
from .multiple_testing import apply_procedure
from .hypothesis import two_sided_pvalues

__all__ = ["OnlineEvaluator", "StreamStats"]


@dataclass
class StreamStats:
    """Running totals for a streaming evaluation session."""

    samples: int = 0
    batches: int = 0
    discoveries: int = 0
    unit_alarms: int = 0


class OnlineEvaluator:
    """Vectorised scorer bound to one trained :class:`UnitModel`."""

    def __init__(self, model: UnitModel, config: Optional[FDRDetectorConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else FDRDetectorConfig()
        self._inv_std = 1.0 / model.std
        self._mean = model.mean
        self._whitening = model.whitening if self.config.use_t2 else None
        # Exact skip condition: any BH rejection requires p_(k) <= qk/m <= q,
        # so a row whose max |z| is below the |z| at p = q cannot reject
        # anything.  (A tighter per-rung prefilter would be unsound: the
        # step-up can fire at rung k > 1 even when rung 1 fails.)
        self._z_prefilter = float(stats.norm.isf(self.config.q / 2.0))
        self._t2_threshold = (
            float(stats.chi2.isf(self.config.unit_alarm_alpha, model.n_components))
            if self.config.use_t2 and model.n_components > 0
            else np.inf
        )
        self._carry: Optional[np.ndarray] = None  # window tail across batches
        self.stats = StreamStats()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget cross-batch window state (new stream)."""
        self._carry = None
        self.stats = StreamStats()

    def evaluate(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Score one batch ``(T, p)``.

        Returns ``(flags, unit_alarm)`` — the per-sensor FDR-controlled
        mask and the T² unit alarm.  Window state carries across calls,
        so feeding a long window in chunks matches one-shot evaluation.
        """
        x = np.asarray(values, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.model.n_sensors:
            raise ValueError(f"values must be (T, {self.model.n_sensors})")
        z_inst = (x - self._mean) * self._inv_std
        z_win = self._windowed(z_inst)

        flags = np.zeros(z_win.shape, dtype=bool)
        # Cheap prefilter, exact BH only where it can possibly fire.
        candidate_rows = np.flatnonzero(
            np.max(np.abs(z_win), axis=1) >= self._z_prefilter
        )
        if candidate_rows.size:
            pvals = two_sided_pvalues(z_win[candidate_rows])
            flags[candidate_rows] = apply_procedure(
                self.config.procedure, pvals, self.config.q
            )

        if self._whitening is not None and self.model.n_components > 0:
            whitened = z_inst @ self._whitening
            t2 = np.einsum("ij,ij->i", whitened, whitened)
            unit_alarm = t2 >= self._t2_threshold
        else:
            unit_alarm = np.zeros(x.shape[0], dtype=bool)

        self.stats.samples += x.size
        self.stats.batches += 1
        self.stats.discoveries += int(flags.sum())
        self.stats.unit_alarms += int(unit_alarm.sum())
        return flags, unit_alarm

    def evaluate_stream(
        self, batches: Iterator[np.ndarray]
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Evaluate a stream of batches, yielding per-batch results."""
        for batch in batches:
            yield self.evaluate(batch)

    # ------------------------------------------------------------------
    def _windowed(self, z: np.ndarray) -> np.ndarray:
        """Trailing-window mean z-scores with cross-batch carry."""
        w = self.config.window
        if w == 1:
            return z
        carry = self._carry
        n_carry = 0 if carry is None else carry.shape[0]
        stacked = z if carry is None else np.vstack([carry, z])
        csum = np.cumsum(stacked, axis=0)
        t_idx = np.arange(stacked.shape[0])
        counts = np.minimum(t_idx + 1, w).astype(np.float64)
        lagged = np.zeros_like(csum)
        lagged[w:] = csum[:-w]
        win = (csum - lagged) / np.sqrt(counts)[:, None]
        # Keep the last (w-1) standardised rows for the next batch.
        tail = stacked[-(w - 1):] if stacked.shape[0] >= w - 1 else stacked
        self._carry = tail.copy()
        return win[n_carry:]

    def throughput_samples_per_second(self, elapsed_seconds: float) -> float:
        """Convenience: sensor samples evaluated per wall-clock second."""
        if elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")
        return self.stats.samples / elapsed_seconds
