"""Online evaluation: the high-throughput scoring path.

§IV-A: "Evaluation is thereby relatively fast requiring a single
matrix multiplication per iteration ... we can evaluate for anomalies
at a rate of 939,000 sensor samples per second on average."

:class:`OnlineEvaluator` pre-binds everything derivable from the model
(means, inverse stds, whitening map, χ² threshold, normal-quantile
thresholds) so the steady-state cost per batch is: one subtraction,
one multiply by the reciprocal stds, the window-mean update, a
|z|-threshold comparison, and — only for time steps that survive the
cheap pre-filter — the exact BH step-up.  The E5 benchmark measures
this path in real wall-clock samples/second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np
from scipy import special, stats

from .fdr import AnomalyReport, FDRDetectorConfig
from .model import UnitModel
from .multiple_testing import apply_procedure, step_up_sparse

__all__ = ["OnlineEvaluator", "StreamStats"]


def _two_sided_pvalues_fast(z: np.ndarray) -> np.ndarray:
    """``2·Φ(−|z|)`` via ``scipy.special.ndtr`` directly.

    Bit-identical to :func:`~repro.core.hypothesis.two_sided_pvalues`
    (``stats.norm.sf`` reduces to ``ndtr(-x)``) but skips the
    distribution-infrastructure argument plumbing and reuses one buffer
    for the whole chain, so the hot path allocates a single array.
    """
    buf = np.abs(z)
    np.negative(buf, out=buf)
    special.ndtr(buf, out=buf)
    buf *= 2.0
    return buf


@dataclass
class StreamStats:
    """Running totals for a streaming evaluation session."""

    samples: int = 0
    batches: int = 0
    discoveries: int = 0
    unit_alarms: int = 0


class OnlineEvaluator:
    """Vectorised scorer bound to one trained :class:`UnitModel`."""

    def __init__(self, model: UnitModel, config: Optional[FDRDetectorConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else FDRDetectorConfig()
        self._inv_std = 1.0 / model.std
        self._mean = model.mean
        self._whitening = model.whitening if self.config.use_t2 else None
        # Exact skip condition: any BH rejection requires p_(k) <= qk/m <= q,
        # so a row whose max |z| is below the |z| at p = q cannot reject
        # anything.  (A tighter per-rung prefilter would be unsound: the
        # step-up can fire at rung k > 1 even when rung 1 fails.)
        self._z_prefilter = float(stats.norm.isf(self.config.q / 2.0))
        self._t2_threshold = (
            float(stats.chi2.isf(self.config.unit_alarm_alpha, model.n_components))
            if self.config.use_t2 and model.n_components > 0
            else np.inf
        )
        self._carry: Optional[np.ndarray] = None  # window tail across batches
        self.stats = StreamStats()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget cross-batch window state (new stream)."""
        self._carry = None
        self.stats = StreamStats()

    def evaluate(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Score one batch ``(T, p)``.

        Returns ``(flags, unit_alarm)`` — the per-sensor FDR-controlled
        mask and the T² unit alarm.  Window state carries across calls,
        so feeding a long window in chunks matches one-shot evaluation.
        """
        flags, unit_alarm, _ = self.evaluate_scored(values)
        return flags, unit_alarm

    def evaluate_scored(
        self, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`evaluate` plus the windowed z-scores it flagged on.

        Identical state/carry semantics and identical flags; the third
        element is the ``(T, p)`` windowed z-score matrix, which the
        streaming alerting path uses for severity scoring without a
        second standardisation pass.
        """
        x = np.asarray(values, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.model.n_sensors:
            raise ValueError(f"values must be (T, {self.model.n_sensors})")
        z_inst = (x - self._mean) * self._inv_std
        z_win = self._windowed(z_inst)

        flags = np.zeros(z_win.shape, dtype=bool)
        # Cheap prefilter, exact testing only where it can possibly fire.
        candidate_rows = np.flatnonzero(
            np.max(np.abs(z_win), axis=1) >= self._z_prefilter
        )
        if candidate_rows.size:
            pvals = _two_sided_pvalues_fast(z_win[candidate_rows])
            flags[candidate_rows] = self._flag_pvalues(pvals)

        t2, unit_alarm = self._t2_channel(z_inst)

        self.stats.samples += x.size
        self.stats.batches += 1
        self.stats.discoveries += int(flags.sum())
        self.stats.unit_alarms += int(unit_alarm.sum())
        return flags, unit_alarm, z_win

    def report(self, values: np.ndarray) -> AnomalyReport:
        """Score one full window into an :class:`AnomalyReport`.

        One-shot semantics: cross-batch window state is reset first, so
        the result matches :meth:`FDRDetector.detect` on the same model
        and window — flags, p-values, z-scores, T² and unit alarm — but
        through the pre-bound fast path (p-values in one vectorised pass,
        the BH step-up only on rows that survive the exact prefilter).
        The fleet evaluation engine calls this per unit.
        """
        self._carry = None
        x = np.asarray(values, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.model.n_sensors:
            raise ValueError(f"values must be (T, {self.model.n_sensors})")
        z_inst = x - self._mean
        z_inst *= self._inv_std
        z_win = self._windowed(z_inst)
        pvalues = _two_sided_pvalues_fast(z_win)
        flags = self._flag_pvalues(pvalues)
        t2, unit_alarm = self._t2_channel(z_inst)

        self.stats.samples += x.size
        self.stats.batches += 1
        self.stats.discoveries += int(flags.sum())
        self.stats.unit_alarms += int(unit_alarm.sum())
        return AnomalyReport(
            unit_id=self.model.unit_id,
            flags=flags,
            pvalues=pvalues,
            zscores=z_win,
            unit_alarm=unit_alarm,
            t2=t2,
            config=self.config,
        )

    def _flag_pvalues(self, pvalues: np.ndarray) -> np.ndarray:
        """Per-row multiple-testing flags via the fastest exact route.

        BH/BY go through :func:`step_up_sparse` (rejection sets are
        identical to the dense reference step-up); other procedures use
        the dense dispatch.
        """
        cfg = self.config
        if cfg.procedure == "bh":
            return step_up_sparse(pvalues, cfg.q, dependence_correction=False)
        if cfg.procedure == "by":
            return step_up_sparse(pvalues, cfg.q, dependence_correction=True)
        return apply_procedure(cfg.procedure, pvalues, cfg.q)

    def _t2_channel(self, z_inst: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Whitened T² statistic and threshold alarm for one batch."""
        if self._whitening is not None and self.model.n_components > 0:
            whitened = z_inst @ self._whitening
            t2 = np.einsum("ij,ij->i", whitened, whitened)
            return t2, t2 >= self._t2_threshold
        n = z_inst.shape[0]
        return np.zeros(n), np.zeros(n, dtype=bool)

    def evaluate_stream(
        self, batches: Iterator[np.ndarray]
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Evaluate a stream of batches, yielding per-batch results."""
        for batch in batches:
            yield self.evaluate(batch)

    # ------------------------------------------------------------------
    def _windowed(self, z: np.ndarray) -> np.ndarray:
        """Trailing-window mean z-scores with cross-batch carry."""
        w = self.config.window
        if w == 1:
            return z
        carry = self._carry
        n_carry = 0 if carry is None else carry.shape[0]
        stacked = z if carry is None else np.vstack([carry, z])
        csum = np.cumsum(stacked, axis=0)
        t_idx = np.arange(stacked.shape[0])
        counts = np.minimum(t_idx + 1, w).astype(np.float64)
        win = np.empty_like(csum)
        win[:w] = csum[:w]
        np.subtract(csum[w:], csum[:-w], out=win[w:])
        win /= np.sqrt(counts)[:, None]
        # Keep the last (w-1) standardised rows for the next batch.
        tail = stacked[-(w - 1):] if stacked.shape[0] >= w - 1 else stacked
        self._carry = tail.copy()
        return win[n_carry:]

    def throughput_samples_per_second(self, elapsed_seconds: float) -> float:
        """Convenience: sensor samples evaluated per wall-clock second."""
        if elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")
        return self.stats.samples / elapsed_seconds
