"""Anomaly detection core: the paper's primary contribution.

Hypothesis tests on sensor streams, multiple-testing control (the
Benjamini–Hochberg FDR procedure and its comparators), the trained
covariance/SVD unit models, SPC baselines, the high-throughput online
evaluator, the sparklet training job, and the end-to-end pipeline that
publishes flagged anomalies back to the TSDB.
"""

from .fdr import AnomalyReport, FDRDetector, FDRDetectorConfig
from .hypothesis import (
    one_sided_pvalues,
    t2_pvalues,
    t2_statistic,
    two_sided_pvalues,
    window_mean_zscores,
    zscores,
)
from .metrics import (
    AggregateMetrics,
    DetectionOutcome,
    aggregate_outcomes,
    detection_delay,
    evaluate_flags,
)
from .model import UnitModel, load_model, model_key, save_model
from .multiple_testing import (
    PROCEDURES,
    apply_procedure,
    benjamini_hochberg,
    benjamini_yekutieli,
    bh_threshold,
    bonferroni,
    family_wise_error_probability,
    holm,
    step_up_sparse,
    uncorrected,
)
from .engine import FleetEvaluationEngine, UnitEvaluation
from .online import OnlineEvaluator, StreamStats
from .pipeline import (
    ANOMALY_METRIC,
    UNIT_ALARM_METRIC,
    AnomalyPipeline,
    PipelineConfig,
    PipelineResult,
)
from .spc import ControlChart, CusumChart, EwmaChart, MewmaChart, ShewhartChart
from .streaming import IncrementalMoments, StreamingTrainer
from .training import OfflineTrainer, TrainingResult, train_unit_distributed

__all__ = [
    "ANOMALY_METRIC",
    "AggregateMetrics",
    "AnomalyPipeline",
    "AnomalyReport",
    "ControlChart",
    "CusumChart",
    "DetectionOutcome",
    "EwmaChart",
    "FDRDetector",
    "FDRDetectorConfig",
    "FleetEvaluationEngine",
    "IncrementalMoments",
    "MewmaChart",
    "OfflineTrainer",
    "OnlineEvaluator",
    "PROCEDURES",
    "PipelineConfig",
    "PipelineResult",
    "ShewhartChart",
    "StreamStats",
    "StreamingTrainer",
    "TrainingResult",
    "UNIT_ALARM_METRIC",
    "UnitEvaluation",
    "UnitModel",
    "aggregate_outcomes",
    "apply_procedure",
    "benjamini_hochberg",
    "benjamini_yekutieli",
    "bh_threshold",
    "bonferroni",
    "detection_delay",
    "evaluate_flags",
    "family_wise_error_probability",
    "holm",
    "load_model",
    "model_key",
    "one_sided_pvalues",
    "save_model",
    "step_up_sparse",
    "t2_pvalues",
    "t2_statistic",
    "train_unit_distributed",
    "two_sided_pvalues",
    "uncorrected",
    "window_mean_zscores",
    "zscores",
]
