"""The FDR anomaly detector: offline training + online flagging.

Training (§IV-A): per unit, estimate sensor means/stds, compute the
covariance of the standardised training data, take its SVD (for a
symmetric PSD matrix, the eigendecomposition), and keep the top-k
eigenpairs plus the whitening map.  Evaluation: standardise incoming
samples, form per-sensor window-mean test statistics, convert to
p-values, and apply the Benjamini–Hochberg procedure *across sensors at
each time step* so the expected proportion of false alarms among the
flagged sensors stays below q — regardless of how many thousand sensors
the unit carries.

The whitened T² channel (optional, on by default) adds a unit-level
multivariate alarm: correlated faults that are small per sensor but
coherent across a factor group light up T² long before any marginal
test fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .hypothesis import (
    t2_pvalues,
    t2_statistic,
    two_sided_pvalues,
    window_mean_zscores,
)
from .model import UnitModel
from .multiple_testing import apply_procedure

__all__ = ["FDRDetectorConfig", "AnomalyReport", "FDRDetector"]


@dataclass(frozen=True)
class FDRDetectorConfig:
    """Detector hyperparameters.

    Parameters
    ----------
    q:
        Target false-discovery rate for per-sensor flags.
    window:
        Trailing window (samples) for the mean-shift statistic; 1 tests
        individual samples (fastest reaction, least power for drifts).
    procedure:
        Multiple-testing procedure across sensors per time step
        (``"bh"``, ``"by"``, ``"holm"``, ``"bonferroni"``, ``"none"``).
    n_components:
        Eigenpairs retained at training time; ``None`` keeps enough to
        explain ``variance_target`` of the variance.
    variance_target:
        Fraction of standardised variance the retained components must
        explain when ``n_components`` is None.
    unit_alarm_alpha:
        Significance level of the unit-level T² alarm.
    use_t2:
        Whether to compute the T² channel at all.
    """

    q: float = 0.05
    window: int = 32
    procedure: str = "bh"
    n_components: Optional[int] = None
    variance_target: float = 0.95
    unit_alarm_alpha: float = 0.01
    use_t2: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.q < 1.0:
            raise ValueError("q must be in (0, 1)")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.variance_target <= 1.0:
            raise ValueError("variance_target must be in (0, 1]")
        if not 0.0 < self.unit_alarm_alpha < 1.0:
            raise ValueError("unit_alarm_alpha must be in (0, 1)")


@dataclass
class AnomalyReport:
    """Detection output for one unit window.

    ``flags`` is the ``(T, p)`` boolean per-sensor anomaly mask after
    FDR control; ``pvalues``/``zscores`` the underlying evidence;
    ``unit_alarm`` a ``(T,)`` mask from the T² channel (all False when
    disabled).
    """

    unit_id: int
    flags: np.ndarray
    pvalues: np.ndarray
    zscores: np.ndarray
    unit_alarm: np.ndarray
    t2: np.ndarray
    config: FDRDetectorConfig

    @property
    def n_discoveries(self) -> int:
        return int(self.flags.sum())

    def flagged_sensors(self) -> np.ndarray:
        """Sensor indices with at least one flag, sorted."""
        return np.flatnonzero(self.flags.any(axis=0))

    def first_detection(self) -> Optional[int]:
        """Earliest flagged time index (per-sensor or unit alarm), or None."""
        any_flag = self.flags.any(axis=1) | self.unit_alarm
        hits = np.flatnonzero(any_flag)
        return int(hits[0]) if hits.size else None


class FDRDetector:
    """Offline-trained, online-evaluated FDR anomaly detector."""

    def __init__(self, config: Optional[FDRDetectorConfig] = None, **overrides: object) -> None:
        if config is None:
            config = FDRDetectorConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config

    # ------------------------------------------------------------------
    # offline training
    # ------------------------------------------------------------------
    def fit(self, training_values: np.ndarray, unit_id: int = 0) -> UnitModel:
        """Estimate a :class:`UnitModel` from fault-free training data.

        ``training_values`` is ``(n, p)``.  The covariance is computed
        on standardised data (the correlation matrix), so the
        eigenstructure reflects cross-sensor coupling rather than raw
        scale differences.
        """
        x = np.asarray(training_values, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 2:
            raise ValueError("training data must be (n >= 2, p)")
        mean = x.mean(axis=0)
        std = x.std(axis=0, ddof=1)
        if np.any(std <= 0):
            raise ValueError("every sensor needs non-zero training variance")
        z = (x - mean) / std
        cov = np.cov(z, rowvar=False)
        cov = np.atleast_2d((cov + cov.T) / 2.0)
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.clip(eigvals[order], 0.0, None)
        eigvecs = eigvecs[:, order]
        k = self._select_k(eigvals)
        eigvals, eigvecs = eigvals[:k], eigvecs[:, :k]
        whitening = eigvecs / np.sqrt(np.maximum(eigvals, 1e-12))
        return UnitModel(
            unit_id=unit_id,
            mean=mean,
            std=std,
            eigenvalues=eigvals,
            components=eigvecs,
            whitening=whitening,
            n_train=x.shape[0],
        )

    def _select_k(self, eigvals: np.ndarray) -> int:
        if self.config.n_components is not None:
            if not 1 <= self.config.n_components <= eigvals.size:
                raise ValueError("n_components out of range")
            return self.config.n_components
        total = eigvals.sum()
        if total <= 0:
            return 1
        ratio = np.cumsum(eigvals) / total
        return int(np.searchsorted(ratio, self.config.variance_target) + 1)

    # ------------------------------------------------------------------
    # online evaluation
    # ------------------------------------------------------------------
    def detect(self, model: UnitModel, values: np.ndarray) -> AnomalyReport:
        """Flag anomalies in an evaluation window ``(T, p)``.

        Per time step, the p-values of all p sensors form one family and
        the configured procedure controls its false discoveries.
        """
        x = np.asarray(values, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != model.n_sensors:
            raise ValueError(
                f"values must be (T, {model.n_sensors}); got {x.shape}"
            )
        cfg = self.config
        z = window_mean_zscores(x, model.mean, model.std, cfg.window)
        pvalues = two_sided_pvalues(z)
        flags = apply_procedure(cfg.procedure, pvalues, cfg.q)
        if cfg.use_t2 and model.n_components > 0:
            # Whiten the *instantaneous* standardised samples; T² reacts
            # within one step to coherent multivariate excursions.
            zs = (x - model.mean) / model.std
            whitened = zs @ model.whitening
            t2 = t2_statistic(whitened)
            unit_alarm = t2_pvalues(t2, model.n_components) <= cfg.unit_alarm_alpha
        else:
            t2 = np.zeros(x.shape[0])
            unit_alarm = np.zeros(x.shape[0], dtype=bool)
        return AnomalyReport(
            unit_id=model.unit_id,
            flags=flags,
            pvalues=pvalues,
            zscores=z,
            unit_alarm=unit_alarm,
            t2=t2,
            config=cfg,
        )
