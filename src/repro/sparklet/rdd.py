"""Resilient-distributed-dataset API (lazy, partitioned collections).

The subset of the Spark RDD surface the paper's offline training
pipeline needs, implemented faithfully: transformations are lazy and
build a DAG; wide transformations introduce shuffle dependencies; the
scheduler (:mod:`repro.sparklet.scheduler`) splits the DAG into stages
at shuffle boundaries and runs tasks over an executor pool.

Records flow through plain Python iterators; numeric work should use
``map_partitions`` with NumPy inside (vectorise per partition, not per
record) — that is how :mod:`repro.sparklet.linalg` gets real speed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

from .partitioner import HashPartitioner, Partitioner, RangePartitioner
from .shuffle import Aggregator

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")

__all__ = [
    "Dependency",
    "NarrowDependency",
    "ShuffleDependency",
    "RDD",
    "ParallelCollectionRDD",
    "MapPartitionsRDD",
    "ShuffledRDD",
    "UnionRDD",
]


class _ReversedPartitioner(Partitioner):
    """Mirror a partitioner's indices (used by descending sorts)."""

    def __init__(self, inner: Partitioner) -> None:
        super().__init__(inner.num_partitions)
        self.inner = inner

    def partition(self, key) -> int:
        return self.num_partitions - 1 - self.inner.partition(key)


class Dependency:
    """Edge in the RDD lineage DAG."""

    def __init__(self, parent: "RDD") -> None:
        self.parent = parent


class NarrowDependency(Dependency):
    """Child partition i depends only on parent partition i."""


class ShuffleDependency(Dependency):
    """Child partitions depend on *all* parent partitions (stage boundary)."""

    def __init__(
        self,
        parent: "RDD",
        partitioner: Partitioner,
        aggregator: Optional[Aggregator] = None,
    ) -> None:
        super().__init__(parent)
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.shuffle_id = parent.ctx._next_shuffle_id()


class RDD(Generic[T]):
    """A lazy, partitioned collection."""

    def __init__(self, ctx, deps: List[Dependency]) -> None:
        self.ctx = ctx
        self.deps = deps
        self.rdd_id = ctx._next_rdd_id()
        self._cached = False

    # ------------------------------------------------------------------
    # to be provided by concrete RDDs
    # ------------------------------------------------------------------
    def num_partitions(self) -> int:
        raise NotImplementedError

    def compute(self, split: int) -> Iterator[T]:
        """Compute one partition (called by the scheduler)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # caching
    # ------------------------------------------------------------------
    def cache(self) -> "RDD[T]":
        """Materialise partitions on first computation and reuse them."""
        self._cached = True
        return self

    def unpersist(self) -> "RDD[T]":
        self._cached = False
        self.ctx._evict_cache(self.rdd_id)
        return self

    @property
    def is_cached(self) -> bool:
        return self._cached

    # ------------------------------------------------------------------
    # narrow transformations
    # ------------------------------------------------------------------
    def map(self, f: Callable[[T], U]) -> "RDD[U]":
        return MapPartitionsRDD(self, lambda _i, it: map(f, it))

    def flat_map(self, f: Callable[[T], Iterable[U]]) -> "RDD[U]":
        return MapPartitionsRDD(self, lambda _i, it: (y for x in it for y in f(x)))

    def filter(self, f: Callable[[T], bool]) -> "RDD[T]":
        return MapPartitionsRDD(self, lambda _i, it: filter(f, it))

    def map_partitions(self, f: Callable[[Iterator[T]], Iterable[U]]) -> "RDD[U]":
        return MapPartitionsRDD(self, lambda _i, it: f(it))

    def map_partitions_with_index(
        self, f: Callable[[int, Iterator[T]], Iterable[U]]
    ) -> "RDD[U]":
        return MapPartitionsRDD(self, f)

    def glom(self) -> "RDD[List[T]]":
        """One list per partition."""
        return MapPartitionsRDD(self, lambda _i, it: iter([list(it)]))

    def key_by(self, f: Callable[[T], K]) -> "RDD[Tuple[K, T]]":
        return self.map(lambda x: (f(x), x))

    def map_values(self, f: Callable[[V], U]) -> "RDD[Tuple[K, U]]":
        return self.map(lambda kv: (kv[0], f(kv[1])))

    def flat_map_values(self, f: Callable[[V], Iterable[U]]) -> "RDD[Tuple[K, U]]":
        return self.flat_map(lambda kv: ((kv[0], u) for u in f(kv[1])))

    def keys(self) -> "RDD[K]":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD[V]":
        return self.map(lambda kv: kv[1])

    def union(self, other: "RDD[T]") -> "RDD[T]":
        return UnionRDD(self.ctx, [self, other])

    def zip_with_index(self) -> "RDD[Tuple[T, int]]":
        """Pair each element with its global index (runs a counting job)."""
        counts = self.ctx.run_job(self, lambda it: sum(1 for _ in it))
        offsets = [0]
        for c in counts[:-1]:
            offsets.append(offsets[-1] + c)

        def attach(i: int, it: Iterator[T]) -> Iterator[Tuple[T, int]]:
            base = offsets[i]
            for j, x in enumerate(it):
                yield (x, base + j)

        return MapPartitionsRDD(self, attach)

    def sample(self, fraction: float, seed: int = 0) -> "RDD[T]":
        """Bernoulli sample (deterministic per partition and seed)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

        def sampler(i: int, it: Iterator[T]) -> Iterator[T]:
            import numpy as np

            rng = np.random.default_rng((seed, i))
            return (x for x in it if rng.random() < fraction)

        return MapPartitionsRDD(self, sampler)

    # ------------------------------------------------------------------
    # wide (shuffle) transformations — pair RDDs
    # ------------------------------------------------------------------
    def partition_by(self, partitioner: Partitioner) -> "RDD[Tuple[K, V]]":
        shuffled = ShuffledRDD(self, partitioner, aggregator=None)
        # Un-group: shuffle read yields (k, [v...]); restore the pairs.
        return MapPartitionsRDD(
            shuffled, lambda _i, it: ((k, v) for k, vs in it for v in vs)
        )

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD[Tuple[K, List[V]]]":
        return ShuffledRDD(self, self._default_partitioner(num_partitions), aggregator=None)

    def group_by(
        self, f: Callable[[T], K], num_partitions: Optional[int] = None
    ) -> "RDD[Tuple[K, List[T]]]":
        return self.key_by(f).group_by_key(num_partitions)

    def combine_by_key(
        self,
        create: Callable[[V], U],
        merge_value: Callable[[U, V], U],
        merge_combiners: Callable[[U, U], U],
        num_partitions: Optional[int] = None,
    ) -> "RDD[Tuple[K, U]]":
        agg = Aggregator(create, merge_value, merge_combiners)
        return ShuffledRDD(self, self._default_partitioner(num_partitions), agg)

    def reduce_by_key(
        self, f: Callable[[V, V], V], num_partitions: Optional[int] = None
    ) -> "RDD[Tuple[K, V]]":
        return self.combine_by_key(lambda v: v, f, f, num_partitions)

    def aggregate_by_key(
        self,
        zero: U,
        seq_op: Callable[[U, V], U],
        comb_op: Callable[[U, U], U],
        num_partitions: Optional[int] = None,
    ) -> "RDD[Tuple[K, U]]":
        import copy

        return self.combine_by_key(
            lambda v: seq_op(copy.deepcopy(zero), v), seq_op, comb_op, num_partitions
        )

    def count_by_key(self) -> dict:
        return dict(self.map_values(lambda _v: 1).reduce_by_key(lambda a, b: a + b).collect())

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD[T]":
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .keys()
        )

    def cogroup(
        self, other: "RDD[Tuple[K, U]]", num_partitions: Optional[int] = None
    ) -> "RDD[Tuple[K, Tuple[List[V], List[U]]]]":
        tagged = self.map_values(lambda v: (0, v)).union(
            other.map_values(lambda v: (1, v))
        )
        grouped = tagged.group_by_key(num_partitions)

        def split(kv: Tuple[K, List[Tuple[int, Any]]]) -> Tuple[K, Tuple[List[V], List[U]]]:
            key, tagged_values = kv
            left = [v for tag, v in tagged_values if tag == 0]
            right = [v for tag, v in tagged_values if tag == 1]
            return (key, (left, right))

        return grouped.map(split)

    def join(
        self, other: "RDD[Tuple[K, U]]", num_partitions: Optional[int] = None
    ) -> "RDD[Tuple[K, Tuple[V, U]]]":
        return self.cogroup(other, num_partitions).flat_map(
            lambda kv: ((kv[0], (l, r)) for l in kv[1][0] for r in kv[1][1])
        )

    def left_outer_join(
        self, other: "RDD[Tuple[K, U]]", num_partitions: Optional[int] = None
    ) -> "RDD[Tuple[K, Tuple[V, Optional[U]]]]":
        def emit(
            kv: Tuple[K, Tuple[List[V], List[U]]]
        ) -> Iterator[Tuple[K, Tuple[V, Optional[U]]]]:
            key, (left, right) = kv
            if not right:
                return ((key, (l, None)) for l in left)
            return ((key, (l, r)) for l in left for r in right)

        return self.cogroup(other, num_partitions).flat_map(emit)

    def sort_by(
        self,
        key_fn: Callable[[T], Any],
        ascending: bool = True,
        num_partitions: Optional[int] = None,
    ) -> "RDD[T]":
        """Total ordering via sampled range partitioning + local sort."""
        n_out = num_partitions if num_partitions is not None else self.num_partitions()
        keyed = self.key_by(key_fn)
        if n_out == 1:
            bounds: List[Any] = []
        else:
            sampled = sorted(self.map(key_fn).sample(min(1.0, 20.0 * n_out / max(1, self._approx_size())), seed=17).collect())
            if not sampled:
                sampled = sorted(self.map(key_fn).collect())
            step = max(1, len(sampled) // n_out)
            bounds = sampled[step::step][: n_out - 1]
        partitioner: Partitioner = RangePartitioner(bounds)
        if not ascending:
            # Reverse the partition indices so partition 0 holds the
            # largest keys; concatenated partitions then read descending.
            partitioner = _ReversedPartitioner(partitioner)
        shuffled = ShuffledRDD(keyed, partitioner, aggregator=None)

        def local_sort(_i: int, it: Iterator[Tuple[Any, List[T]]]) -> Iterator[T]:
            pairs = sorted(it, key=lambda kv: kv[0], reverse=not ascending)
            for _k, vs in pairs:
                yield from vs

        return MapPartitionsRDD(shuffled, local_sort)

    def _approx_size(self) -> int:
        # Cheap size hint for sampling rates; exact for parallelized data.
        root = self
        while root.deps:
            root = root.deps[0].parent
        return getattr(root, "_size_hint", 1000)

    def _default_partitioner(self, num_partitions: Optional[int]) -> Partitioner:
        n = num_partitions if num_partitions is not None else max(1, self.num_partitions())
        return HashPartitioner(n)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def collect(self) -> List[T]:
        chunks = self.ctx.run_job(self, list)
        return [x for chunk in chunks for x in chunk]

    def count(self) -> int:
        return sum(self.ctx.run_job(self, lambda it: sum(1 for _ in it)))

    def first(self) -> T:
        taken = self.take(1)
        if not taken:
            raise ValueError("RDD is empty")
        return taken[0]

    def take(self, n: int) -> List[T]:
        """First ``n`` elements in partition order (computes lazily per partition)."""
        if n <= 0:
            return []
        out: List[T] = []
        for split in range(self.num_partitions()):
            chunk = self.ctx.run_job(self, lambda it: list(it), partitions=[split])[0]
            out.extend(chunk)
            if len(out) >= n:
                break
        return out[:n]

    def reduce(self, f: Callable[[T, T], T]) -> T:
        def reduce_partition(it: Iterator[T]) -> List[T]:
            acc = None
            seen = False
            for x in it:
                acc = x if not seen else f(acc, x)
                seen = True
            return [acc] if seen else []

        partials = [x for chunk in self.ctx.run_job(self, reduce_partition) for x in chunk]
        if not partials:
            raise ValueError("reduce of empty RDD")
        acc = partials[0]
        for x in partials[1:]:
            acc = f(acc, x)
        return acc

    def fold(self, zero: T, f: Callable[[T, T], T]) -> T:
        import functools

        partials = self.ctx.run_job(self, lambda it: functools.reduce(f, it, zero))
        return functools.reduce(f, partials, zero)

    def aggregate(self, zero: U, seq_op: Callable[[U, T], U], comb_op: Callable[[U, U], U]) -> U:
        import copy
        import functools

        partials = self.ctx.run_job(
            self, lambda it: functools.reduce(seq_op, it, copy.deepcopy(zero))
        )
        return functools.reduce(comb_op, partials, zero)

    def sum(self) -> Any:
        return self.fold(0, lambda a, b: a + b)

    def top(self, n: int, key: Optional[Callable[[T], Any]] = None) -> List[T]:
        """Largest ``n`` elements (by ``key``), descending."""
        partials = self.ctx.run_job(self, lambda it: heapq.nlargest(n, it, key=key))
        merged = heapq.nlargest(n, (x for chunk in partials for x in chunk), key=key)
        return merged

    def foreach(self, f: Callable[[T], None]) -> None:
        self.ctx.run_job(self, lambda it: [f(x) for x in it] and None)

    def foreach_partition(self, f: Callable[[Iterator[T]], None]) -> None:
        self.ctx.run_job(self, lambda it: f(it))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} id={self.rdd_id} partitions={self.num_partitions()}>"


class ParallelCollectionRDD(RDD[T]):
    """Root RDD over an in-memory sequence, sliced into partitions."""

    def __init__(self, ctx, data: List[T], num_slices: int) -> None:
        super().__init__(ctx, [])
        if num_slices < 1:
            raise ValueError("num_slices must be >= 1")
        self._slices: List[List[T]] = [list(s) for s in _slice(data, num_slices)]
        self._size_hint = len(data)

    def num_partitions(self) -> int:
        return len(self._slices)

    def compute(self, split: int) -> Iterator[T]:
        return iter(self._slices[split])


def _slice(data: List[T], num_slices: int) -> List[List[T]]:
    n = len(data)
    out = []
    for i in range(num_slices):
        start = (i * n) // num_slices
        end = ((i + 1) * n) // num_slices
        out.append(data[start:end])
    return out


class MapPartitionsRDD(RDD[U]):
    """Narrow transformation: apply ``f(split_index, iterator)``."""

    def __init__(self, parent: RDD, f: Callable[[int, Iterator], Iterable[U]]) -> None:
        super().__init__(parent.ctx, [NarrowDependency(parent)])
        self.parent = parent
        self.f = f

    def num_partitions(self) -> int:
        return self.parent.num_partitions()

    def compute(self, split: int) -> Iterator[U]:
        return iter(self.f(split, self.ctx._iterator(self.parent, split)))


class ShuffledRDD(RDD[Tuple[K, Any]]):
    """Post-shuffle RDD: partition ``i`` reads reduce bucket ``i``.

    Without an aggregator yields ``(key, [values])``; with one yields
    ``(key, combined)``.
    """

    def __init__(self, parent: RDD, partitioner: Partitioner, aggregator: Optional[Aggregator]) -> None:
        dep = ShuffleDependency(parent, partitioner, aggregator)
        super().__init__(parent.ctx, [dep])
        self.dep = dep

    def num_partitions(self) -> int:
        return self.dep.partitioner.num_partitions

    def compute(self, split: int) -> Iterator[Tuple[K, Any]]:
        return self.ctx.shuffle_manager.read(
            self.dep.shuffle_id,
            split,
            self.dep.parent.num_partitions(),
            self.dep.aggregator,
        )


class UnionRDD(RDD[T]):
    """Concatenation of several RDDs' partitions (narrow)."""

    def __init__(self, ctx, parents: List[RDD[T]]) -> None:
        super().__init__(ctx, [NarrowDependency(p) for p in parents])
        self.parents = parents

    def num_partitions(self) -> int:
        return sum(p.num_partitions() for p in self.parents)

    def compute(self, split: int) -> Iterator[T]:
        for parent in self.parents:
            n = parent.num_partitions()
            if split < n:
                return self.ctx._iterator(parent, split)
            split -= n
        raise IndexError("partition index out of range")  # pragma: no cover
