"""Partitioners: how shuffled keys map to reduce partitions."""

from __future__ import annotations

import bisect
import zlib
from typing import Any, List, Sequence

__all__ = ["Partitioner", "HashPartitioner", "RangePartitioner"]


def _stable_hash(key: Any) -> int:
    """Deterministic cross-run hash (Python's builtin is salted for str/bytes)."""
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, int):
        return key & 0xFFFFFFFF
    if isinstance(key, tuple):
        h = 0x811C9DC5
        for item in key:
            h = (h * 31 + _stable_hash(item)) & 0xFFFFFFFF
        return h
    return zlib.crc32(repr(key).encode("utf-8"))


class Partitioner:
    """Maps keys to partition indices in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]

    def __hash__(self) -> int:  # pragma: no cover - dict key usage only
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Stable-hash modulo partitioning (Spark's default)."""

    def partition(self, key: Any) -> int:
        return _stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Ordered partitioning on sampled split points (for sortBy).

    ``bounds`` are the upper-exclusive split keys; keys above the last
    bound go to the final partition.
    """

    def __init__(self, bounds: Sequence[Any]) -> None:
        super().__init__(len(bounds) + 1)
        self.bounds: List[Any] = list(bounds)

    def partition(self, key: Any) -> int:
        return bisect.bisect_right(self.bounds, key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RangePartitioner) and self.bounds == other.bounds

    def __hash__(self) -> int:  # pragma: no cover
        return hash(("RangePartitioner", tuple(self.bounds)))
