"""In-memory shuffle machinery.

A wide dependency splits the job into stages.  The *map side* runs the
parent partition, routes each record's key through the partitioner and
(optionally) combines values locally (map-side combine, as Spark does
for ``reduceByKey``).  Outputs land in the :class:`ShuffleManager`
keyed by ``(shuffle_id, map_partition, reduce_partition)``.  The
*reduce side* fetches its bucket from every map partition and merges.

Thread-safety: the block/metrics maps are ``# guarded-by: _lock`` —
map-side registration mutates them under the lock and the reduce side
snapshots its blocks under the same lock before merging outside it.
The lock is created through :func:`repro.analysis.raceaudit.audited_lock`
so test runs record the acquisition order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..analysis.raceaudit import assert_holds, audited_lock
from .partitioner import Partitioner

__all__ = ["Aggregator", "ShuffleManager", "ShuffleWriteMetrics"]


@dataclass
class Aggregator:
    """Combine-by-key functions (Spark's Aggregator).

    ``create(v)`` makes the initial combiner from the first value,
    ``merge_value(c, v)`` folds another value in, and
    ``merge_combiners(c1, c2)`` merges across map partitions.
    """

    create: Callable[[Any], Any]
    merge_value: Callable[[Any, Any], Any]
    merge_combiners: Callable[[Any, Any], Any]


@dataclass
class ShuffleWriteMetrics:
    records_in: int = 0
    records_out: int = 0  # after map-side combine


class ShuffleManager:
    """Stores shuffle blocks for all jobs run by one context."""

    def __init__(self) -> None:
        self._blocks: Dict[Tuple[int, int, int], List[Tuple[Any, Any]]] = {}  # guarded-by: _lock
        self._maps_done: Dict[int, set] = {}  # guarded-by: _lock
        self._lock = audited_lock("sparklet.shuffle.blocks")
        self.metrics: Dict[int, ShuffleWriteMetrics] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    # map side
    # ------------------------------------------------------------------
    def write(
        self,
        shuffle_id: int,
        map_partition: int,
        records: Iterable[Tuple[Any, Any]],
        partitioner: Partitioner,
        aggregator: Optional[Aggregator] = None,
    ) -> None:
        """Route one map partition's key-value records into reduce buckets."""
        buckets: List[Dict[Any, Any] | List[Tuple[Any, Any]]]
        n_in = 0
        if aggregator is not None:
            combined: List[Dict[Any, Any]] = [dict() for _ in range(partitioner.num_partitions)]
            for key, value in records:
                n_in += 1
                bucket = combined[partitioner.partition(key)]
                if key in bucket:
                    bucket[key] = aggregator.merge_value(bucket[key], value)
                else:
                    bucket[key] = aggregator.create(value)
            out: List[List[Tuple[Any, Any]]] = [list(b.items()) for b in combined]
        else:
            plain: List[List[Tuple[Any, Any]]] = [[] for _ in range(partitioner.num_partitions)]
            for key, value in records:
                n_in += 1
                plain[partitioner.partition(key)].append((key, value))
            out = plain
        with self._lock:
            metrics = self.metrics.setdefault(shuffle_id, ShuffleWriteMetrics())
            metrics.records_in += n_in
            for reduce_partition, block in enumerate(out):
                metrics.records_out += len(block)
                self._blocks[(shuffle_id, map_partition, reduce_partition)] = block
            self._maps_done.setdefault(shuffle_id, set()).add(map_partition)

    def maps_completed(self, shuffle_id: int) -> int:
        with self._lock:
            return len(self._maps_done.get(shuffle_id, ()))

    # ------------------------------------------------------------------
    # reduce side
    # ------------------------------------------------------------------
    def read(
        self,
        shuffle_id: int,
        reduce_partition: int,
        num_map_partitions: int,
        aggregator: Optional[Aggregator] = None,
    ) -> Iterator[Tuple[Any, Any]]:
        """Fetch and merge one reduce partition's blocks.

        With an aggregator, map-side combiners are merged with
        ``merge_combiners``; otherwise values are grouped into lists.
        """
        with self._lock:
            blocks = self._fetch_blocks(shuffle_id, reduce_partition, num_map_partitions)
        merged: Dict[Any, Any] = {}
        grouped: Dict[Any, List[Any]] = {}
        for block in blocks:
            if aggregator is not None:
                for key, combiner in block:
                    if key in merged:
                        merged[key] = aggregator.merge_combiners(merged[key], combiner)
                    else:
                        merged[key] = combiner
            else:
                for key, value in block:
                    grouped.setdefault(key, []).append(value)
        source = merged if aggregator is not None else grouped
        return iter(source.items())

    def _fetch_blocks(
        self, shuffle_id: int, reduce_partition: int, num_map_partitions: int
    ) -> List[List[Tuple[Any, Any]]]:
        """Snapshot one reduce partition's blocks; caller holds ``_lock``."""
        assert_holds(self._lock)
        return [
            self._blocks.get((shuffle_id, map_partition, reduce_partition), [])
            for map_partition in range(num_map_partitions)
        ]

    def free(self, shuffle_id: int) -> None:
        """Drop a shuffle's blocks (job GC)."""
        with self._lock:
            for key in [k for k in self._blocks if k[0] == shuffle_id]:
                del self._blocks[key]
            self._maps_done.pop(shuffle_id, None)
            self.metrics.pop(shuffle_id, None)
