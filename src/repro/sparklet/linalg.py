"""Distributed linear algebra: the MLlib pieces the trainer needs.

:class:`RowMatrix` wraps an RDD of NumPy *row blocks* (2-D arrays with
the full column width).  Per-partition Gram matrices are computed with
one BLAS call each and tree-reduced — the same decomposition MLlib uses
for ``computeCovariance`` — so the covariance of an ``n × p`` matrix
costs one pass and ``O(p²)`` reduction traffic per partition, never
materialising the data on the driver.

The offline FDR training (§IV-A of the paper: "model estimation ...
begins by calculating the covariance matrix ... Singular Value
Decomposition is then performed on each covariance matrix") builds
directly on :meth:`RowMatrix.covariance` and
:meth:`RowMatrix.covariance_eigen`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .context import SparkletContext
from .rdd import RDD

__all__ = ["RowMatrix"]


class RowMatrix:
    """A tall-skinny distributed matrix stored as row blocks.

    Parameters
    ----------
    blocks:
        RDD whose elements are 2-D ``float64`` arrays of shape
        ``(rows_i, p)`` with a common ``p``.
    num_cols:
        Column count; inferred with a small job when omitted.
    """

    def __init__(self, blocks: RDD, num_cols: Optional[int] = None) -> None:
        self.blocks = blocks
        self._num_cols = num_cols
        self._num_rows: Optional[int] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_numpy(ctx: SparkletContext, data: np.ndarray, num_blocks: Optional[int] = None) -> "RowMatrix":
        """Split a local array into row blocks and distribute it."""
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError("data must be 2-D")
        n_blocks = num_blocks if num_blocks is not None else ctx.parallelism
        n_blocks = max(1, min(n_blocks, arr.shape[0]))
        pieces = np.array_split(arr, n_blocks, axis=0)
        return RowMatrix(ctx.parallelize(pieces, n_blocks), num_cols=arr.shape[1])

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    def num_cols(self) -> int:
        if self._num_cols is None:
            first = self.blocks.first()
            self._num_cols = int(first.shape[1])
        return self._num_cols

    def num_rows(self) -> int:
        if self._num_rows is None:
            self._num_rows = int(
                self.blocks.map(lambda b: int(b.shape[0])).fold(0, lambda a, b: a + b)
            )
        return self._num_rows

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def column_sums(self) -> np.ndarray:
        p = self.num_cols()
        return self.blocks.map(lambda b: b.sum(axis=0)).fold(
            np.zeros(p), lambda a, b: a + b
        )

    def column_means(self) -> np.ndarray:
        n = self.num_rows()
        if n == 0:
            raise ValueError("matrix has no rows")
        return self.column_sums() / n

    def gramian(self) -> np.ndarray:
        """``Xᵀ X`` via per-partition BLAS + tree reduction."""
        p = self.num_cols()
        return self.blocks.map(lambda b: b.T @ b).fold(
            np.zeros((p, p)), lambda a, b: a + b
        )

    def covariance(self) -> np.ndarray:
        """Sample covariance (denominator ``n - 1``), one distributed pass.

        Uses the Gram-matrix identity
        ``cov = (XᵀX − n·μμᵀ) / (n − 1)`` with symmetrisation to scrub
        accumulated floating-point asymmetry.
        """
        n = self.num_rows()
        if n < 2:
            raise ValueError("covariance requires at least 2 rows")
        mu = self.column_means()
        gram = self.gramian()
        cov = (gram - n * np.outer(mu, mu)) / (n - 1)
        return (cov + cov.T) / 2.0

    def covariance_eigen(self, top_k: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Eigendecomposition of the covariance, eigenvalues descending.

        For a symmetric PSD matrix the SVD and the eigendecomposition
        coincide (MLlib's ``computePrincipalComponents`` path); ``eigh``
        is the numerically right primitive for symmetric input.  Tiny
        negative eigenvalues from round-off are clamped to zero.

        Returns ``(eigenvalues[k], eigenvectors[p, k])``.
        """
        cov = self.covariance()
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.clip(eigvals[order], 0.0, None)
        eigvecs = eigvecs[:, order]
        if top_k is not None:
            if top_k < 1:
                raise ValueError("top_k must be >= 1")
            eigvals = eigvals[:top_k]
            eigvecs = eigvecs[:, :top_k]
        return eigvals, eigvecs

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def multiply(self, local: np.ndarray) -> "RowMatrix":
        """Right-multiply every row block by a local ``(p, q)`` matrix."""
        mat = np.asarray(local, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != self.num_cols():
            raise ValueError(
                f"shape mismatch: matrix is (*, {self.num_cols()}), operand {mat.shape}"
            )
        return RowMatrix(self.blocks.map(lambda b: b @ mat), num_cols=mat.shape[1])

    def collect(self) -> np.ndarray:
        """Materialise the full matrix on the driver (tests/small data only)."""
        blocks = self.blocks.collect()
        if not blocks:
            return np.empty((0, self._num_cols or 0))
        return np.vstack(blocks)
