"""DAG scheduler: stage splitting and task execution.

Walks an RDD's lineage, materialises every un-run shuffle dependency in
topological order (each is one *map stage*), then runs the final
*result stage*.  Tasks within a stage are independent and execute on
the context's executor pool; stage boundaries are barriers, exactly as
in Spark.

Map stages for independent shuffles at the same depth are themselves
independent, but running them sequentially keeps the scheduler simple
— the parallelism that matters (across partitions) is preserved.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterator, List, Optional, Sequence

from .rdd import RDD, ShuffleDependency

__all__ = ["DAGScheduler", "JobMetrics"]


class JobMetrics:
    """Counters for one job run."""

    def __init__(self) -> None:
        self.stages = 0
        self.tasks = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<JobMetrics stages={self.stages} tasks={self.tasks}>"


class DAGScheduler:
    """Executes jobs for one :class:`~repro.sparklet.context.SparkletContext`."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self._completed_shuffles: set[int] = set()
        self.last_job: Optional[JobMetrics] = None

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run_job(
        self,
        rdd: RDD,
        func: Callable[[Iterator], Any],
        partitions: Optional[Sequence[int]] = None,
    ) -> List[Any]:
        """Run ``func`` over the given partitions of ``rdd`` (all by default)."""
        metrics = JobMetrics()
        for dep in self._pending_shuffles(rdd):
            self._run_map_stage(dep, metrics)
        if partitions is None:
            partitions = range(rdd.num_partitions())
        results = self._run_tasks(
            [lambda split=split: func(self.ctx._iterator(rdd, split)) for split in partitions]
        )
        metrics.stages += 1
        metrics.tasks += len(list(partitions))
        self.last_job = metrics
        return results

    # ------------------------------------------------------------------
    # stage planning
    # ------------------------------------------------------------------
    def _pending_shuffles(self, rdd: RDD) -> List[ShuffleDependency]:
        """Un-materialised shuffle deps reachable from ``rdd``, parents first."""
        ordered: List[ShuffleDependency] = []
        seen_rdds: set[int] = set()
        seen_shuffles: set[int] = set()

        def visit(node: RDD) -> None:
            if node.rdd_id in seen_rdds:
                return
            seen_rdds.add(node.rdd_id)
            for dep in node.deps:
                visit(dep.parent)
                if isinstance(dep, ShuffleDependency):
                    if (
                        dep.shuffle_id not in self._completed_shuffles
                        and dep.shuffle_id not in seen_shuffles
                    ):
                        seen_shuffles.add(dep.shuffle_id)
                        ordered.append(dep)

        visit(rdd)
        return ordered

    def _run_map_stage(self, dep: ShuffleDependency, metrics: JobMetrics) -> None:
        parent = dep.parent
        n = parent.num_partitions()

        def make_task(split: int) -> Callable[[], None]:
            def task() -> None:
                records = self.ctx._iterator(parent, split)
                self.ctx.shuffle_manager.write(
                    dep.shuffle_id, split, records, dep.partitioner, dep.aggregator
                )

            return task

        self._run_tasks([make_task(i) for i in range(n)])
        self._completed_shuffles.add(dep.shuffle_id)
        metrics.stages += 1
        metrics.tasks += n

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------
    def _run_tasks(self, tasks: List[Callable[[], Any]]) -> List[Any]:
        executor: Optional[ThreadPoolExecutor] = self.ctx._executor
        if executor is None or len(tasks) <= 1:
            return [task() for task in tasks]
        futures = [executor.submit(task) for task in tasks]
        return [f.result() for f in futures]
