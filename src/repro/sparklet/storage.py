"""Block store: the HDFS-cache stand-in for trained models.

The paper caches SVD training results to HDFS so the online evaluator
only does "a single matrix multiplication per iteration".  This module
provides the same contract on the local filesystem: content-checksummed
blocks written atomically (temp file + rename), NumPy arrays stored in
``.npz`` form so they can be loaded without pickling arbitrary code.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from pathlib import Path
from typing import Dict, List

import numpy as np

__all__ = ["BlockStore", "BlockCorruptionError"]

_KEY_RE = re.compile(r"^[A-Za-z0-9._:-]+$")


class BlockCorruptionError(RuntimeError):
    """A block's content no longer matches its recorded checksum."""


class BlockStore:
    """Directory-backed store of named array bundles.

    Keys are flat names (``[A-Za-z0-9._:-]+``); each block is an
    ``.npz`` of named arrays plus a sidecar ``.sha256`` checksum that is
    verified on read.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _paths(self, key: str) -> tuple[Path, Path]:
        if not _KEY_RE.match(key):
            raise ValueError(f"invalid block key {key!r}")
        return self.root / f"{key}.npz", self.root / f"{key}.sha256"

    @staticmethod
    def _digest(path: Path) -> str:
        h = hashlib.sha256()
        with open(path, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                h.update(chunk)
        return h.hexdigest()

    # ------------------------------------------------------------------
    def put(self, key: str, arrays: Dict[str, np.ndarray]) -> None:
        """Atomically write a block of named arrays."""
        data_path, sum_path = self._paths(key)
        if not arrays:
            raise ValueError("block must contain at least one array")
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            digest = self._digest(Path(tmp_name))
            os.replace(tmp_name, data_path)
        # Deliberately broad: temp-file cleanup must run even on
        # KeyboardInterrupt/SystemExit; the exception is re-raised as-is.
        except BaseException:  # repro-lint: ignore[broad-except]
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        sum_path.write_text(json.dumps({"sha256": digest}))

    def get(self, key: str) -> Dict[str, np.ndarray]:
        """Read a block, verifying its checksum."""
        data_path, sum_path = self._paths(key)
        if not data_path.exists():
            raise KeyError(key)
        if sum_path.exists():
            expected = json.loads(sum_path.read_text())["sha256"]
            actual = self._digest(data_path)
            if actual != expected:
                raise BlockCorruptionError(
                    f"block {key!r}: checksum mismatch ({actual} != {expected})"
                )
        with np.load(data_path) as bundle:
            return {name: bundle[name] for name in bundle.files}

    def exists(self, key: str) -> bool:
        return self._paths(key)[0].exists()

    def delete(self, key: str) -> bool:
        """Remove a block; returns whether it existed."""
        data_path, sum_path = self._paths(key)
        existed = data_path.exists()
        for path in (data_path, sum_path):
            if path.exists():
                path.unlink()
        return existed

    def keys(self) -> List[str]:
        return sorted(p.stem for p in self.root.glob("*.npz"))

    def __contains__(self, key: str) -> bool:
        return self.exists(key)

    def __len__(self) -> int:
        return len(self.keys())
