"""Micro-batch stream processing (the Spark Streaming substrate).

The paper's §VI lists "migrating our anomaly detection implementation
to Spark Streaming for online training" as ongoing work.  This module
provides the D-Stream model from the Spark Streaming paper (Zaharia et
al., SOSP'13) at the scale this project needs: a stream is a sequence
of *micro-batches*, each processed as an ordinary RDD on the batch
engine, so streaming computations reuse the exact same operators —
and the same fault-tolerance story — as batch ones.

Sources are pull-based (``queue_stream`` / ``generator_stream``);
``StreamingContext.run`` drives a fixed number of intervals, which
keeps tests deterministic (no wall-clock coupling).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from .context import SparkletContext
from .rdd import RDD

__all__ = ["DStream", "StreamingContext"]


class StreamingContext:
    """Drives micro-batch rounds over a batch :class:`SparkletContext`."""

    def __init__(self, sc: SparkletContext, batch_interval: float = 1.0) -> None:
        if batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        self.sc = sc
        self.batch_interval = batch_interval
        self._sources: List["_SourceDStream"] = []
        self.batches_processed = 0

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def queue_stream(self, batches: Iterable[List[Any]]) -> "DStream":
        """A stream fed from a pre-built sequence of micro-batches."""
        source = _SourceDStream(self, iter(batches))
        self._sources.append(source)
        return source

    def generator_stream(self, generator: Iterator[List[Any]]) -> "DStream":
        """A stream fed lazily from a generator of micro-batches."""
        source = _SourceDStream(self, generator)
        self._sources.append(source)
        return source

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, num_intervals: Optional[int] = None) -> int:
        """Process up to ``num_intervals`` micro-batches (all, if None).

        Each interval pulls one batch from every source, pushes it down
        the DStream graph, and fires the registered outputs.  Returns
        the number of intervals actually processed (a source running
        dry ends the stream).
        """
        if not self._sources:
            raise RuntimeError("no stream sources registered")
        processed = 0
        while num_intervals is None or processed < num_intervals:
            time_index = self.batches_processed
            alive = False
            for source in self._sources:
                if source._advance(time_index):
                    alive = True
            if not alive:
                break
            self.batches_processed += 1
            processed += 1
        return processed


class DStream:
    """A discretised stream: one RDD per micro-batch interval."""

    def __init__(self, ssc: StreamingContext) -> None:
        self.ssc = ssc
        self._children: List[Callable[[int, RDD], None]] = []

    # ------------------------------------------------------------------
    # graph wiring
    # ------------------------------------------------------------------
    def _emit(self, time_index: int, rdd: RDD) -> None:
        for child in self._children:
            child(time_index, rdd)

    def _derive(self, transform_rdd: Callable[[int, RDD], Optional[RDD]]) -> "DStream":
        child = DStream(self.ssc)

        def on_batch(time_index: int, rdd: RDD) -> None:
            out = transform_rdd(time_index, rdd)
            if out is not None:
                child._emit(time_index, out)

        self._children.append(on_batch)
        return child

    # ------------------------------------------------------------------
    # transformations (each micro-batch independently)
    # ------------------------------------------------------------------
    def map(self, f: Callable[[Any], Any]) -> "DStream":
        return self._derive(lambda _t, rdd: rdd.map(f))

    def flat_map(self, f: Callable[[Any], Iterable[Any]]) -> "DStream":
        return self._derive(lambda _t, rdd: rdd.flat_map(f))

    def filter(self, f: Callable[[Any], bool]) -> "DStream":
        return self._derive(lambda _t, rdd: rdd.filter(f))

    def transform(self, f: Callable[[RDD], RDD]) -> "DStream":
        """Arbitrary RDD-to-RDD transformation per interval."""
        return self._derive(lambda _t, rdd: f(rdd))

    def reduce_by_key(self, f: Callable[[Any, Any], Any]) -> "DStream":
        return self._derive(lambda _t, rdd: rdd.reduce_by_key(f))

    def count_by_value(self) -> "DStream":
        return self._derive(
            lambda _t, rdd: rdd.map(lambda x: (x, 1)).reduce_by_key(lambda a, b: a + b)
        )

    # ------------------------------------------------------------------
    # windowed transformations
    # ------------------------------------------------------------------
    def window(self, window_length: int, slide: int = 1) -> "DStream":
        """Union of the last ``window_length`` micro-batches, every ``slide``.

        Lengths are in intervals (the D-Stream convention divided by the
        batch interval).
        """
        if window_length < 1 or slide < 1:
            raise ValueError("window_length and slide must be >= 1")
        buffer: Deque[RDD] = deque(maxlen=window_length)

        def on_batch(_t: int, rdd: RDD) -> Optional[RDD]:
            buffer.append(rdd)
            if (_t + 1) % slide != 0:
                return None
            union = buffer[0]
            for nxt in list(buffer)[1:]:
                union = union.union(nxt)
            return union

        return self._derive(on_batch)

    def reduce_by_key_and_window(
        self, f: Callable[[Any, Any], Any], window_length: int, slide: int = 1
    ) -> "DStream":
        return self.window(window_length, slide).reduce_by_key(f)

    # ------------------------------------------------------------------
    # stateful transformation
    # ------------------------------------------------------------------
    def update_state_by_key(
        self, update: Callable[[List[Any], Any], Any]
    ) -> "DStream":
        """Running per-key state: ``update(new_values, old_state) -> state``.

        Emits the full state map each interval (as Spark Streaming
        does).  ``old_state`` is ``None`` for unseen keys; returning
        ``None`` drops the key.  Emission order is deterministic but
        sorted on a type-then-repr surrogate, not on the keys
        themselves — key sets mixing non-comparable types (``int`` and
        ``str`` unit ids, say) are legal stream keys and must not crash
        the stateful operator.
        """
        state: Dict[Any, Any] = {}

        def stable_key(item: Tuple[Any, Any]) -> Tuple[str, str]:
            key = item[0]
            return (type(key).__name__, repr(key))

        def on_batch(_t: int, rdd: RDD) -> RDD:
            grouped = dict(rdd.group_by_key().collect())
            for key in set(state) | set(grouped):
                new_state = update(grouped.get(key, []), state.get(key))
                if new_state is None:
                    state.pop(key, None)
                else:
                    state[key] = new_state
            return self.ssc.sc.parallelize(sorted(state.items(), key=stable_key))

        return self._derive(on_batch)

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    def foreach_rdd(self, f: Callable[[int, RDD], None]) -> None:
        """Register an output action run on every interval's RDD."""
        self._children.append(f)

    def collect_batches(self, sink: List[List[Any]]) -> None:
        """Convenience output: append each micro-batch's elements to ``sink``."""
        self.foreach_rdd(lambda _t, rdd: sink.append(rdd.collect()))


class _SourceDStream(DStream):
    """Root stream pulling micro-batches from an iterator."""

    def __init__(self, ssc: StreamingContext, batches: Iterator[List[Any]]) -> None:
        super().__init__(ssc)
        self._batches = batches
        self._exhausted = False

    def _advance(self, time_index: int) -> bool:
        if self._exhausted:
            return False
        batch = next(self._batches, None)
        if batch is None:
            self._exhausted = True
            return False
        rdd = self.ssc.sc.parallelize(list(batch))
        self._emit(time_index, rdd)
        return True
