"""Sparklet: a from-scratch Spark-like batch dataflow engine.

Lazy RDDs, hash-shuffled wide transformations, a stage-splitting DAG
scheduler over a thread executor pool, distributed row-matrix linear
algebra, and a checksummed block store — the substrate the paper's
offline FDR training job runs on.
"""

from .context import Accumulator, Broadcast, SparkletContext
from .linalg import RowMatrix
from .partitioner import HashPartitioner, Partitioner, RangePartitioner
from .rdd import RDD, MapPartitionsRDD, ParallelCollectionRDD, ShuffledRDD, UnionRDD
from .scheduler import DAGScheduler, JobMetrics
from .shuffle import Aggregator, ShuffleManager
from .storage import BlockCorruptionError, BlockStore
from .streaming import DStream, StreamingContext

__all__ = [
    "Accumulator",
    "Aggregator",
    "BlockCorruptionError",
    "BlockStore",
    "Broadcast",
    "DAGScheduler",
    "DStream",
    "HashPartitioner",
    "JobMetrics",
    "MapPartitionsRDD",
    "ParallelCollectionRDD",
    "Partitioner",
    "RDD",
    "RangePartitioner",
    "RowMatrix",
    "ShuffleManager",
    "ShuffledRDD",
    "SparkletContext",
    "StreamingContext",
    "UnionRDD",
]
