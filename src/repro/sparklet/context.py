"""SparkletContext: the entry point to the dataflow engine.

Owns the executor pool, the shuffle manager, the partition cache, and
broadcast/accumulator bookkeeping.  Thread-based executors give real
parallelism for NumPy-heavy tasks (BLAS releases the GIL); the
``serial`` mode is deterministic and is what the test-suite uses.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Generic, Iterator, List, Optional, Sequence, Tuple, TypeVar

from ..analysis.raceaudit import assert_holds, audited_lock
from .rdd import RDD, ParallelCollectionRDD
from .scheduler import DAGScheduler
from .shuffle import ShuffleManager

T = TypeVar("T")

__all__ = ["SparkletContext", "Broadcast", "Accumulator"]


class Broadcast(Generic[T]):
    """Read-only value shared with every task.

    In-process this is a thin wrapper, but user code written against it
    keeps the Spark structure (and the scheduler could later ship it).
    """

    def __init__(self, value: T) -> None:
        self._value = value

    @property
    def value(self) -> T:
        return self._value


class Accumulator:
    """Add-only shared counter (thread-safe)."""

    def __init__(self, initial: float = 0.0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class SparkletContext:
    """Driver context.

    Parameters
    ----------
    parallelism:
        Default number of partitions for ``parallelize`` and the size
        of the thread executor pool.
    executor:
        ``"threads"`` (default) or ``"serial"``.
    """

    def __init__(self, parallelism: int = 4, executor: str = "threads") -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if executor not in ("threads", "serial"):
            raise ValueError("executor must be 'threads' or 'serial'")
        self.parallelism = parallelism
        self.shuffle_manager = ShuffleManager()
        self._rdd_ids = itertools.count()
        self._shuffle_ids = itertools.count()
        self._cache: Dict[Tuple[int, int], List[Any]] = {}  # guarded-by: _cache_lock
        self._cache_lock = audited_lock("sparklet.context.cache")
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=parallelism, thread_name_prefix="sparklet")
            if executor == "threads"
            else None
        )
        self.scheduler = DAGScheduler(self)
        self._stopped = False

    # ------------------------------------------------------------------
    # data sources
    # ------------------------------------------------------------------
    def parallelize(self, data: Sequence[T], num_slices: Optional[int] = None) -> RDD[T]:
        """Distribute an in-memory sequence into an RDD."""
        self._check_active()
        n = num_slices if num_slices is not None else self.parallelism
        return ParallelCollectionRDD(self, list(data), n)

    def range(self, start: int, end: Optional[int] = None, step: int = 1,
              num_slices: Optional[int] = None) -> RDD[int]:
        """RDD over a Python range."""
        if end is None:
            start, end = 0, start
        return self.parallelize(range(start, end, step), num_slices)

    def map_tasks(
        self,
        func: Callable[[T], Any],
        items: Sequence[T],
        num_slices: Optional[int] = None,
    ) -> List[Any]:
        """Run ``func`` over ``items`` on the executor pool, in order.

        Convenience for embarrassingly-parallel fan-out (one logical
        task per item) without the parallelize/map/collect dance; the
        fleet evaluation engine scores units through this.  Results are
        returned in ``items`` order regardless of executor interleaving.
        """
        self._check_active()
        data = list(items)
        if not data:
            return []
        n = num_slices if num_slices is not None else min(len(data), self.parallelism * 4)
        return self.parallelize(data, n).map(func).collect()

    def broadcast(self, value: T) -> Broadcast[T]:
        return Broadcast(value)

    def accumulator(self, initial: float = 0.0) -> Accumulator:
        return Accumulator(initial)

    # ------------------------------------------------------------------
    # execution plumbing (used by RDD/scheduler)
    # ------------------------------------------------------------------
    def run_job(
        self,
        rdd: RDD,
        func: Callable[[Iterator], Any],
        partitions: Optional[Sequence[int]] = None,
    ) -> List[Any]:
        self._check_active()
        return self.scheduler.run_job(rdd, func, partitions)

    def _iterator(self, rdd: RDD, split: int) -> Iterator:
        """Compute (or fetch from cache) one partition of ``rdd``."""
        if not rdd.is_cached:
            return rdd.compute(split)
        key = (rdd.rdd_id, split)
        with self._cache_lock:
            hit = self._cache_peek(key)
        if hit is not None:
            return iter(hit)
        data = list(rdd.compute(split))
        with self._cache_lock:
            self._cache[key] = data
        return iter(data)

    def _cache_peek(self, key: Tuple[int, int]) -> Optional[List[Any]]:
        """Cached partition lookup; caller holds ``_cache_lock``."""
        assert_holds(self._cache_lock)
        return self._cache.get(key)

    def _evict_cache(self, rdd_id: int) -> None:
        with self._cache_lock:
            for key in [k for k in self._cache if k[0] == rdd_id]:
                del self._cache[key]

    def _next_rdd_id(self) -> int:
        return next(self._rdd_ids)

    def _next_shuffle_id(self) -> int:
        return next(self._shuffle_ids)

    def _check_active(self) -> None:
        if self._stopped:
            raise RuntimeError("context has been stopped")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Shut down the executor pool and drop caches/shuffle state."""
        if self._stopped:
            return
        self._stopped = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        with self._cache_lock:
            self._cache.clear()

    def __enter__(self) -> "SparkletContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
