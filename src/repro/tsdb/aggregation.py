"""Series aggregation and downsampling.

Vectorised (NumPy) implementations of the OpenTSDB aggregation
semantics the query engine needs: combining multiple series into one
(``sum``/``avg``/``min``/``max``/``count``/``dev``), downsampling a
single series onto fixed windows, and rate conversion.

Series are represented as a pair of parallel arrays ``(timestamps,
values)`` with ``timestamps`` strictly increasing ``int64`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["Series", "AGGREGATORS", "aggregate", "downsample", "rate", "align_union"]


@dataclass(frozen=True)
class Series:
    """One time series with identifying tags."""

    tags: Tuple[Tuple[str, str], ...]
    timestamps: np.ndarray  # int64 seconds, strictly increasing
    values: np.ndarray  # float64

    def __post_init__(self) -> None:
        ts, vs = np.asarray(self.timestamps), np.asarray(self.values)
        if ts.shape != vs.shape or ts.ndim != 1:
            raise ValueError("timestamps and values must be 1-D and equal length")
        if len(ts) > 1 and not np.all(np.diff(ts) > 0):
            raise ValueError("timestamps must be strictly increasing")
        object.__setattr__(self, "timestamps", ts.astype(np.int64))
        object.__setattr__(self, "values", vs.astype(np.float64))

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def tag_dict(self) -> Dict[str, str]:
        return dict(self.tags)


def _nan_agg(fn: Callable[..., np.ndarray]) -> Callable[[np.ndarray], np.ndarray]:
    """Column-wise nan-reduction that stays silent on all-NaN columns.

    ``np.nanmean``/``nanmin``/``nanmax``/``nanstd`` emit a
    ``RuntimeWarning`` (via ``warnings.warn``, which ``np.errstate``
    does *not* suppress) for all-NaN slices; sparse unions hit that
    during perfectly normal aggregation.  All-NaN columns are masked to
    0.0 before the reduction and restored to NaN afterwards — other
    columns are reduced bit-identically.  ``nansum`` is excluded: it
    never warns, and masking would change its documented all-NaN
    result (0.0) to NaN.
    """

    def agg(stack: np.ndarray) -> np.ndarray:
        all_nan = np.all(np.isnan(stack), axis=0)
        if not np.any(all_nan):
            return np.asarray(fn(stack, axis=0))
        safe = np.where(all_nan[np.newaxis, :], 0.0, stack)
        out = np.asarray(fn(safe, axis=0), dtype=np.float64)
        out[all_nan] = np.nan
        return out

    return agg


AGGREGATORS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sum": lambda stack: np.nansum(stack, axis=0),
    "avg": _nan_agg(np.nanmean),
    "min": _nan_agg(np.nanmin),
    "max": _nan_agg(np.nanmax),
    "count": lambda stack: np.sum(~np.isnan(stack), axis=0).astype(np.float64),
    "dev": _nan_agg(np.nanstd),
}


def _nan_scalar(fn: Callable[[np.ndarray], float]) -> Callable[[np.ndarray], float]:
    """Scalar nan-reduction with the same all-NaN silence guarantee."""

    def agg(group: np.ndarray) -> float:
        if np.all(np.isnan(group)):
            return float("nan")
        return float(fn(group))

    return agg


# Scalar reductions over one window (used by downsampling).
_SCALAR_AGGREGATORS: Dict[str, Callable[[np.ndarray], float]] = {
    "sum": lambda g: float(np.nansum(g)),
    "avg": _nan_scalar(np.nanmean),
    "min": _nan_scalar(np.nanmin),
    "max": _nan_scalar(np.nanmax),
    "count": lambda g: float(np.sum(~np.isnan(g))),
    "dev": _nan_scalar(np.nanstd),
}


def align_union(series: Sequence[Series]) -> Tuple[np.ndarray, np.ndarray]:
    """Align series on the union of their timestamps.

    Returns ``(times, stack)`` where ``stack[i, j]`` is series ``i``'s
    value at ``times[j]`` or NaN where the series has no sample (the
    OpenTSDB interpolation policy simplified to "missing = absent",
    which is correct for the 1 Hz aligned sensor data this system
    ingests).
    """
    if not series:
        return np.empty(0, dtype=np.int64), np.empty((0, 0))
    times = np.unique(np.concatenate([s.timestamps for s in series]))
    stack = np.full((len(series), len(times)), np.nan)
    for i, s in enumerate(series):
        idx = np.searchsorted(times, s.timestamps)
        stack[i, idx] = s.values
    return times, stack


def aggregate(series: Sequence[Series], aggregator: str) -> Series:
    """Combine many series into one using the named aggregator.

    Tags kept are those common to (identical across) all inputs, as in
    OpenTSDB's group-by output.
    """
    if aggregator not in AGGREGATORS:
        raise ValueError(f"unknown aggregator {aggregator!r}; choose from {sorted(AGGREGATORS)}")
    if not series:
        raise ValueError("cannot aggregate zero series")
    # No single-series shortcut: one matching series must flow through
    # the same tag-reduction, float64 cast, and aggregator semantics as
    # N (``count`` yields ones, ``dev`` zeros) so the group-by output
    # schema does not depend on how many series matched.
    times, stack = align_union(series)
    values = AGGREGATORS[aggregator](stack)
    common = set(series[0].tags)
    for s in series[1:]:
        common &= set(s.tags)
    return Series(tuple(sorted(common)), times, values)


def downsample(series: Series, window: int, aggregator: str = "avg") -> Series:
    """Downsample onto fixed windows of ``window`` seconds.

    Each output point sits at the window start (OpenTSDB convention);
    empty windows produce no point.
    """
    if window < 1:
        raise ValueError("window must be >= 1 second")
    if aggregator not in _SCALAR_AGGREGATORS:
        raise ValueError(f"unknown aggregator {aggregator!r}")
    if len(series) == 0:
        return series
    buckets = (series.timestamps // window) * window
    # Group contiguous runs of equal bucket (timestamps are sorted).
    boundaries = np.flatnonzero(np.diff(buckets)) + 1
    groups = np.split(series.values, boundaries)
    out_times = buckets[np.concatenate(([0], boundaries))] if len(boundaries) else buckets[:1]
    agg = _SCALAR_AGGREGATORS[aggregator]
    out_values = np.array([agg(g) for g in groups])
    return Series(series.tags, out_times, out_values)


def rate(series: Series, counter: bool = False, max_value: float | None = None) -> Series:
    """First-difference rate (per second), as OpenTSDB's ``rate`` option.

    With ``counter=True`` negative deltas are treated as counter wraps
    at ``max_value`` (default: 2**64).
    """
    if len(series) < 2:
        return Series(series.tags, series.timestamps[:0], series.values[:0])
    dt = np.diff(series.timestamps).astype(np.float64)
    dv = np.diff(series.values)
    if counter:
        wrap = max_value if max_value is not None else float(2**64)
        negative = dv < 0
        dv = np.where(negative, dv + wrap, dv)
    return Series(series.tags, series.timestamps[1:], dv / dt)
