"""Series aggregation and downsampling.

Vectorised (NumPy) implementations of the OpenTSDB aggregation
semantics the query engine needs: combining multiple series into one
(``sum``/``avg``/``min``/``max``/``count``/``dev``), downsampling a
single series onto fixed windows, and rate conversion.

A :class:`Series` is a thin view over a columnar
:class:`~repro.tsdb.blocks.SeriesBlock`: the canonical storage is the
block's contiguous stdlib-``array`` columns, and ``timestamps`` /
``values`` are zero-copy NumPy views of that memory (strictly
increasing ``int64`` seconds / ``float64``).  Point-wise access
(``Series(points=...)``, ``iter_points``) is a compatibility shim — the
aggregation kernels below consume the columns directly.
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .blocks import SeriesBlock, TS_TYPECODE, VAL_TYPECODE

__all__ = ["Series", "AGGREGATORS", "aggregate", "downsample", "rate", "align_union"]


class Series:
    """One time series with identifying tags, viewed over a block.

    Accepts the historical positional form ``Series(tags, timestamps,
    values)`` (any array-likes; coerced to int64/float64), the
    point-wise shim ``Series(points=...)``, or the zero-copy
    ``Series.from_block(block)``.  Whatever the construction route, the
    data lives in one :class:`SeriesBlock` and the NumPy accessors view
    its buffers without copying.
    """

    __slots__ = ("_block", "_tags", "_ts_view", "_vals_view")

    def __init__(
        self,
        tags: Optional[Tuple[Tuple[str, str], ...]] = None,
        timestamps: object = None,
        values: object = None,
        *,
        points: Optional[Iterable] = None,
        block: Optional[SeriesBlock] = None,
    ) -> None:
        if block is not None:
            if timestamps is not None or values is not None or points is not None:
                raise ValueError("block= excludes timestamps/values/points")
            self._adopt(block, tuple(tags) if tags is not None else block.tags)
            return
        if points is not None:
            if timestamps is not None or values is not None:
                raise ValueError("points= excludes timestamps/values")
            blk = SeriesBlock.from_points(points)
            self._adopt(blk, tuple(tags) if tags is not None else blk.tags)
            self._validate()
            return
        ts = np.asarray(timestamps if timestamps is not None else ())
        vs = np.asarray(values if values is not None else ())
        if ts.shape != vs.shape or ts.ndim != 1:
            raise ValueError("timestamps and values must be 1-D and equal length")
        col_ts = array(TS_TYPECODE)
        col_ts.frombytes(np.ascontiguousarray(ts, dtype=np.int64).tobytes())
        col_vals = array(VAL_TYPECODE)
        col_vals.frombytes(np.ascontiguousarray(vs, dtype=np.float64).tobytes())
        blk = SeriesBlock("", tuple(tags or ()), col_ts, col_vals, _trusted=True)
        self._adopt(blk, tuple(tags or ()))
        self._validate()

    def _adopt(self, block: SeriesBlock, tags: Tuple[Tuple[str, str], ...]) -> None:
        # Tag order is preserved exactly as given: group-by output sorts
        # tags, but pass-through transforms (downsample/rate) must not.
        self._block = block
        self._tags = tags
        self._ts_view: Optional[np.ndarray] = None
        self._vals_view: Optional[np.ndarray] = None

    def _validate(self) -> None:
        ts = self.timestamps
        if len(ts) > 1 and not np.all(np.diff(ts) > 0):
            raise ValueError("timestamps must be strictly increasing")

    @classmethod
    def from_block(cls, block: SeriesBlock, validate: bool = True) -> "Series":
        """Zero-copy view over an existing block (the hot read path)."""
        self = cls.__new__(cls)
        self._adopt(block, block.tags)
        if validate:
            self._validate()
        return self

    @property
    def block(self) -> SeriesBlock:
        """The underlying columnar block."""
        return self._block

    @property
    def metric(self) -> str:
        """Metric name, when known (empty for ad-hoc derived series)."""
        return self._block.metric

    @property
    def tags(self) -> Tuple[Tuple[str, str], ...]:
        return self._tags

    @property
    def timestamps(self) -> np.ndarray:
        """int64 seconds, strictly increasing — zero-copy block view."""
        if self._ts_view is None:
            self._ts_view = np.frombuffer(self._block.timestamps, dtype=np.int64)
        return self._ts_view

    @property
    def values(self) -> np.ndarray:
        """float64 samples — zero-copy block view."""
        if self._vals_view is None:
            self._vals_view = np.frombuffer(self._block.values, dtype=np.float64)
        return self._vals_view

    @property
    def points(self) -> Tuple:
        """Boxed :class:`DataPoint` view (compatibility shim only)."""
        return tuple(self._block.iter_points())

    def iter_points(self) -> Iterator:
        """Iterate boxed points (compatibility shim, not a hot path)."""
        return self._block.iter_points()

    def __len__(self) -> int:
        return len(self._block)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Series):
            return NotImplemented
        return (
            self._tags == other._tags
            and self._block.metric == other._block.metric
            and bytes(self._block.timestamps) == bytes(other._block.timestamps)
            and bytes(self._block.values) == bytes(other._block.values)
        )

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Series(tags={self._tags!r}, n={len(self)})"

    @property
    def tag_dict(self) -> Dict[str, str]:
        return dict(self._tags)


def _nan_agg(fn: Callable[..., np.ndarray]) -> Callable[[np.ndarray], np.ndarray]:
    """Column-wise nan-reduction that stays silent on all-NaN columns.

    ``np.nanmean``/``nanmin``/``nanmax``/``nanstd`` emit a
    ``RuntimeWarning`` (via ``warnings.warn``, which ``np.errstate``
    does *not* suppress) for all-NaN slices; sparse unions hit that
    during perfectly normal aggregation.  All-NaN columns are masked to
    0.0 before the reduction and restored to NaN afterwards — other
    columns are reduced bit-identically.  ``nansum`` is excluded: it
    never warns, and masking would change its documented all-NaN
    result (0.0) to NaN.
    """

    def agg(stack: np.ndarray) -> np.ndarray:
        all_nan = np.all(np.isnan(stack), axis=0)
        if not np.any(all_nan):
            return np.asarray(fn(stack, axis=0))
        safe = np.where(all_nan[np.newaxis, :], 0.0, stack)
        out = np.asarray(fn(safe, axis=0), dtype=np.float64)
        out[all_nan] = np.nan
        return out

    return agg


AGGREGATORS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sum": lambda stack: np.nansum(stack, axis=0),
    "avg": _nan_agg(np.nanmean),
    "min": _nan_agg(np.nanmin),
    "max": _nan_agg(np.nanmax),
    "count": lambda stack: np.sum(~np.isnan(stack), axis=0).astype(np.float64),
    "dev": _nan_agg(np.nanstd),
}


def _nan_scalar(fn: Callable[[np.ndarray], float]) -> Callable[[np.ndarray], float]:
    """Scalar nan-reduction with the same all-NaN silence guarantee."""

    def agg(group: np.ndarray) -> float:
        if np.all(np.isnan(group)):
            return float("nan")
        return float(fn(group))

    return agg


# Scalar reductions over one window (used by downsampling).
_SCALAR_AGGREGATORS: Dict[str, Callable[[np.ndarray], float]] = {
    "sum": lambda g: float(np.nansum(g)),
    "avg": _nan_scalar(np.nanmean),
    "min": _nan_scalar(np.nanmin),
    "max": _nan_scalar(np.nanmax),
    "count": lambda g: float(np.sum(~np.isnan(g))),
    "dev": _nan_scalar(np.nanstd),
}


def align_union(series: Sequence[Series]) -> Tuple[np.ndarray, np.ndarray]:
    """Align series on the union of their timestamps.

    Returns ``(times, stack)`` where ``stack[i, j]`` is series ``i``'s
    value at ``times[j]`` or NaN where the series has no sample (the
    OpenTSDB interpolation policy simplified to "missing = absent",
    which is correct for the 1 Hz aligned sensor data this system
    ingests).
    """
    if not series:
        return np.empty(0, dtype=np.int64), np.empty((0, 0))
    times = np.unique(np.concatenate([s.timestamps for s in series]))
    stack = np.full((len(series), len(times)), np.nan)
    for i, s in enumerate(series):
        idx = np.searchsorted(times, s.timestamps)
        stack[i, idx] = s.values
    return times, stack


def aggregate(series: Sequence[Series], aggregator: str) -> Series:
    """Combine many series into one using the named aggregator.

    Tags kept are those common to (identical across) all inputs, as in
    OpenTSDB's group-by output.
    """
    if aggregator not in AGGREGATORS:
        raise ValueError(f"unknown aggregator {aggregator!r}; choose from {sorted(AGGREGATORS)}")
    if not series:
        raise ValueError("cannot aggregate zero series")
    # No single-series shortcut: one matching series must flow through
    # the same tag-reduction, float64 cast, and aggregator semantics as
    # N (``count`` yields ones, ``dev`` zeros) so the group-by output
    # schema does not depend on how many series matched.
    times, stack = align_union(series)
    values = AGGREGATORS[aggregator](stack)
    common = set(series[0].tags)
    for s in series[1:]:
        common &= set(s.tags)
    return Series(tuple(sorted(common)), times, values)


def downsample(series: Series, window: int, aggregator: str = "avg") -> Series:
    """Downsample onto fixed windows of ``window`` seconds.

    Each output point sits at the window start (OpenTSDB convention);
    empty windows produce no point.
    """
    if window < 1:
        raise ValueError("window must be >= 1 second")
    if aggregator not in _SCALAR_AGGREGATORS:
        raise ValueError(f"unknown aggregator {aggregator!r}")
    if len(series) == 0:
        return series
    buckets = (series.timestamps // window) * window
    # Group contiguous runs of equal bucket (timestamps are sorted).
    boundaries = np.flatnonzero(np.diff(buckets)) + 1
    groups = np.split(series.values, boundaries)
    out_times = buckets[np.concatenate(([0], boundaries))] if len(boundaries) else buckets[:1]
    agg = _SCALAR_AGGREGATORS[aggregator]
    out_values = np.array([agg(g) for g in groups])
    return Series(series.tags, out_times, out_values)


def rate(series: Series, counter: bool = False, max_value: float | None = None) -> Series:
    """First-difference rate (per second), as OpenTSDB's ``rate`` option.

    With ``counter=True`` negative deltas are treated as counter wraps
    at ``max_value`` (default: 2**64).
    """
    if len(series) < 2:
        return Series(series.tags, series.timestamps[:0], series.values[:0])
    dt = np.diff(series.timestamps).astype(np.float64)
    dv = np.diff(series.values)
    if counter:
        wrap = max_value if max_value is not None else float(2**64)
        negative = dv < 0
        dv = np.where(negative, dv + wrap, dv)
    return Series(series.tags, series.timestamps[1:], dv / dt)
