"""OpenTSDB-like time-series database layer over the simulated HBase.

Implements the paper's ingestion architecture: UID-interned salted row
keys, per-node TSD daemons with AsyncHBase-style write coalescing, the
buffering reverse proxy with round-robin load balancing, row
compaction, and the query engine used by analysis and visualization.
"""

from .aggregation import AGGREGATORS, Series, aggregate, align_union, downsample, rate
from .blocks import BlockBatch, SeriesBlock, blocks_from_points
from .compaction import (
    COMPACTED_MARKER,
    RowCompactor,
    compact_row_cells,
    decompact_block,
    decompact_cell,
    decompact_columns,
    is_compacted,
)
from .lineprotocol import (
    LineProtocolError,
    format_put_line,
    parse_block,
    parse_lines,
    parse_put_line,
)
from .ingest import (
    ClusterConfig,
    IngestionDriver,
    IngestionReport,
    TsdbCluster,
    build_cluster,
)
from .proxy import DirectSubmitter, ReverseProxy
from .publish import BatchPublisher, PublishReport
from .query import ConsistentResult, QueryEngine, TsdbQuery, group_and_aggregate
from .readpath import AsyncQueryExecutor, AsyncQueryResult
from .rowkey import ROW_SPAN_SECONDS, DecodedKey, RowKeyCodec
from .tsd import DATA_TABLE, DataPoint, PutAck, TSDaemon, TSDServiceModel
from .uid import UniqueIdRegistry, UnknownUidError

__all__ = [
    "AGGREGATORS",
    "AsyncQueryExecutor",
    "AsyncQueryResult",
    "BatchPublisher",
    "BlockBatch",
    "COMPACTED_MARKER",
    "ClusterConfig",
    "ConsistentResult",
    "DATA_TABLE",
    "DataPoint",
    "DecodedKey",
    "DirectSubmitter",
    "IngestionDriver",
    "IngestionReport",
    "LineProtocolError",
    "PublishReport",
    "PutAck",
    "QueryEngine",
    "ROW_SPAN_SECONDS",
    "ReverseProxy",
    "RowCompactor",
    "RowKeyCodec",
    "Series",
    "SeriesBlock",
    "TSDServiceModel",
    "TSDaemon",
    "TsdbCluster",
    "TsdbQuery",
    "UniqueIdRegistry",
    "UnknownUidError",
    "aggregate",
    "align_union",
    "blocks_from_points",
    "build_cluster",
    "compact_row_cells",
    "decompact_block",
    "decompact_cell",
    "decompact_columns",
    "downsample",
    "format_put_line",
    "group_and_aggregate",
    "is_compacted",
    "parse_block",
    "parse_lines",
    "parse_put_line",
    "rate",
]
