"""Buffering reverse proxy in front of the TSD daemons.

Reproduces the component the paper built after RegionServers "crashed
frequently due to overloaded RPC queues", hardened for component
failure (the half of §III-B the happy-path reproduction left out):

* **Backpressure** — at most ``max_in_flight`` put batches are
  outstanding at once; excess batches wait in an internal buffer rather
  than piling onto TSD/RegionServer queues.
* **Load balancing with liveness** — buffered batches are dispatched to
  the TSD daemons round-robin, skipping daemons whose node is down or
  whose process has crashed.
* **Circuit breaking** — consecutive failures against one TSD eject it
  from the rotation (*open*); after ``eject_duration`` a single
  *half-open* probe batch tests it, and a success closes the breaker.
  If every breaker is open the proxy falls back to treating all live
  TSDs as candidates rather than deadlocking (*all-open fallback*).
* **Bounded retry with backoff** — a bounced, timed-out, or partially
  written batch is retried with exponential backoff and deterministic
  (seeded) jitter, up to ``max_batch_retries`` attempts; exhausted
  batches resolve to a *permanent-failure* ack instead of silently
  recirculating forever.
* **Partial-batch retry** — a batch acked with ``0 < written <
  len(points)`` resubmits only its unwritten tail, so durably written
  points are neither dropped (the old behaviour) nor re-sent.
* **Ack timeouts** — a dispatch with no ack after ``ack_timeout``
  (crashed TSD swallowed it, partition dropped it) is treated as a
  failure and retried; a late ack for a timed-out dispatch is ignored.

The E7 ablation compares this against a fire-and-forget path
(:class:`DirectSubmitter`) which reproduces the crash behaviour.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

import numpy as np

from ..cluster.metrics import MetricsRegistry
from ..cluster.network import Network
from ..cluster.simulation import EventHandle, Simulator
from ..obs.telemetry import component_registry
from ..obs.trace import NULL_SPAN, SpanLike, Tracer
from .tsd import DataPoint, PutAck, TSDaemon

__all__ = ["ReverseProxy", "DirectSubmitter", "TsdBreaker"]

AckCallback = Callable[[PutAck], None]

#: Sentinel "tsd" name on a permanent-failure ack synthesized by the proxy.
PROXY_EXHAUSTED = "proxy-exhausted"


class TsdBreaker:
    """Per-TSD circuit breaker: closed → open → half-open → closed.

    ``record_failure`` counts consecutive failures; at
    ``failure_threshold`` the breaker opens (the TSD leaves the
    rotation) for ``eject_duration`` seconds.  After that, ``available``
    admits exactly one half-open probe dispatch; its outcome either
    closes the breaker or re-opens it for another full ejection period.
    """

    __slots__ = ("failure_threshold", "eject_duration", "consecutive_failures",
                 "state", "opened_at", "probe_in_flight", "ejections")

    def __init__(self, failure_threshold: int, eject_duration: float) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if eject_duration <= 0:
            raise ValueError("eject_duration must be positive")
        self.failure_threshold = failure_threshold
        self.eject_duration = eject_duration
        self.consecutive_failures = 0
        self.state = "closed"
        self.opened_at = 0.0
        self.probe_in_flight = False
        self.ejections = 0

    def available(self, now: float) -> bool:
        """May a dispatch be routed here right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            return now - self.opened_at >= self.eject_duration
        return not self.probe_in_flight  # half-open: one probe at a time

    def on_dispatch(self, now: float) -> None:
        """Note that a dispatch was routed here (may start a probe)."""
        if self.state == "open" and now - self.opened_at >= self.eject_duration:
            self.state = "half-open"
            self.probe_in_flight = True
        elif self.state == "half-open":
            self.probe_in_flight = True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = "closed"
        self.probe_in_flight = False

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == "half-open" or (
            self.state == "closed"
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = "open"
            self.opened_at = now
            self.ejections += 1
        self.probe_in_flight = False

    @property
    def open(self) -> bool:
        return self.state == "open"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TsdBreaker {self.state} fails={self.consecutive_failures}>"


class _BatchState:
    """One submitted batch's delivery lifecycle across retries.

    ``remaining`` is the unwritten tail still owed to storage;
    ``written`` accumulates durably acknowledged points across partial
    acks.  Per-batch conservation: at final ack time,
    ``written + failed == len(original points)``.
    """

    __slots__ = ("remaining", "on_ack", "attempts", "written", "submitted_at",
                 "batch_id", "span")

    def __init__(
        self,
        points,
        on_ack: Optional[AckCallback],
        submitted_at: float,
        batch_id: int = 0,
        span: SpanLike = NULL_SPAN,
    ) -> None:
        # ``points`` is any point-sequence payload — a DataPoint list or
        # a columnar BlockBatch.  The delivery machinery only takes
        # ``len()`` and point-granular tail slices, so partial-ack
        # retries work identically for both shapes.
        self.remaining = points
        self.on_ack = on_ack
        self.attempts = 0
        self.written = 0
        self.submitted_at = submitted_at
        self.batch_id = batch_id
        self.span = span


class _Dispatch:
    """One wire-level attempt of a batch; guards against double resolution."""

    __slots__ = ("state", "tsd_index", "sent", "resolved", "timeout_handle", "span")

    def __init__(
        self, state: _BatchState, tsd_index: int, sent: int, span: SpanLike = NULL_SPAN
    ) -> None:
        self.state = state
        self.tsd_index = tsd_index
        self.sent = sent
        self.resolved = False
        self.timeout_handle: Optional[EventHandle] = None
        self.span = span


class ReverseProxy:
    """Health-aware, bounded-in-flight buffer in front of the TSDs.

    Parameters
    ----------
    max_in_flight:
        Outstanding dispatch window (backpressure bound).
    retry_delay:
        Base of the exponential retry backoff (attempt ``k`` waits
        ``retry_delay * backoff_mult**k``, jittered, capped at
        ``max_backoff``).
    max_batch_retries:
        Retry budget per batch; exhaustion resolves the batch to a
        permanent-failure ack instead of recirculating it forever.
    failure_threshold / eject_duration:
        Circuit-breaker tuning: consecutive failures that open a TSD's
        breaker, and how long it stays ejected before a half-open
        probe.  ``failure_threshold=None`` disables the breakers.
    ack_timeout:
        Seconds a dispatch may await its ack before being declared lost
        and retried.  ``None`` disables timeouts (a crashed TSD then
        wedges the window — the pre-hardening behaviour).
    seed:
        Seeds the jitter RNG so retry schedules are deterministic.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tsds: Sequence[TSDaemon],
        host: str = "proxy",
        max_in_flight: int = 64,
        retry_delay: float = 0.05,
        backoff_mult: float = 2.0,
        max_backoff: float = 1.0,
        max_batch_retries: int = 12,
        failure_threshold: Optional[int] = 3,
        eject_duration: float = 0.5,
        ack_timeout: Optional[float] = 5.0,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not tsds:
            raise ValueError("proxy needs at least one TSD")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_batch_retries < 0:
            raise ValueError("max_batch_retries must be >= 0")
        if ack_timeout is not None and ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive (or None)")
        self.sim = sim
        self.network = network
        self.tsds = list(tsds)
        self.host = host
        self.max_in_flight = max_in_flight
        self.retry_delay = retry_delay
        self.backoff_mult = backoff_mult
        self.max_backoff = max_backoff
        self.max_batch_retries = max_batch_retries
        self.ack_timeout = ack_timeout
        self.metrics = metrics if metrics is not None else component_registry("proxy")
        self.tracer = tracer if tracer is not None else Tracer()
        self._batch_seq = itertools.count(1)
        self._rng = np.random.default_rng(seed)
        self.breakers: Optional[List[TsdBreaker]] = (
            [TsdBreaker(failure_threshold, eject_duration) for _ in tsds]
            if failure_threshold is not None
            else None
        )
        self._buffer: Deque[_BatchState] = deque()
        self._in_flight = 0
        self._rr = 0
        self.buffer_high_water = 0
        self.dispatched = 0
        self.retried = 0
        self.partial_retries = 0
        self.ack_timeouts = 0
        self.failed_batches = 0
        self.failed_points = 0

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    def submit(self, points, on_ack: Optional[AckCallback] = None) -> None:
        """Accept a put batch; buffered if the in-flight window is full.

        ``points`` may be a :class:`DataPoint` list or a columnar
        :class:`~repro.tsdb.blocks.BlockBatch` — the proxy is
        payload-shape-agnostic (length, tail slicing, and forwarding
        are all it ever does), so block batches inherit the breakers,
        bounded retries, and ack-timeout machinery unchanged.
        """
        batch_id = next(self._batch_seq)
        # Root span of the batch's trace: submit() to final aggregate
        # ack, spanning every dispatch/retry in between.
        span = self.tracer.begin("proxy.batch", batch_id=batch_id, points=len(points))
        self._enqueue(_BatchState(points, on_ack, self.sim.now, batch_id, span))

    def _enqueue(self, state: _BatchState) -> None:
        self._buffer.append(state)
        self.buffer_high_water = max(self.buffer_high_water, len(self._buffer))
        self._drain()

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def breaker_ejections(self) -> int:
        """Total times any TSD was ejected from the rotation."""
        if self.breakers is None:
            return 0
        return sum(b.ejections for b in self.breakers)

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while self._buffer and self._in_flight < self.max_in_flight:
            self._dispatch(self._buffer.popleft())

    def _alive(self, tsd: TSDaemon) -> bool:
        return tsd.node.up and not tsd.crashed

    def _select_tsd(self) -> Optional[int]:
        """Next healthy TSD index: round-robin over live, breaker-admitted TSDs.

        Falls back to ignoring breaker state when every live TSD's
        breaker is open (all-open fallback), and returns ``None`` only
        when no TSD is alive at all.
        """
        n = len(self.tsds)
        now = self.sim.now
        fallback: Optional[int] = None
        for offset in range(n):
            idx = (self._rr + offset) % n
            tsd = self.tsds[idx]
            if not self._alive(tsd):
                continue
            if fallback is None:
                fallback = idx
            if self.breakers is not None and not self.breakers[idx].available(now):
                continue
            self._rr = idx + 1
            return idx
        if fallback is not None:
            self.metrics.counter("proxy.all_open_fallback").inc()
            self._rr = fallback + 1
            return fallback
        return None

    def _dispatch(self, state: _BatchState) -> None:
        idx = self._select_tsd()
        if idx is None:
            # Nothing alive to talk to: back off and retry (bounded).
            self._retry_later(state)
            return
        tsd = self.tsds[idx]
        if self.breakers is not None:
            self.breakers[idx].on_dispatch(self.sim.now)
        route_span = self.tracer.begin(
            "proxy.route",
            parent=state.span,
            batch_id=state.batch_id,
            tsd=tsd.name,
            attempt=state.attempts,
        )
        dispatch = _Dispatch(state, idx, len(state.remaining), route_span)
        self._in_flight += 1
        self.dispatched += 1
        if self.ack_timeout is not None:
            dispatch.timeout_handle = self.sim.schedule(
                self.ack_timeout, self._on_timeout, dispatch
            )
        handle = self.network.send(
            self.host,
            tsd.node.hostname,
            tsd.put_batch,
            state.remaining,
            lambda ack: self._on_tsd_ack(dispatch, ack),
            self.host,
            state.batch_id,
        )
        if handle is None:
            # The network dropped the send (partition): fail fast rather
            # than waiting out the ack timeout.  No _drain() here — this
            # runs inside the _drain loop, which continues on its own.
            self._settle(dispatch)
            dispatch.span.end(outcome="partition-drop")
            if self.breakers is not None:
                self.breakers[idx].record_failure(self.sim.now)
            self._retry_later(state)

    # ------------------------------------------------------------------
    # ack / failure handling
    # ------------------------------------------------------------------
    def _on_tsd_ack(self, dispatch: _Dispatch, ack: PutAck) -> None:
        if dispatch.resolved:
            self.metrics.counter("proxy.late_acks").inc()
            return
        self._settle(dispatch)
        dispatch.span.end(
            outcome="ack" if ack.written >= dispatch.sent else
            ("partial" if ack.written > 0 else "bounce"),
            written=ack.written,
        )
        state = dispatch.state
        if ack.written >= dispatch.sent:
            # Fully written: the batch is done.
            if self.breakers is not None:
                self.breakers[dispatch.tsd_index].record_success()
            state.written += ack.written
            self._finish(state, ok=True, tsd=ack.tsd)
        elif ack.written > 0:
            # Partial write: keep the durable prefix, resubmit only the
            # unwritten tail (the old proxy silently dropped it).
            if self.breakers is not None:
                self.breakers[dispatch.tsd_index].record_success()
            state.written += ack.written
            state.remaining = state.remaining[ack.written:]
            self.partial_retries += 1
            self.metrics.counter("proxy.partial_retries").inc()
            self._retry_later(state)
        else:
            # Whole batch bounced (TSD queue full / stopped).
            if self.breakers is not None:
                self.breakers[dispatch.tsd_index].record_failure(self.sim.now)
            self._retry_later(state)
        self._drain()

    def _on_timeout(self, dispatch: _Dispatch) -> None:
        """No ack within ``ack_timeout``: the batch was swallowed or dropped."""
        if dispatch.resolved:
            return
        self._settle(dispatch)
        dispatch.span.end(outcome="timeout")
        self.ack_timeouts += 1
        self.metrics.counter("proxy.ack_timeouts").inc()
        if self.breakers is not None:
            self.breakers[dispatch.tsd_index].record_failure(self.sim.now)
        self._retry_later(dispatch.state)
        self._drain()

    def _settle(self, dispatch: _Dispatch) -> None:
        dispatch.resolved = True
        self._in_flight -= 1
        if dispatch.timeout_handle is not None:
            dispatch.timeout_handle.cancel()
            dispatch.timeout_handle = None

    def _retry_later(self, state: _BatchState) -> None:
        """Requeue after jittered exponential backoff, within the budget."""
        if state.attempts >= self.max_batch_retries:
            self.failed_batches += 1
            self.failed_points += len(state.remaining)
            self.metrics.counter("proxy.failed_points").inc(len(state.remaining))
            self._finish(state, ok=False, tsd=PROXY_EXHAUSTED)
            return
        delay = min(
            self.max_backoff,
            self.retry_delay * (self.backoff_mult ** state.attempts),
        )
        # Deterministic jitter in [0.5, 1.0): decorrelates retry storms
        # while keeping runs reproducible per proxy seed.
        delay *= 0.5 + 0.5 * float(self._rng.random())
        state.attempts += 1
        self.retried += 1
        self.metrics.counter("proxy.retries").inc()
        self.sim.schedule(delay, self._enqueue, state)

    def _finish(self, state: _BatchState, ok: bool, tsd: str) -> None:
        """Deliver the batch's single aggregate ack to the submitter."""
        # End-to-end ack latency: submit() to final aggregate ack,
        # spanning any retries/timeouts in between.
        self.metrics.histogram("proxy.ack_latency").observe(
            self.sim.now - state.submitted_at
        )
        failed = 0 if ok else len(state.remaining)
        state.span.end(
            outcome="ok" if ok else "failed",
            written=state.written,
            failed=failed,
            tsd=tsd,
        )
        if state.on_ack is not None:
            state.on_ack(PutAck(ok and failed == 0, state.written, failed, tsd))


class DirectSubmitter:
    """Fire-and-forget round-robin submission straight to the TSDs.

    The "before" configuration of the paper's §III-B: no in-flight
    bound, no buffering, no retry.  Offered load lands unchecked on the
    TSD and RegionServer queues; under overload the RegionServers
    overflow and crash.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tsds: Sequence[TSDaemon],
        host: str = "ingress",
        spray: bool = True,
    ) -> None:
        if not tsds:
            raise ValueError("need at least one TSD")
        self.sim = sim
        self.network = network
        self.tsds = list(tsds)
        self.host = host
        self.spray = spray
        self._rr = 0
        self.dispatched = 0

    def submit(self, points, on_ack: Optional[AckCallback] = None) -> None:
        """Send immediately to the next TSD (or always the first if not
        spraying).  Accepts point lists and :class:`BlockBatch` alike."""
        if self.spray:
            tsd = self.tsds[self._rr % len(self.tsds)]
            self._rr += 1
        else:
            tsd = self.tsds[0]
        self.dispatched += 1

        def handle(ack: PutAck) -> None:
            if on_ack is not None:
                on_ack(ack)

        self.network.send(self.host, tsd.node.hostname, tsd.put_batch, points, handle, self.host)
