"""Buffering reverse proxy in front of the TSD daemons.

Reproduces the component the paper built after RegionServers "crashed
frequently due to overloaded RPC queues":

* **Backpressure** — at most ``max_in_flight`` put batches are
  outstanding at once; excess batches wait in an internal buffer rather
  than piling onto TSD/RegionServer queues.
* **Load balancing** — buffered batches are dispatched to the TSD
  daemons round-robin, so ingestion scales horizontally across nodes.
* **Retry** — a batch rejected by one TSD (its inbound queue is full)
  is requeued and later retried on the next TSD in rotation.

The E7 ablation compares this against a fire-and-forget path
(:class:`DirectSubmitter`) which reproduces the crash behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from ..cluster.metrics import MetricsRegistry
from ..cluster.network import Network
from ..cluster.simulation import Simulator
from .tsd import DataPoint, PutAck, TSDaemon

__all__ = ["ReverseProxy", "DirectSubmitter"]

AckCallback = Callable[[PutAck], None]


class ReverseProxy:
    """Round-robin, bounded-in-flight buffer in front of the TSDs."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tsds: Sequence[TSDaemon],
        host: str = "proxy",
        max_in_flight: int = 64,
        retry_delay: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not tsds:
            raise ValueError("proxy needs at least one TSD")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.sim = sim
        self.network = network
        self.tsds = list(tsds)
        self.host = host
        self.max_in_flight = max_in_flight
        self.retry_delay = retry_delay
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._buffer: Deque[Tuple[List[DataPoint], Optional[AckCallback]]] = deque()
        self._in_flight = 0
        self._rr = 0
        self.buffer_high_water = 0
        self.dispatched = 0
        self.retried = 0

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    def submit(self, points: List[DataPoint], on_ack: Optional[AckCallback] = None) -> None:
        """Accept a put batch; buffered if the in-flight window is full."""
        self._buffer.append((points, on_ack))
        self.buffer_high_water = max(self.buffer_high_water, len(self._buffer))
        self._drain()

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while self._buffer and self._in_flight < self.max_in_flight:
            points, on_ack = self._buffer.popleft()
            self._dispatch(points, on_ack)

    def _next_tsd(self) -> TSDaemon:
        tsd = self.tsds[self._rr % len(self.tsds)]
        self._rr += 1
        return tsd

    def _dispatch(self, points: List[DataPoint], on_ack: Optional[AckCallback]) -> None:
        tsd = self._next_tsd()
        self._in_flight += 1
        self.dispatched += 1

        def handle(ack: PutAck) -> None:
            self._in_flight -= 1
            if not ack.ok and ack.written == 0:
                # Whole batch bounced (TSD queue full): requeue for a
                # different TSD after a pause, without consuming window.
                self.retried += 1
                self.metrics.counter("proxy.retries").inc()
                self.sim.schedule(self.retry_delay, self.submit, points, on_ack)
            elif on_ack is not None:
                on_ack(ack)
            self._drain()

        self.network.send(self.host, tsd.node.hostname, tsd.put_batch, points, handle, self.host)


class DirectSubmitter:
    """Fire-and-forget round-robin submission straight to the TSDs.

    The "before" configuration of the paper's §III-B: no in-flight
    bound, no buffering, no retry.  Offered load lands unchecked on the
    TSD and RegionServer queues; under overload the RegionServers
    overflow and crash.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tsds: Sequence[TSDaemon],
        host: str = "ingress",
        spray: bool = True,
    ) -> None:
        if not tsds:
            raise ValueError("need at least one TSD")
        self.sim = sim
        self.network = network
        self.tsds = list(tsds)
        self.host = host
        self.spray = spray
        self._rr = 0
        self.dispatched = 0

    def submit(self, points: List[DataPoint], on_ack: Optional[AckCallback] = None) -> None:
        """Send immediately to the next TSD (or always the first if not spraying)."""
        if self.spray:
            tsd = self.tsds[self._rr % len(self.tsds)]
            self._rr += 1
        else:
            tsd = self.tsds[0]
        self.dispatched += 1

        def handle(ack: PutAck) -> None:
            if on_ack is not None:
                on_ack(ack)

        self.network.send(self.host, tsd.node.hostname, tsd.put_batch, points, handle, self.host)
