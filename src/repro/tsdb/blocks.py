"""Columnar series blocks: the hot path's unit of data movement.

The per-point ingest/query path moved one Python ``DataPoint`` object
at a time through parse → rowkey → region → scan → aggregate, which
caps simulated goodput far below the paper's near-linear Figure 2
regime.  This module introduces :class:`SeriesBlock` — one series'
worth of contiguous, parallel ``timestamp``/``value`` columns backed by
stdlib ``array`` buffers (no numpy dependency; numpy consumers view the
same memory zero-copy via the buffer protocol) — and
:class:`BlockBatch`, an ordered collection of blocks that still quacks
like the flat point sequence the proxy/publisher retry machinery
slices, so every delivery-accounting invariant carries over unchanged.

Design rules:

* a ``SeriesBlock`` identifies exactly one series (``metric`` +
  sorted ``tags``) — per-series invariants (UID interning, row-key
  prefixes) are paid once per block instead of once per point;
* timestamps are kept sorted (non-decreasing; duplicates allowed, as
  ingest may legitimately re-write a second) so merges, slices and
  row-span grouping are ``O(log n)`` + memcpy;
* point-wise views (``iter_points`` / ``BlockBatch`` indexing) exist as
  compatibility shims only — hot paths must stay columnar.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Sequence, Tuple, Union, overload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tsd imports us)
    from .tsd import DataPoint

__all__ = ["SeriesBlock", "BlockBatch", "blocks_from_points"]

Tags = Tuple[Tuple[str, str], ...]

#: array typecodes for the two columns: int64 seconds, float64 values.
TS_TYPECODE = "q"
VAL_TYPECODE = "d"


def _as_ts_array(values: object) -> array:
    """Coerce timestamps to a contiguous int64 ``array('q')``.

    Buffer-protocol inputs with 8-byte items (numpy ``int64`` included)
    are adopted via one C-level memcpy; other iterables element-wise.
    """
    if isinstance(values, array) and values.typecode == TS_TYPECODE:
        return values
    try:
        view = memoryview(values)  # type: ignore[arg-type]
    except TypeError:
        return array(TS_TYPECODE, (int(v) for v in values))  # type: ignore[union-attr]
    if view.itemsize == 8 and view.format in ("q", "l") and view.contiguous:
        out = array(TS_TYPECODE)
        out.frombytes(view.cast("B"))
        return out
    return array(TS_TYPECODE, (int(v) for v in values))  # type: ignore[union-attr]


def _as_val_array(values: object) -> array:
    """Coerce values to a contiguous float64 ``array('d')``."""
    if isinstance(values, array) and values.typecode == VAL_TYPECODE:
        return values
    try:
        view = memoryview(values)  # type: ignore[arg-type]
    except TypeError:
        return array(VAL_TYPECODE, (float(v) for v in values))  # type: ignore[union-attr]
    if view.itemsize == 8 and view.format == "d" and view.contiguous:
        out = array(VAL_TYPECODE)
        out.frombytes(view.cast("B"))
        return out
    return array(VAL_TYPECODE, (float(v) for v in values))  # type: ignore[union-attr]


def _is_sorted(ts: array) -> bool:
    return all(ts[i] <= ts[i + 1] for i in range(len(ts) - 1))


class SeriesBlock:
    """One series' contiguous ``(timestamps, values)`` columns.

    The canonical in-flight representation on the ingest and query hot
    paths: parsing fills blocks, row-key encoding consumes a block's
    timestamp column in one call, region writes land a block's cells as
    one append, and the aggregation kernels view the columns zero-copy.

    Construct via :meth:`from_points` / :meth:`from_columns`; the raw
    constructor adopts pre-validated arrays without copying.
    """

    __slots__ = ("metric", "tags", "_ts", "_vals")

    def __init__(
        self,
        metric: str,
        tags: Tags,
        timestamps: array,
        values: array,
        *,
        _trusted: bool = False,
    ) -> None:
        if not _trusted:
            timestamps = _as_ts_array(timestamps)
            values = _as_val_array(values)
            if len(timestamps) != len(values):
                raise ValueError("timestamps and values must be the same length")
            if not _is_sorted(timestamps):
                order = sorted(range(len(timestamps)), key=timestamps.__getitem__)
                timestamps = array(TS_TYPECODE, (timestamps[i] for i in order))
                values = array(VAL_TYPECODE, (values[i] for i in order))
            tags = tuple(sorted(tags))
        self.metric = metric
        self.tags = tags
        self._ts = timestamps
        self._vals = values

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        metric: str,
        tags: Union[Tags, Dict[str, str]],
        timestamps: Iterable[int],
        values: Iterable[float],
    ) -> "SeriesBlock":
        """Build from parallel columns (any iterables or 8-byte buffers)."""
        if isinstance(tags, dict):
            tags = tuple(sorted(tags.items()))
        return cls(metric, tags, timestamps, values)  # type: ignore[arg-type]

    @classmethod
    def from_points(cls, points: Iterable["DataPoint"]) -> "SeriesBlock":
        """Columnarise points of a *single* series (round-trip shim).

        Every point must carry the same ``(metric, tags)`` identity;
        use :func:`blocks_from_points` for heterogeneous batches.
        """
        ts = array(TS_TYPECODE)
        vals = array(VAL_TYPECODE)
        metric: str = ""
        tags: Tags = ()
        first = True
        for p in points:
            if first:
                metric, tags, first = p.metric, p.tags, False
            elif p.metric != metric or p.tags != tags:
                raise ValueError(
                    f"mixed series in from_points: {metric}{dict(tags)} vs "
                    f"{p.metric}{dict(p.tags)}; use blocks_from_points"
                )
            ts.append(p.timestamp)
            vals.append(p.value)
        if first:
            raise ValueError("cannot build a SeriesBlock from zero points")
        return cls(metric, tags, ts, vals)

    # ------------------------------------------------------------------
    # columnar accessors
    # ------------------------------------------------------------------
    @property
    def timestamps(self) -> array:
        """The int64 timestamp column (buffer-protocol contiguous)."""
        return self._ts

    @property
    def values(self) -> array:
        """The float64 value column (buffer-protocol contiguous)."""
        return self._vals

    @property
    def tag_dict(self) -> Dict[str, str]:
        return dict(self.tags)

    @property
    def start(self) -> int:
        """First (smallest) timestamp; raises on an empty block."""
        return self._ts[0]

    @property
    def end(self) -> int:
        """Last (largest) timestamp; raises on an empty block."""
        return self._ts[-1]

    def __len__(self) -> int:
        return len(self._ts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ident = self.metric or "<series>"
        return f"<SeriesBlock {ident}{dict(self.tags)} n={len(self)}>"

    # ------------------------------------------------------------------
    # point-wise compatibility shims (NOT for hot paths)
    # ------------------------------------------------------------------
    def iter_points(self) -> Iterator["DataPoint"]:
        """Box the columns back into :class:`DataPoint` objects.

        The inverse of :meth:`from_points`; exists so legacy point-wise
        consumers keep working.  Hot paths consume the columns.
        """
        from .tsd import DataPoint

        metric, tags = self.metric, self.tags
        for t, v in zip(self._ts, self._vals):
            yield DataPoint(metric, t, v, tags)

    def point_at(self, i: int) -> "DataPoint":
        """One boxed point by position (compatibility shim)."""
        from .tsd import DataPoint

        return DataPoint(self.metric, self._ts[i], self._vals[i], self.tags)

    # ------------------------------------------------------------------
    # columnar operations
    # ------------------------------------------------------------------
    def slice_time(self, start: int, end: int) -> "SeriesBlock":
        """Points with ``start <= t < end`` (bisect + memcpy, no loop)."""
        lo = bisect_left(self._ts, start)
        hi = bisect_left(self._ts, end)
        return SeriesBlock(self.metric, self.tags, self._ts[lo:hi], self._vals[lo:hi], _trusted=True)

    def slice_positional(self, start: int, stop: int) -> "SeriesBlock":
        """Positional slice ``[start:stop)`` as a new block."""
        return SeriesBlock(
            self.metric, self.tags, self._ts[start:stop], self._vals[start:stop], _trusted=True
        )

    def merge(self, other: "SeriesBlock") -> "SeriesBlock":
        """Merge two blocks of the same series, keeping timestamps sorted.

        Disjoint (or abutting) time ranges concatenate with two memcpys;
        overlapping ranges fall back to a two-pointer merge.
        """
        if (self.metric, self.tags) != (other.metric, other.tags):
            raise ValueError("cannot merge blocks of different series")
        if not other:
            return self
        if not self:
            return other
        a, b = self, other
        if b.end < a.start:
            a, b = b, a
        if a.end <= b.start:
            ts = array(TS_TYPECODE, a._ts)
            ts.extend(b._ts)
            vals = array(VAL_TYPECODE, a._vals)
            vals.extend(b._vals)
            return SeriesBlock(a.metric, a.tags, ts, vals, _trusted=True)
        ts = array(TS_TYPECODE)
        vals = array(VAL_TYPECODE)
        i = j = 0
        na, nb = len(a), len(b)
        while i < na and j < nb:
            if a._ts[i] <= b._ts[j]:
                ts.append(a._ts[i])
                vals.append(a._vals[i])
                i += 1
            else:
                ts.append(b._ts[j])
                vals.append(b._vals[j])
                j += 1
        if i < na:
            ts.extend(a._ts[i:])
            vals.extend(a._vals[i:])
        if j < nb:
            ts.extend(b._ts[j:])
            vals.extend(b._vals[j:])
        return SeriesBlock(a.metric, a.tags, ts, vals, _trusted=True)

    def row_spans(self, span_seconds: int) -> Iterator[Tuple[int, int, int]]:
        """Contiguous ``(base_time, lo, hi)`` runs per storage row span.

        Groups the sorted timestamp column into row-aligned runs
        (``base_time`` = timestamp floored to ``span_seconds``) with one
        bisect per distinct row — the unit the row-key encoder and the
        block write path work in.
        """
        n = len(self._ts)
        lo = 0
        while lo < n:
            base = (self._ts[lo] // span_seconds) * span_seconds
            hi = bisect_left(self._ts, base + span_seconds, lo)
            yield base, lo, hi
            lo = hi


def blocks_from_points(points: Iterable["DataPoint"]) -> List["SeriesBlock"]:
    """Group a heterogeneous point batch into one block per series.

    Blocks come out in first-seen series order; timestamps within each
    block are sorted (arrival order is already sorted for the common
    per-sensor streams, costing only the ``_is_sorted`` scan).
    """
    columns: Dict[Tuple[str, Tags], Tuple[array, array]] = {}
    for p in points:
        key = (p.metric, p.tags)
        cols = columns.get(key)
        if cols is None:
            cols = columns[key] = (array(TS_TYPECODE), array(VAL_TYPECODE))
        cols[0].append(p.timestamp)
        cols[1].append(p.value)
    return [
        SeriesBlock(metric, tags, ts, vals)
        for (metric, tags), (ts, vals) in columns.items()
    ]


class BlockBatch:
    """An ordered batch of blocks that still acts like a point sequence.

    The proxy, publisher, and TSD retry/accounting machinery reason in
    *points*: they take ``len(batch)``, slice off durably written
    prefixes (``batch[ack.written:]``), and re-chunk.  ``BlockBatch``
    preserves that exact contract over columnar payloads — slicing
    drops whole blocks and splits at most one (memcpy, no boxing) — so
    blocks flow through every delivery path without forked logic.
    """

    __slots__ = ("blocks", "_len")

    def __init__(self, blocks: Sequence[SeriesBlock]) -> None:
        self.blocks: Tuple[SeriesBlock, ...] = tuple(b for b in blocks if len(b))
        self._len = sum(len(b) for b in self.blocks)

    @classmethod
    def from_points(cls, points: Iterable["DataPoint"]) -> "BlockBatch":
        """Columnarise an arbitrary point batch (one block per series)."""
        return cls(blocks_from_points(points))

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self) -> Iterator["DataPoint"]:
        """Boxed point iteration — compatibility shim, not a hot path."""
        for block in self.blocks:
            yield from block.iter_points()

    @overload
    def __getitem__(self, index: int) -> "DataPoint": ...

    @overload
    def __getitem__(self, index: slice) -> "BlockBatch": ...

    def __getitem__(self, index: Union[int, slice]) -> Union["DataPoint", "BlockBatch"]:
        if isinstance(index, int):
            if index < 0:
                index += self._len
            if not 0 <= index < self._len:
                raise IndexError("BlockBatch index out of range")
            for block in self.blocks:
                if index < len(block):
                    return block.point_at(index)
                index -= len(block)
            raise IndexError("BlockBatch index out of range")  # pragma: no cover
        start, stop, step = index.indices(self._len)
        if step != 1:
            raise ValueError("BlockBatch slicing must be contiguous (step 1)")
        out: List[SeriesBlock] = []
        pos = 0
        for block in self.blocks:
            n = len(block)
            lo = max(start - pos, 0)
            hi = min(stop - pos, n)
            if lo < hi:
                out.append(block if (lo, hi) == (0, n) else block.slice_positional(lo, hi))
            pos += n
            if pos >= stop:
                break
        return BlockBatch(out)

    def iter_series_spans(self) -> Iterator[Tuple[str, Tags, int, int]]:
        """Per-block ``(metric, tags, t_min, t_max)`` — the write-listener
        fast path: cache invalidation needs one span per series, not one
        probe per point."""
        for block in self.blocks:
            yield block.metric, block.tags, block.start, block.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BlockBatch blocks={len(self.blocks)} points={self._len}>"
