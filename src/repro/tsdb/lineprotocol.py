"""OpenTSDB telnet-style line protocol.

Real OpenTSDB ingests via a plain-text protocol::

    put <metric> <timestamp> <value> <tagk=tagv> [<tagk=tagv> ...]

This module parses and formats that wire format, so workloads can be
replayed from capture files and external producers can be emulated
byte-for-byte.  Validation follows OpenTSDB's rules: metric/tag names
are ``[A-Za-z0-9._/-]+``, at least one tag is required, timestamps are
non-negative integers (seconds) and values are finite floats.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, Iterator, List

from .tsd import DataPoint

__all__ = ["LineProtocolError", "parse_put_line", "format_put_line", "parse_lines"]

_NAME_RE = re.compile(r"^[A-Za-z0-9._/\-]+$")


class LineProtocolError(ValueError):
    """A malformed protocol line (the offending line is in the message)."""


def _check_name(name: str, what: str, line: str) -> None:
    if not _NAME_RE.match(name):
        raise LineProtocolError(f"invalid {what} {name!r} in line: {line!r}")


def parse_put_line(line: str) -> DataPoint:
    """Parse one ``put`` line into a :class:`DataPoint`."""
    stripped = line.strip()
    parts = stripped.split()
    if len(parts) < 5 or parts[0] != "put":
        raise LineProtocolError(
            f"expected 'put <metric> <ts> <value> <tag=value>...': {line!r}"
        )
    metric, ts_raw, value_raw = parts[1], parts[2], parts[3]
    _check_name(metric, "metric", line)
    try:
        timestamp = int(ts_raw)
    except ValueError:
        raise LineProtocolError(f"invalid timestamp {ts_raw!r} in line: {line!r}") from None
    if timestamp < 0:
        raise LineProtocolError(f"negative timestamp in line: {line!r}")
    try:
        value = float(value_raw)
    except ValueError:
        raise LineProtocolError(f"invalid value {value_raw!r} in line: {line!r}") from None
    if not math.isfinite(value):
        raise LineProtocolError(f"non-finite value in line: {line!r}")
    tags: Dict[str, str] = {}
    for pair in parts[4:]:
        key, sep, val = pair.partition("=")
        if not sep or not key or not val:
            raise LineProtocolError(f"invalid tag {pair!r} in line: {line!r}")
        _check_name(key, "tag key", line)
        _check_name(val, "tag value", line)
        if key in tags:
            raise LineProtocolError(f"duplicate tag {key!r} in line: {line!r}")
        tags[key] = val
    return DataPoint.make(metric, timestamp, value, tags)


def format_put_line(point: DataPoint) -> str:
    """Format a :class:`DataPoint` as a ``put`` line (inverse of parse)."""
    tags = " ".join(f"{k}={v}" for k, v in point.tags)
    value = f"{point.value:g}" if point.value == point.value else "nan"
    return f"put {point.metric} {point.timestamp} {value} {tags}"


def parse_lines(
    lines: Iterable[str], skip_errors: bool = False
) -> Iterator[DataPoint]:
    """Parse a stream of protocol lines, skipping blanks and comments.

    With ``skip_errors`` malformed lines are dropped (the real TSD logs
    and continues); otherwise :class:`LineProtocolError` propagates.
    """
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            yield parse_put_line(stripped)
        except LineProtocolError:
            if not skip_errors:
                raise
