"""OpenTSDB telnet-style line protocol.

Real OpenTSDB ingests via a plain-text protocol::

    put <metric> <timestamp> <value> <tagk=tagv> [<tagk=tagv> ...]

This module parses and formats that wire format, so workloads can be
replayed from capture files and external producers can be emulated
byte-for-byte.  Validation follows OpenTSDB's rules: metric/tag names
are ``[A-Za-z0-9._/-]+``, at least one tag is required, timestamps are
non-negative integers (seconds) and values are finite floats.

Two batch entry points share one validation core (``_parse_fields``):
:func:`parse_lines` yields boxed :class:`DataPoint` objects (the
compatibility form), and :func:`parse_block` fills columnar
:class:`~repro.tsdb.blocks.SeriesBlock` buffers directly — no per-point
object is ever created on the block path.  Both report the 1-based line
number of a malformed line, and neither discards the prefix parsed
before the failure (``parse_lines`` has already yielded it;
``parse_block`` attaches it to the error as ``partial``).
"""

from __future__ import annotations

import math
import re
from array import array
from typing import Dict, Iterable, Iterator, Optional, Tuple

from .blocks import TS_TYPECODE, VAL_TYPECODE, BlockBatch, SeriesBlock
from .tsd import DataPoint

__all__ = [
    "LineProtocolError",
    "parse_put_line",
    "format_put_line",
    "parse_lines",
    "parse_block",
]

_NAME_RE = re.compile(r"^[A-Za-z0-9._/\-]+$")

Tags = Tuple[Tuple[str, str], ...]


class LineProtocolError(ValueError):
    """A malformed protocol line (the offending line is in the message).

    When raised by the batch parsers the error also carries
    ``line_number`` — the 1-based position of the offending line in the
    input stream — and, for :func:`parse_block`, ``partial``: the
    :class:`BlockBatch` assembled from every line *before* the failure,
    so callers can ingest the good prefix and resume after the poison
    line.
    """

    def __init__(
        self,
        message: str,
        *,
        line_number: Optional[int] = None,
        partial: Optional["BlockBatch"] = None,
    ) -> None:
        super().__init__(message)
        self.line_number = line_number
        self.partial = partial


def _check_name(name: str, what: str, line: str) -> None:
    if not _NAME_RE.match(name):
        raise LineProtocolError(f"invalid {what} {name!r} in line: {line!r}")


def _parse_fields(line: str) -> Tuple[str, int, float, Tags]:
    """Validate one stripped ``put`` line into unboxed fields.

    The single parsing implementation: both the point-wise and the
    block parsers delegate here, so validation can never fork.
    Returns ``(metric, timestamp, value, sorted_tags)``.
    """
    parts = line.split()
    if len(parts) < 5 or parts[0] != "put":
        raise LineProtocolError(
            f"expected 'put <metric> <ts> <value> <tag=value>...': {line!r}"
        )
    metric, ts_raw, value_raw = parts[1], parts[2], parts[3]
    _check_name(metric, "metric", line)
    try:
        timestamp = int(ts_raw)
    except ValueError:
        raise LineProtocolError(f"invalid timestamp {ts_raw!r} in line: {line!r}") from None
    if timestamp < 0:
        raise LineProtocolError(f"negative timestamp in line: {line!r}")
    try:
        value = float(value_raw)
    except ValueError:
        raise LineProtocolError(f"invalid value {value_raw!r} in line: {line!r}") from None
    if not math.isfinite(value):
        raise LineProtocolError(f"non-finite value in line: {line!r}")
    tags: Dict[str, str] = {}
    for pair in parts[4:]:
        key, sep, val = pair.partition("=")
        if not sep or not key or not val:
            raise LineProtocolError(f"invalid tag {pair!r} in line: {line!r}")
        _check_name(key, "tag key", line)
        _check_name(val, "tag value", line)
        if key in tags:
            raise LineProtocolError(f"duplicate tag {key!r} in line: {line!r}")
        tags[key] = val
    return metric, timestamp, value, tuple(sorted(tags.items()))


def parse_put_line(line: str) -> DataPoint:
    """Parse one ``put`` line into a :class:`DataPoint`."""
    metric, timestamp, value, tags = _parse_fields(line.strip())
    return DataPoint(metric, timestamp, value, tags)


def format_put_line(point: DataPoint) -> str:
    """Format a :class:`DataPoint` as a ``put`` line (inverse of parse)."""
    tags = " ".join(f"{k}={v}" for k, v in point.tags)
    value = f"{point.value:g}" if point.value == point.value else "nan"
    return f"put {point.metric} {point.timestamp} {value} {tags}"


def parse_lines(
    lines: Iterable[str], skip_errors: bool = False
) -> Iterator[DataPoint]:
    """Parse a stream of protocol lines, skipping blanks and comments.

    With ``skip_errors`` malformed lines are dropped (the real TSD logs
    and continues); otherwise :class:`LineProtocolError` propagates
    carrying the 1-based ``line_number``.  Points already yielded for
    the prefix before a malformed line are never retracted.
    """
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            metric, timestamp, value, tags = _parse_fields(stripped)
        except LineProtocolError as exc:
            if skip_errors:
                continue
            raise LineProtocolError(f"line {lineno}: {exc}", line_number=lineno) from None
        yield DataPoint(metric, timestamp, value, tags)


def parse_block(lines: Iterable[str], skip_errors: bool = False) -> BlockBatch:
    """Parse protocol lines straight into columnar blocks.

    The block-path twin of :func:`parse_lines`: one
    :class:`SeriesBlock` per distinct ``(metric, tags)`` series, filled
    append-only with zero per-point boxing.  On a malformed line (and
    ``skip_errors=False``) the raised :class:`LineProtocolError` carries
    ``line_number`` and ``partial`` — the batch parsed so far — so the
    good prefix survives the poison line.
    """
    columns: Dict[Tuple[str, Tags], Tuple[array, array]] = {}
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            metric, timestamp, value, tags = _parse_fields(stripped)
        except LineProtocolError as exc:
            if skip_errors:
                continue
            raise LineProtocolError(
                f"line {lineno}: {exc}",
                line_number=lineno,
                partial=_finish_block_batch(columns),
            ) from None
        cols = columns.get((metric, tags))
        if cols is None:
            cols = columns[(metric, tags)] = (array(TS_TYPECODE), array(VAL_TYPECODE))
        cols[0].append(timestamp)
        cols[1].append(value)
    return _finish_block_batch(columns)


def _finish_block_batch(
    columns: Dict[Tuple[str, Tags], Tuple[array, array]]
) -> BlockBatch:
    return BlockBatch(
        [
            SeriesBlock(metric, tags, ts, vals)
            for (metric, tags), (ts, vals) in columns.items()
        ]
    )
