"""TSDB query engine: scan, decode, filter, group, aggregate.

Answers OpenTSDB-style queries against the simulated HBase tables:

1. plan row-key scan ranges for the metric and time window (one range
   per salt bucket — the read-side cost of salting);
2. scan, decode row keys, and expand compacted columns;
3. filter by tag predicates, group series by tag keys;
4. within each group, aggregate / downsample / rate-convert.

Queries read through the master's administrative scan: the
visualization and analysis paths study *data* semantics, not RPC
timing (which E1/E2/E6/E7 cover on the write path).
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..lifecycle.manager import LifecycleManager

from ..hbase.bytescodec import decode_f64, decode_u32
from ..hbase.master import HMaster, RegionUnavailableError
from ..hbase.region import Cell
from .aggregation import AGGREGATORS, Series, aggregate, downsample, rate
from .blocks import TS_TYPECODE, VAL_TYPECODE, SeriesBlock
from .compaction import decompact_cell, decompact_columns, is_compacted
from .rowkey import _UID_WIDTH, RowKeyCodec
from .tsd import DATA_TABLE
from .uid import UniqueIdRegistry, UnknownUidError

__all__ = ["ConsistentResult", "TsdbQuery", "QueryEngine", "group_and_aggregate"]

WILDCARD = "*"


def group_and_aggregate(query: "TsdbQuery", raw: List[Series]) -> List[Series]:
    """Apply a query's group-by/aggregate/downsample/rate stages to raw series.

    Shared by the offline engine and the RPC-path executor so the two
    read paths cannot diverge semantically.
    """
    if not raw:
        return []
    groups: Dict[Tuple[Tuple[str, str], ...], List[Series]] = {}
    for series in raw:
        key = tuple((k, series.tag_dict.get(k, "")) for k in query.group_by)
        groups.setdefault(key, []).append(series)
    out: List[Series] = []
    for key in sorted(groups):
        combined = aggregate(groups[key], query.aggregator)
        if query.downsample_window is not None:
            combined = downsample(
                combined, query.downsample_window, query.downsample_aggregator
            )
        if query.rate:
            combined = rate(combined)
        out.append(combined)
    return out


class _ScanState:
    """Accumulator shared across salt-bucket scans of one query."""

    __slots__ = ("points", "tags", "filtered", "blob_ts")

    def __init__(self) -> None:
        # series_id -> {timestamp: (value, write_ts)}
        self.points: Dict[bytes, Dict[int, Tuple[float, float]]] = {}
        self.tags: Dict[bytes, Dict[str, str]] = {}
        self.filtered: set = set()
        # (series_id, base_time) -> newest compacted-blob write-ts
        self.blob_ts: Dict[Tuple[bytes, int], float] = {}

    def to_series(self) -> List[Series]:
        """Materialise the accumulated points into sorted Series."""
        out: List[Series] = []
        for sid, ts_map in self.points.items():
            if not ts_map:
                continue
            tags = self.tags[sid]
            times = np.array(sorted(ts_map), dtype=np.int64)
            values = np.array([ts_map[int(t)][0] for t in times])
            out.append(Series(tuple(sorted(tags.items())), times, values))
        out.sort(key=lambda s: s.tags)
        return out


#: Sentinel distinguishing "row not yet seen" from "row's series filtered".
_ROW_UNSEEN = object()


class _BlockScanState:
    """Columnar accumulator shared across salt-bucket scans of one query.

    The vectorized counterpart of :class:`_ScanState`: instead of one
    dict operation per cell, it appends to per-series parallel
    ``(timestamp, value, write_ts)`` columns and resolves newest-wins
    duplicates once at the end with a single stable lexsort.  Row keys
    are decoded at most once per distinct row (scans return cells
    row-ordered, so one crc32/tag decode amortises over a whole row's
    cells) and point-cell values are unpacked a row-run at a time.

    Bit-identical to the per-cell reference path: the dict rule "newer
    or equal write-ts wins, later arrival breaks ties" is exactly "last
    element of each timestamp run after a stable sort by (ts, write_ts,
    arrival)".
    """

    __slots__ = (
        "codec",
        "uids",
        "ts_cols",
        "val_cols",
        "wts_cols",
        "tags",
        "filtered",
        "blob_ts",
        "_row_cache",
    )

    def __init__(self, codec: RowKeyCodec, uids: UniqueIdRegistry) -> None:
        self.codec = codec
        self.uids = uids
        # series_id -> parallel append-only columns
        self.ts_cols: Dict[bytes, array] = {}
        self.val_cols: Dict[bytes, array] = {}
        self.wts_cols: Dict[bytes, array] = {}
        self.tags: Dict[bytes, Dict[str, str]] = {}
        self.filtered: set = set()
        # (series_id, base_time) -> newest compacted-blob write-ts
        self.blob_ts: Dict[Tuple[bytes, int], float] = {}
        # row bytes -> (series_id, base_time) | None when filtered out
        self._row_cache: Dict[bytes, object] = {}  # repro-lint: ignore[unbounded-cache] -- per-query scan state; dies with the query

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest_scan(self, cells: List[Cell], query: "TsdbQuery") -> None:
        """Fold one scan range's cells into the columns (blobs first)."""
        blobs = [c for c in cells if is_compacted(c)]
        if blobs:
            self._ingest_blobs(blobs, query)
            points = [c for c in cells if not is_compacted(c)]
        else:
            points = cells
        self._ingest_points(points, query)

    def _resolve_row(
        self, row: bytes, query: "TsdbQuery"
    ) -> Optional[Tuple[bytes, int]]:
        entry = self._row_cache.get(row, _ROW_UNSEEN)
        if entry is not _ROW_UNSEEN:
            return entry  # type: ignore[return-value]
        sid = self.codec.series_id(row)
        pos = 1 if self.codec.salted else 0
        base = decode_u32(row, pos + _UID_WIDTH)
        resolved: Optional[Tuple[bytes, int]]
        if sid in self.filtered:
            resolved = None
        elif sid in self.tags:
            resolved = (sid, base)
        else:
            decoded = self.codec.decode(row, b"\x00\x00")
            tags = self.uids.decode_tags(decoded.tag_pairs)
            if QueryEngine._match_tags(tags, query.tag_filters):
                self.tags[sid] = tags
                resolved = (sid, base)
            else:
                self.filtered.add(sid)
                resolved = None
        self._row_cache[row] = resolved
        return resolved

    def _columns(self, sid: bytes) -> Tuple[array, array, array]:
        ts_col = self.ts_cols.get(sid)
        if ts_col is None:
            ts_col = self.ts_cols[sid] = array(TS_TYPECODE)
            self.val_cols[sid] = array(VAL_TYPECODE)
            self.wts_cols[sid] = array("d")
        return ts_col, self.val_cols[sid], self.wts_cols[sid]

    def _ingest_blobs(self, blobs: List[Cell], query: "TsdbQuery") -> None:
        start, end = query.start, query.end
        for cell in blobs:
            resolved = self._resolve_row(cell.row, query)
            if resolved is None:
                continue
            sid, base = resolved
            key = (sid, base)
            if cell.ts >= self.blob_ts.get(key, -1.0):
                self.blob_ts[key] = cell.ts
            ts_col, val_col, wts_col = self._columns(sid)
            wts = cell.ts
            offsets, values = decompact_columns(cell)
            for offset, value in zip(offsets, values):
                t = base + offset
                if start <= t < end:
                    ts_col.append(t)
                    val_col.append(value)
                    wts_col.append(wts)

    def _ingest_points(self, cells: List[Cell], query: "TsdbQuery") -> None:
        start, end = query.start, query.end
        i, n = 0, len(cells)
        while i < n:
            row = cells[i].row
            j = i + 1
            while j < n and cells[j].row == row:
                j += 1
            resolved = self._resolve_row(row, query)
            if resolved is not None:
                sid, base = resolved
                shadow = self.blob_ts.get((sid, base), -1.0)
                ts_col, val_col, wts_col = self._columns(sid)
                run = cells[i:j]
                # One struct call decodes the whole row-run's payloads.
                values = struct.unpack(f">{len(run)}d", b"".join(c.value for c in run))
                for cell, value in zip(run, values):
                    # Point cells at or before a compacted blob's write
                    # time were merged into the blob; skip them.
                    if cell.ts <= shadow:
                        continue
                    t = base + int.from_bytes(cell.qualifier, "big")
                    if start <= t < end:
                        ts_col.append(t)
                        val_col.append(value)
                        wts_col.append(cell.ts)
            i = j

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def to_series(self, metric: str = "") -> List[Series]:
        """Resolve duplicates and materialise one Series per matched sid."""
        out: List[Series] = []
        for sid, ts_col in self.ts_cols.items():
            if not len(ts_col):
                continue
            ts = np.frombuffer(ts_col, dtype=np.int64)
            vals = np.frombuffer(self.val_cols[sid], dtype=np.float64)
            wts = np.frombuffer(self.wts_cols[sid], dtype=np.float64)
            # Stable sort by (ts, write_ts); the last element of each
            # timestamp run is the newest write (arrival order breaking
            # write-ts ties), matching the reference dict semantics.
            order = np.lexsort((wts, ts))
            ts_sorted = ts[order]
            keep = np.empty(len(ts_sorted), dtype=bool)
            keep[:-1] = ts_sorted[1:] != ts_sorted[:-1]
            keep[-1] = True
            final_ts = np.ascontiguousarray(ts_sorted[keep])
            final_vals = np.ascontiguousarray(vals[order][keep])
            ts_arr = array(TS_TYPECODE)
            ts_arr.frombytes(final_ts.tobytes())
            val_arr = array(VAL_TYPECODE)
            val_arr.frombytes(final_vals.tobytes())
            tags = tuple(sorted(self.tags[sid].items()))
            block = SeriesBlock(metric, tags, ts_arr, val_arr, _trusted=True)
            out.append(Series.from_block(block, validate=False))
        out.sort(key=lambda s: s.tags)
        return out


@dataclass
class TsdbQuery:
    """A query: metric over ``[start, end)`` with tag predicates.

    ``tag_filters`` maps tag key -> exact value or ``"*"`` (present with
    any value).  ``group_by`` lists tag keys whose distinct values each
    produce one output series; series differing only in non-grouped
    tags are combined with ``aggregator``.
    """

    metric: str
    start: int
    end: int
    tag_filters: Dict[str, str] = field(default_factory=dict)
    group_by: Tuple[str, ...] = ()
    aggregator: str = "avg"
    downsample_window: Optional[int] = None
    downsample_aggregator: str = "avg"
    rate: bool = False

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("query end must be after start")
        if self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"unknown aggregator {self.aggregator!r}; "
                f"choose from {sorted(AGGREGATORS)}"
            )
        if self.downsample_window is not None:
            # Fractional windows used to slip through silently and
            # produce float bucket boundaries downstream; an integer
            # window is the only thing either raw or rollup tiers can
            # satisfy (sub-base-resolution requests are additionally
            # surfaced as lifecycle.tier_miss at planning time).
            if isinstance(self.downsample_window, bool) or not isinstance(
                self.downsample_window, int
            ):
                raise TypeError("downsample window must be an integer (seconds)")
            if self.downsample_window < 1:
                raise ValueError("downsample window must be >= 1 second")
        if self.downsample_aggregator not in AGGREGATORS:
            raise ValueError(
                f"unknown downsample aggregator {self.downsample_aggregator!r}; "
                f"choose from {sorted(AGGREGATORS)}"
            )


@dataclass
class ConsistentResult:
    """A query answer annotated with the consistency it was served at.

    ``mode`` is ``"strong"`` when every region's share came from a live
    primary, else ``"timeline"``; ``staleness`` is the worst follower
    staleness bound that contributed (0.0 in strong mode).
    """

    series: List[Series]
    mode: str
    staleness: float = 0.0


class QueryEngine:
    """Executes :class:`TsdbQuery` objects against a simulated deployment."""

    def __init__(
        self,
        master: HMaster,
        uids: UniqueIdRegistry,
        codec: RowKeyCodec,
        table: str = DATA_TABLE,
        lifecycle: Optional["LifecycleManager"] = None,
    ) -> None:
        self.master = master
        self.uids = uids
        self.codec = codec
        self.table = table
        #: Tier router (None = always raw).  Injected by the cluster
        #: factory when a lifecycle policy is configured.
        self.lifecycle = lifecycle
        #: Cumulative cells touched by scans — the deterministic cost
        #: proxy the lifecycle soak gates on (wall time is too noisy).
        self.scan_cells = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, query: TsdbQuery) -> List[Series]:
        """Execute a query; returns one Series per group (sorted by tags).

        With a lifecycle manager attached, the query is transparently
        served from the coarsest rollup tier whose answer is
        bit-identical to the raw path (or pooled tier math once raw has
        been expired); otherwise — and on singleton-plan fallback — it
        scans raw cells exactly as before.
        """
        if self.lifecycle is not None:
            routed = self.lifecycle.route(query, self._read_series)
            if routed is not None:
                return routed
        return group_and_aggregate(query, self._read_series(query))

    def route_tier(self, query: TsdbQuery) -> str:
        """The serving source :meth:`run` would use (pure; for cache keys)."""
        if self.lifecycle is None:
            return "raw"
        return self.lifecycle.route_tier(query)

    def run_available(self, query: TsdbQuery) -> ConsistentResult:
        """Execute preferring strong reads, degrading to timeline.

        Strong mode reads primary region copies only; when a primary is
        down (crash window before failover completes) and the cluster
        has region replication, the query is re-served in timeline mode
        from the most-caught-up live followers, with the staleness
        bound reported in the result.  Raises
        :class:`RegionUnavailableError` when some region has *no*
        readable copy.  On a healthy cluster the series are exactly
        :meth:`run`'s (strong mode, staleness 0).  Tier routing applies
        exactly as in :meth:`run`, at whichever consistency level the
        read ends up served.
        """
        try:
            return self._run_available_mode(query, timeline=False)
        except RegionUnavailableError:
            return self._run_available_mode(query, timeline=True)

    def _run_available_mode(self, query: TsdbQuery, timeline: bool) -> ConsistentResult:
        worst = [0.0]

        def reader(q: TsdbQuery) -> List[Series]:
            series, staleness = self._read_series_consistent(q, timeline=timeline)
            if staleness > worst[0]:
                worst[0] = staleness
            return series

        mode = "timeline" if timeline else "strong"
        if self.lifecycle is not None:
            routed = self.lifecycle.route(query, reader)
            if routed is not None:
                return ConsistentResult(routed, mode, worst[0])
        raw = reader(query)
        return ConsistentResult(group_and_aggregate(query, raw), mode, worst[0])

    def series_for(self, query: TsdbQuery) -> List[Series]:
        """Raw matching series with no grouping/aggregation (drill-down view)."""
        return self._read_series(query)

    def run_pointwise(self, query: TsdbQuery) -> List[Series]:
        """Reference execution through the per-cell scan path.

        Kept for equivalence testing and read-path ablations; production
        callers should use :meth:`run`, which is bit-identical.
        """
        return group_and_aggregate(query, self._read_series_pointwise(query))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _read_series(self, query: TsdbQuery) -> List[Series]:
        """Columnar scan assembly: the default (block) read path."""
        try:
            metric_uid = self.uids.get("metric", query.metric)
        except UnknownUidError:
            return []
        state = _BlockScanState(self.codec, self.uids)
        for lo, hi in self.codec.scan_ranges(metric_uid, query.start, query.end):
            cells = self.master.direct_scan(self.table, lo, hi)
            self.scan_cells += len(cells)
            state.ingest_scan(cells, query)
        return state.to_series()

    def _read_series_consistent(
        self, query: TsdbQuery, timeline: bool
    ) -> Tuple[List[Series], float]:
        """Columnar assembly over the availability-aware master scan."""
        try:
            metric_uid = self.uids.get("metric", query.metric)
        except UnknownUidError:
            return [], 0.0
        state = _BlockScanState(self.codec, self.uids)
        staleness = 0.0
        for lo, hi in self.codec.scan_ranges(metric_uid, query.start, query.end):
            cells, range_staleness = self.master.direct_scan_consistent(
                self.table, lo, hi, timeline=timeline
            )
            self.scan_cells += len(cells)
            staleness = max(staleness, range_staleness)
            state.ingest_scan(cells, query)
        return state.to_series(), staleness

    def _read_series_pointwise(self, query: TsdbQuery) -> List[Series]:
        """Per-cell reference path (one dict op per cell)."""
        try:
            metric_uid = self.uids.get("metric", query.metric)
        except UnknownUidError:
            return []
        state = _ScanState()
        for lo, hi in self.codec.scan_ranges(metric_uid, query.start, query.end):
            cells = self.master.direct_scan(self.table, lo, hi)
            self.scan_cells += len(cells)
            # Blobs first so point-cell shadowing is decided in one pass.
            for cell in cells:
                if is_compacted(cell):
                    self._ingest_cell(cell, query, state, is_blob=True)
            for cell in cells:
                if not is_compacted(cell):
                    self._ingest_cell(cell, query, state, is_blob=False)
        return state.to_series()

    def _ingest_cell(
        self,
        cell: Cell,
        query: TsdbQuery,
        state: "_ScanState",
        is_blob: bool,
    ) -> None:
        sid = self.codec.series_id(cell.row)
        if sid in state.filtered:
            return
        if sid not in state.tags:
            decoded = self.codec.decode(cell.row, b"\x00\x00")
            tags = self.uids.decode_tags(decoded.tag_pairs)
            if not self._match_tags(tags, query.tag_filters):
                state.filtered.add(sid)
                return
            state.tags[sid] = tags
        base = self.codec.decode(cell.row, b"\x00\x00").base_time
        ts_map = state.points.setdefault(sid, {})
        if is_blob:
            key = (sid, base)
            if cell.ts >= state.blob_ts.get(key, -1.0):
                state.blob_ts[key] = cell.ts
            for offset, value in decompact_cell(cell):
                t = base + offset
                if query.start <= t < query.end:
                    prev = ts_map.get(t)
                    if prev is None or cell.ts >= prev[1]:
                        ts_map[t] = (value, cell.ts)
        else:
            t = base + int.from_bytes(cell.qualifier, "big")
            if not (query.start <= t < query.end):
                return
            # Point cells at or before a compacted blob's write time were
            # merged into the blob; the blob is authoritative for them.
            if cell.ts <= state.blob_ts.get((sid, base), -1.0):
                return
            prev = ts_map.get(t)
            if prev is None or cell.ts >= prev[1]:
                ts_map[t] = (decode_f64(cell.value), cell.ts)

    @staticmethod
    def _match_tags(tags: Dict[str, str], filters: Dict[str, str]) -> bool:
        """Exact-or-wildcard predicate evaluation."""
        for key, expected in filters.items():
            actual = tags.get(key)
            if actual is None:
                return False
            if expected != WILDCARD and actual != expected:
                return False
        return True
