"""TSDB query engine: scan, decode, filter, group, aggregate.

Answers OpenTSDB-style queries against the simulated HBase tables:

1. plan row-key scan ranges for the metric and time window (one range
   per salt bucket — the read-side cost of salting);
2. scan, decode row keys, and expand compacted columns;
3. filter by tag predicates, group series by tag keys;
4. within each group, aggregate / downsample / rate-convert.

Queries read through the master's administrative scan: the
visualization and analysis paths study *data* semantics, not RPC
timing (which E1/E2/E6/E7 cover on the write path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hbase.bytescodec import decode_f64
from ..hbase.master import HMaster
from ..hbase.region import Cell
from .aggregation import AGGREGATORS, Series, aggregate, downsample, rate
from .compaction import decompact_cell, is_compacted
from .rowkey import RowKeyCodec
from .tsd import DATA_TABLE
from .uid import UniqueIdRegistry, UnknownUidError

__all__ = ["TsdbQuery", "QueryEngine", "group_and_aggregate"]

WILDCARD = "*"


def group_and_aggregate(query: "TsdbQuery", raw: List[Series]) -> List[Series]:
    """Apply a query's group-by/aggregate/downsample/rate stages to raw series.

    Shared by the offline engine and the RPC-path executor so the two
    read paths cannot diverge semantically.
    """
    if not raw:
        return []
    groups: Dict[Tuple[Tuple[str, str], ...], List[Series]] = {}
    for series in raw:
        key = tuple((k, series.tag_dict.get(k, "")) for k in query.group_by)
        groups.setdefault(key, []).append(series)
    out: List[Series] = []
    for key in sorted(groups):
        combined = aggregate(groups[key], query.aggregator)
        if query.downsample_window is not None:
            combined = downsample(
                combined, query.downsample_window, query.downsample_aggregator
            )
        if query.rate:
            combined = rate(combined)
        out.append(combined)
    return out


class _ScanState:
    """Accumulator shared across salt-bucket scans of one query."""

    __slots__ = ("points", "tags", "filtered", "blob_ts")

    def __init__(self) -> None:
        # series_id -> {timestamp: (value, write_ts)}
        self.points: Dict[bytes, Dict[int, Tuple[float, float]]] = {}
        self.tags: Dict[bytes, Dict[str, str]] = {}
        self.filtered: set = set()
        # (series_id, base_time) -> newest compacted-blob write-ts
        self.blob_ts: Dict[Tuple[bytes, int], float] = {}

    def to_series(self) -> List[Series]:
        """Materialise the accumulated points into sorted Series."""
        out: List[Series] = []
        for sid, ts_map in self.points.items():
            if not ts_map:
                continue
            tags = self.tags[sid]
            times = np.array(sorted(ts_map), dtype=np.int64)
            values = np.array([ts_map[int(t)][0] for t in times])
            out.append(Series(tuple(sorted(tags.items())), times, values))
        out.sort(key=lambda s: s.tags)
        return out


@dataclass
class TsdbQuery:
    """A query: metric over ``[start, end)`` with tag predicates.

    ``tag_filters`` maps tag key -> exact value or ``"*"`` (present with
    any value).  ``group_by`` lists tag keys whose distinct values each
    produce one output series; series differing only in non-grouped
    tags are combined with ``aggregator``.
    """

    metric: str
    start: int
    end: int
    tag_filters: Dict[str, str] = field(default_factory=dict)
    group_by: Tuple[str, ...] = ()
    aggregator: str = "avg"
    downsample_window: Optional[int] = None
    downsample_aggregator: str = "avg"
    rate: bool = False

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("query end must be after start")
        if self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"unknown aggregator {self.aggregator!r}; "
                f"choose from {sorted(AGGREGATORS)}"
            )
        if self.downsample_window is not None and self.downsample_window < 1:
            raise ValueError("downsample window must be >= 1 second")
        if self.downsample_aggregator not in AGGREGATORS:
            raise ValueError(
                f"unknown downsample aggregator {self.downsample_aggregator!r}; "
                f"choose from {sorted(AGGREGATORS)}"
            )


class QueryEngine:
    """Executes :class:`TsdbQuery` objects against a simulated deployment."""

    def __init__(
        self,
        master: HMaster,
        uids: UniqueIdRegistry,
        codec: RowKeyCodec,
        table: str = DATA_TABLE,
    ) -> None:
        self.master = master
        self.uids = uids
        self.codec = codec
        self.table = table

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, query: TsdbQuery) -> List[Series]:
        """Execute a query; returns one Series per group (sorted by tags)."""
        return group_and_aggregate(query, self._read_series(query))

    def series_for(self, query: TsdbQuery) -> List[Series]:
        """Raw matching series with no grouping/aggregation (drill-down view)."""
        return self._read_series(query)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _read_series(self, query: TsdbQuery) -> List[Series]:
        try:
            metric_uid = self.uids.get("metric", query.metric)
        except UnknownUidError:
            return []
        state = _ScanState()
        for lo, hi in self.codec.scan_ranges(metric_uid, query.start, query.end):
            cells = self.master.direct_scan(self.table, lo, hi)
            # Blobs first so point-cell shadowing is decided in one pass.
            for cell in cells:
                if is_compacted(cell):
                    self._ingest_cell(cell, query, state, is_blob=True)
            for cell in cells:
                if not is_compacted(cell):
                    self._ingest_cell(cell, query, state, is_blob=False)
        return state.to_series()

    def _ingest_cell(
        self,
        cell: Cell,
        query: TsdbQuery,
        state: "_ScanState",
        is_blob: bool,
    ) -> None:
        sid = self.codec.series_id(cell.row)
        if sid in state.filtered:
            return
        if sid not in state.tags:
            decoded = self.codec.decode(cell.row, b"\x00\x00")
            tags = self.uids.decode_tags(decoded.tag_pairs)
            if not self._match_tags(tags, query.tag_filters):
                state.filtered.add(sid)
                return
            state.tags[sid] = tags
        base = self.codec.decode(cell.row, b"\x00\x00").base_time
        ts_map = state.points.setdefault(sid, {})
        if is_blob:
            key = (sid, base)
            if cell.ts >= state.blob_ts.get(key, -1.0):
                state.blob_ts[key] = cell.ts
            for offset, value in decompact_cell(cell):
                t = base + offset
                if query.start <= t < query.end:
                    prev = ts_map.get(t)
                    if prev is None or cell.ts >= prev[1]:
                        ts_map[t] = (value, cell.ts)
        else:
            t = base + int.from_bytes(cell.qualifier, "big")
            if not (query.start <= t < query.end):
                return
            # Point cells at or before a compacted blob's write time were
            # merged into the blob; the blob is authoritative for them.
            if cell.ts <= state.blob_ts.get((sid, base), -1.0):
                return
            prev = ts_map.get(t)
            if prev is None or cell.ts >= prev[1]:
                ts_map[t] = (decode_f64(cell.value), cell.ts)

    @staticmethod
    def _match_tags(tags: Dict[str, str], filters: Dict[str, str]) -> bool:
        """Exact-or-wildcard predicate evaluation."""
        for key, expected in filters.items():
            actual = tags.get(key)
            if actual is None:
                return False
            if expected != WILDCARD and actual != expected:
                return False
        return True
