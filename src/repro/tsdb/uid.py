"""Unique-ID registry for metric and tag names.

OpenTSDB never stores strings in row keys: every metric name, tag key
and tag value is interned to a fixed-width (3-byte) UID through the
``tsdb-uid`` table.  This registry reproduces that contract — stable
bidirectional mapping, width-checked, first-come-first-served
assignment — in process.

UIDs are assigned densely from 1 (0 is reserved) per *kind*, so a name
used in two kinds (e.g. a tag value equal to a metric name) gets
independent IDs, as in OpenTSDB.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..hbase.bytescodec import decode_u24, encode_u24

__all__ = ["UniqueIdRegistry", "UIDKind", "UnknownUidError"]

UIDKind = str  # one of "metric", "tagk", "tagv"

_KINDS = ("metric", "tagk", "tagv")


class UnknownUidError(KeyError):
    """Resolution of a UID or name that was never assigned."""


class UniqueIdRegistry:
    """Interning table for metric/tagk/tagv names.

    Parameters
    ----------
    width:
        UID width in bytes (OpenTSDB default: 3, ~16.7M names per kind).
    """

    def __init__(self, width: int = 3) -> None:
        if width != 3:
            # encode_u24 is specialised for the OpenTSDB default; other
            # widths are not needed by this reproduction.
            raise ValueError("only the OpenTSDB default width of 3 bytes is supported")
        self.width = width
        self._forward: Dict[UIDKind, Dict[str, int]] = {k: {} for k in _KINDS}
        self._reverse: Dict[UIDKind, Dict[int, str]] = {k: {} for k in _KINDS}
        self._next: Dict[UIDKind, int] = {k: 1 for k in _KINDS}

    def _check_kind(self, kind: UIDKind) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown UID kind {kind!r}; expected one of {_KINDS}")

    def get_or_create(self, kind: UIDKind, name: str) -> bytes:
        """Return the UID for ``name``, assigning a fresh one if needed."""
        self._check_kind(kind)
        if not name:
            raise ValueError("names must be non-empty")
        table = self._forward[kind]
        uid = table.get(name)
        if uid is None:
            uid = self._next[kind]
            if uid >= (1 << (8 * self.width)):
                raise OverflowError(f"UID space exhausted for kind {kind!r}")
            self._next[kind] = uid + 1
            table[name] = uid
            self._reverse[kind][uid] = name
        return encode_u24(uid)

    def get(self, kind: UIDKind, name: str) -> bytes:
        """Return the UID for an existing name; raise if unassigned."""
        self._check_kind(kind)
        uid = self._forward[kind].get(name)
        if uid is None:
            raise UnknownUidError(f"{kind}:{name}")
        return encode_u24(uid)

    def resolve(self, kind: UIDKind, uid: bytes) -> str:
        """Inverse mapping: UID bytes back to the original name."""
        self._check_kind(kind)
        if len(uid) != self.width:
            raise ValueError(f"UID must be {self.width} bytes, got {len(uid)}")
        name = self._reverse[kind].get(decode_u24(uid))
        if name is None:
            raise UnknownUidError(f"{kind}:{uid.hex()}")
        return name

    def known(self, kind: UIDKind, name: str) -> bool:
        self._check_kind(kind)
        return name in self._forward[kind]

    def names(self, kind: UIDKind) -> Iterator[str]:
        self._check_kind(kind)
        return iter(self._forward[kind])

    def count(self, kind: UIDKind) -> int:
        self._check_kind(kind)
        return len(self._forward[kind])

    # ------------------------------------------------------------------
    # persistence (the tsdb-uid table)
    # ------------------------------------------------------------------
    def persist_to(self, master, table: str = "tsdb-uid") -> int:
        """Write the registry into an HBase table, as OpenTSDB does.

        Layout mirrors the real ``tsdb-uid`` table's two column
        families: forward rows ``f:<kind>:<name> -> uid`` and reverse
        rows ``r:<kind>:<uid> -> name``.  The table is created on first
        use.  Returns the number of cells written.
        """
        from ..hbase.region import Cell

        try:
            master.create_table(table)
        except ValueError:
            pass  # already exists
        written = 0
        for kind in _KINDS:
            for name, uid in self._forward[kind].items():
                uid_bytes = encode_u24(uid)
                fwd = Cell(
                    f"f:{kind}:{name}".encode("utf-8"), b"id", uid_bytes, float(uid)
                )
                rev = Cell(
                    b"r:" + kind.encode() + b":" + uid_bytes, b"name",
                    name.encode("utf-8"), float(uid),
                )
                for cell in (fwd, rev):
                    self._direct_write(master, table, cell)
                    written += 1
        return written

    @staticmethod
    def _direct_write(master, table: str, cell) -> None:
        _, server_name = master.locate(table, cell.row)
        if server_name is None:
            raise RuntimeError("uid table region unassigned")
        for region in master.server(server_name).hosted_regions():
            if region.info.table == table and region.info.contains(cell.row):
                region.put(cell)
                return
        raise RuntimeError("uid region not hosted where expected")  # pragma: no cover

    @classmethod
    def load_from(cls, master, table: str = "tsdb-uid") -> "UniqueIdRegistry":
        """Rebuild a registry from a persisted ``tsdb-uid`` table.

        UID assignments (including the next-id watermarks) round-trip
        exactly, so a reloaded registry keeps producing keys compatible
        with data already stored.
        """
        registry = cls()
        for cell in master.direct_scan(table):
            if not cell.row.startswith(b"f:"):
                continue
            kind, _, name = cell.row[2:].decode("utf-8").partition(":")
            registry._check_kind(kind)
            uid = decode_u24(cell.value)
            registry._forward[kind][name] = uid
            registry._reverse[kind][uid] = name
            registry._next[kind] = max(registry._next[kind], uid + 1)
        return registry

    def encode_tags(self, tags: Dict[str, str]) -> Tuple[Tuple[bytes, bytes], ...]:
        """Intern a tag map into UID pairs, sorted by tag-key UID.

        OpenTSDB sorts tag pairs in the row key by tag-key UID so that a
        given series always produces the same key.
        """
        pairs = [
            (self.get_or_create("tagk", k), self.get_or_create("tagv", v))
            for k, v in tags.items()
        ]
        pairs.sort(key=lambda p: p[0])
        return tuple(pairs)

    def decode_tags(self, pairs: Tuple[Tuple[bytes, bytes], ...]) -> Dict[str, str]:
        """Inverse of :meth:`encode_tags`."""
        return {
            self.resolve("tagk", k): self.resolve("tagv", v) for k, v in pairs
        }
