"""Cluster assembly and ingestion drivers.

``build_cluster`` wires a complete simulated deployment — master,
RegionServers (one per node, as in the paper), TSD daemons (one per
node), row-key codec, UID registry, and either the buffering reverse
proxy or a fire-and-forget submitter.  ``IngestionDriver`` offers load
from a workload generator at a configured sample rate and produces the
measurements Figure 2 and the E6/E7 ablations report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

from ..cluster.failures import OverflowCrashPolicy
from ..cluster.metrics import TimeSeriesRecorder, skew_ratio
from ..cluster.network import LatencyModel, Network
from ..cluster.node import Node
from ..cluster.simulation import Simulator
from ..hbase.master import HMaster
from ..hbase.regionserver import RegionServer, ServiceModel
from ..hbase.replication import ReplicationCoordinator
from ..hbase.zookeeper import ZooKeeper
from ..obs.telemetry import Telemetry
from ..obs.trace import Tracer
from .blocks import BlockBatch, SeriesBlock
from .proxy import DirectSubmitter, ReverseProxy
from .query import QueryEngine
from .rowkey import RowKeyCodec
from .tsd import DATA_TABLE, DataPoint, PutAck, TSDaemon, TSDServiceModel
from .uid import UniqueIdRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..lifecycle.manager import LifecycleManager
    from ..lifecycle.tiers import LifecyclePolicy
    from ..obs.selfreport import SelfReporter
    from ..serve.gateway import GatewayConfig, QueryGateway
    from .compaction import RowCompactor

__all__ = ["ClusterConfig", "TsdbCluster", "build_cluster", "IngestionDriver", "IngestionReport"]


@dataclass
class ClusterConfig:
    """Knobs for a simulated ingestion deployment.

    Defaults reproduce the paper's tuned configuration: salted keys,
    regions pre-split per salt bucket, the buffering reverse proxy on,
    compaction off, WAL on.
    """

    n_nodes: int = 30
    salt_buckets: Optional[int] = None  # None -> multiple of n_nodes, >= 192
    use_proxy: bool = True
    proxy_max_in_flight: Optional[int] = None  # None -> 48 * n_nodes
    rs_queue_capacity: int = 256
    tsd_queue_capacity: int = 1024
    rpc_batch_size: int = 50
    retain_data: bool = False
    compaction_enabled: bool = False
    crash_on_overflow: bool = True
    crash_reject_budget: int = 500
    crash_window: float = 1.0
    crash_restart_delay: float = 5.0
    direct_spray: bool = True  # fire-and-forget mode: round-robin vs single TSD
    trace: bool = False  # span tracing across proxy -> TSD -> RegionServer
    replication_factor: int = 1  # 1 = primary only; N>=2 adds N-1 follower replicas
    failure_detection_delay: float = 0.0  # master's crash-detection lag (sim-seconds)
    service_model: ServiceModel = field(default_factory=ServiceModel)
    tsd_service_model: TSDServiceModel = field(default_factory=TSDServiceModel)
    # None = no lifecycle tier; a LifecyclePolicy wires a LifecycleManager
    # (rollups, TTL retention, tier-routed queries) into the deployment.
    lifecycle: Optional["LifecyclePolicy"] = None

    def resolved_salt_buckets(self) -> int:
        """Default bucket count: a multiple of ``n_nodes`` of at least 128.

        The paper's one-byte random salt gives ~256 buckets over 29
        RegionServers — many buckets per server, so per-bucket hash
        imbalance averages out.  Making the count a node multiple keeps
        the round-robin region assignment exactly even.
        """
        if self.salt_buckets is None:
            per_node = -(-128 // self.n_nodes)  # ceil
            return min(256, self.n_nodes * per_node)
        return self.salt_buckets

    def resolved_proxy_window(self) -> int:
        """Default in-flight window: sized to the bandwidth-delay product.

        Cluster capacity grows with node count while the dominant ack
        latency (the TSD coalescing timer) is constant, so the window
        must scale with nodes or it becomes the bottleneck.  48 batches
        per node keeps the pipe full with ~2x headroom while still
        bounding what can pile onto any RegionServer queue.
        """
        if self.proxy_max_in_flight is None:
            return 40 * self.n_nodes
        return self.proxy_max_in_flight


class TsdbCluster:
    """A fully wired simulated OpenTSDB/HBase deployment."""

    def __init__(self, config: ClusterConfig) -> None:
        if config.n_nodes < 1:
            raise ValueError("need at least one node")
        if config.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if config.failure_detection_delay < 0:
            raise ValueError("failure_detection_delay must be non-negative")
        self.config = config
        self.sim = Simulator()
        # One telemetry tree set per deployment: every component records
        # through a routed view of the same Telemetry, so e.g.
        # ``proxy.retries`` is one counter cluster-wide.  ``metrics`` is
        # the catch-all view, drop-in compatible with the old registry.
        self.telemetry = Telemetry()
        self.metrics = self.telemetry.root
        # Sim-clock tracer shared by the whole ingest path; spans carry
        # sim-seconds so traces line up with the simulated timeline.
        self.tracer = Tracer(enabled=config.trace, clock=lambda: self.sim.now)
        self.network = Network(self.sim, LatencyModel())
        self.zk = ZooKeeper()
        self.master = HMaster(
            self.zk,
            metrics=self.telemetry.registry("master"),
            sim=self.sim,
            failure_detection_delay=config.failure_detection_delay,
        )
        self.uids = UniqueIdRegistry()
        self.codec = RowKeyCodec(config.resolved_salt_buckets())
        # Logical write clock shared by every writer (TSDs, bulk loads,
        # the compactor) so newest-write-wins is globally consistent.
        self._write_clock = itertools.count(1)
        self.next_write_ts = lambda: float(next(self._write_clock))

        service_model = config.service_model
        if config.compaction_enabled:
            # OpenTSDB compaction re-reads and rewrites finished rows,
            # adding RPC traffic to the RegionServers.  Modelled as a
            # 50% surcharge on the per-cell write cost — the reason the
            # paper disabled compaction during ingestion runs.
            service_model = ServiceModel(
                rpc_overhead=service_model.rpc_overhead,
                per_cell_write=service_model.per_cell_write * 1.5,
                per_cell_read=service_model.per_cell_read,
            )

        self.nodes: List[Node] = []
        self.servers: List[RegionServer] = []
        self.tsds: List[TSDaemon] = []
        for i in range(config.n_nodes):
            node = Node(self.sim, f"node{i:02d}")
            self.nodes.append(node)
            rs = RegionServer(
                self.sim,
                self.network,
                node,
                f"rs{i:02d}",
                queue_capacity=config.rs_queue_capacity,
                service_model=service_model,
                metrics=self.telemetry.registry("regionserver"),
                tracer=self.tracer,
                crash_policy_factory=(
                    (lambda srv: OverflowCrashPolicy(
                        self.sim,
                        on_crash=srv.crash,
                        on_restart=srv.restart,
                        reject_budget=config.crash_reject_budget,
                        window=config.crash_window,
                        restart_delay=config.crash_restart_delay,
                    ))
                    if config.crash_on_overflow
                    else None
                ),
            )
            self.master.register_server(rs)
            self.servers.append(rs)
        # Regions pre-split on salt boundaries ("manually split to ensure
        # each region handled an equal proportion of the writes").
        self.master.create_table(
            DATA_TABLE, self.codec.split_keys(), retain_data=config.retain_data
        )
        #: Region replication (None when replication_factor == 1): each
        #: region gets ``rf - 1`` follower replicas on distinct servers,
        #: fed asynchronously from the primary's WAL-synced writes.
        self.replication: Optional[ReplicationCoordinator] = None
        if config.replication_factor > 1:
            self.replication = ReplicationCoordinator(
                self.sim,
                self.network,
                self.master,
                n_followers=config.replication_factor - 1,
                metrics=self.telemetry.registry("replication"),
            )
            self.master.enable_replication(self.replication)
            for rs in self.servers:
                rs.replication_ship = self.replication.ship
        for i, node in enumerate(self.nodes):
            tsd = TSDaemon(
                self.sim,
                self.network,
                node,
                f"tsd{i:02d}",
                self.master,
                self.uids,
                self.codec,
                rpc_batch_size=config.rpc_batch_size,
                queue_capacity=config.tsd_queue_capacity,
                service_model=config.tsd_service_model,
                metrics=self.telemetry.registry("tsd"),
                write_ts=self.next_write_ts,
                tracer=self.tracer,
            )
            self.tsds.append(tsd)

        #: Write listeners (the serving gateway's cache invalidation
        #: hook): called with every submitted/bulk-loaded point batch.
        #: NOTE: fired twice per submitted batch (optimistic + at ack),
        #: so listeners must be idempotent.
        self._write_listeners: List[Callable[[List[DataPoint]], None]] = []
        #: Ingest observers: called exactly once per batch — at ack for
        #: submitted batches, at completion for bulk loads — with
        #: ``(points, written, failed)``.  The exact-once counterpart of
        #: the write listeners, for accounting that must not double.
        self._ingest_observers: List[Callable] = []

        if config.use_proxy:
            self.ingress: ReverseProxy | DirectSubmitter = ReverseProxy(
                self.sim,
                self.network,
                self.tsds,
                max_in_flight=config.resolved_proxy_window(),
                metrics=self.telemetry.registry("proxy"),
                tracer=self.tracer,
            )
        else:
            self.ingress = DirectSubmitter(
                self.sim, self.network, self.tsds, spray=config.direct_spray
            )

        #: The data-lifecycle tier (rollups / retention / tier routing);
        #: wired last so its write hooks see a fully built deployment.
        self.lifecycle: Optional["LifecycleManager"] = None
        if config.lifecycle is not None:
            from ..lifecycle.manager import LifecycleManager

            self.lifecycle = LifecycleManager(self, config.lifecycle)

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    def submit(self, points, on_ack: Optional[Callable[[PutAck], None]] = None) -> None:
        """Submit a point batch (list of points or a :class:`BlockBatch`).

        The ingress path is payload-shape-agnostic — it only ever takes
        ``len()`` and point-granular slices — so columnar batches flow
        through the same proxy window, retries, and delivery
        accounting as point lists.
        """
        if points and (self._write_listeners or self._ingest_observers):
            # Notify listeners twice: optimistically at submit (evict
            # before the batch is even durable — conservative and cheap)
            # and again when its ack lands, because a query executed
            # *between* the two would otherwise cache a result missing
            # these points.  Observers fire exactly once, at ack.
            self._notify_writes(points)
            inner = on_ack

            def acked(ack: PutAck) -> None:
                self._notify_writes(points)
                self._notify_ingest(points, ack.written, ack.failed)
                if inner is not None:
                    inner(ack)

            on_ack = acked
        self.ingress.submit(points, on_ack)

    def submit_blocks(
        self,
        blocks,
        on_ack: Optional[Callable[[PutAck], None]] = None,
    ) -> None:
        """Submit columnar blocks through the ingress (the hot path).

        Accepts a :class:`BlockBatch`, a single :class:`SeriesBlock`,
        or an iterable of blocks; the batch is serviced end to end at
        block-granular cost.
        """
        if isinstance(blocks, SeriesBlock):
            blocks = BlockBatch([blocks])
        elif not isinstance(blocks, BlockBatch):
            blocks = BlockBatch(list(blocks))
        self.submit(blocks, on_ack)

    def add_write_listener(self, listener: Callable[[List[DataPoint]], None]) -> None:
        """Subscribe to write notifications (cache invalidation feed)."""
        self._write_listeners.append(listener)

    def remove_write_listener(self, listener: Callable[[List[DataPoint]], None]) -> None:
        self._write_listeners.remove(listener)

    def _notify_writes(self, points: List[DataPoint]) -> None:
        for listener in self._write_listeners:
            listener(points)

    def add_ingest_observer(self, observer: Callable) -> None:
        """Subscribe to exact-once batch notifications.

        ``observer(points, written, failed)`` is called once per batch:
        at ack time for :meth:`submit`, synchronously for bulk loads.
        Unlike write listeners it never double-fires, so it can carry
        counting that must balance (the lifecycle conservation ledger).
        """
        self._ingest_observers.append(observer)

    def _notify_ingest(self, points, written: int, failed: int) -> None:
        for observer in self._ingest_observers:
            observer(points, written, failed)

    def query_engine(self) -> QueryEngine:
        return QueryEngine(
            self.master, self.uids, self.codec, lifecycle=self.lifecycle
        )

    def self_reporter(self, interval: float = 0.25, chaos_report=None) -> "SelfReporter":
        """A :class:`~repro.obs.SelfReporter` flushing this deployment's
        telemetry back into its own TSDB as ``tsd.*``/``proxy.*`` series."""
        from ..obs.selfreport import SelfReporter

        return SelfReporter(self, interval=interval, chaos_report=chaos_report)

    def compactor(self) -> "RowCompactor":
        """A row compactor wired to this deployment's write clock (and,
        when configured, its lifecycle tier — compaction-integrated
        expiry drops expired rows before any rewriting happens)."""
        from .compaction import RowCompactor

        return RowCompactor(
            self.master,
            DATA_TABLE,
            write_ts=self.next_write_ts,
            lifecycle=self.lifecycle,
        )

    def gateway(self, config: Optional["GatewayConfig"] = None) -> "QueryGateway":
        """A serving gateway over this deployment's read path.

        Wires the ``serve.*`` telemetry tree and subscribes the
        gateway's cache invalidation to this cluster's write paths.
        """
        from ..serve.gateway import QueryGateway

        return QueryGateway(self, config=config)

    def async_query_executor(self, host: str = "query-client"):
        """A timing-aware query executor over the simulated RPC path."""
        from ..hbase.client import HTableClient
        from .readpath import AsyncQueryExecutor

        client = HTableClient(
            self.sim, self.network, self.master, host, rpc_timeout=2.0
        )
        return AsyncQueryExecutor(
            self.sim, client, self.uids, self.codec, lifecycle=self.lifecycle
        )

    def direct_put(self, points) -> int:
        """Bulk-load points straight into the regions (no simulated RPC).

        The offline path: analysis results written back to the TSDB
        ("results from online evaluation are reported back to OpenTSDB")
        and example/bench data loading, where ingestion *timing* is not
        under study.  Accepts an iterable of points, a
        :class:`SeriesBlock`, or a :class:`BlockBatch` (columnar
        payloads take the block fast path).  Returns the number of
        cells written.
        """
        if isinstance(points, SeriesBlock):
            points = BlockBatch([points])
        if isinstance(points, BlockBatch):
            return self._direct_put_blocks(points)
        tsd = self.tsds[0]
        written = 0
        notify: List[DataPoint] = []
        mirrored: Dict[str, List] = {}
        for point in points:
            cell = tsd.encode_point(point)
            _, server_name = self.master.locate(DATA_TABLE, cell.row)
            if server_name is None:
                raise RuntimeError("region unassigned; cannot bulk-load")
            server = self.master.server(server_name)
            for region in server.hosted_regions():
                if region.info.contains(cell.row):
                    region.put(cell)
                    written += 1
                    notify.append(point)
                    if self.replication is not None:
                        mirrored.setdefault(region.info.name, []).append(cell)
                    break
        if self.replication is not None:
            # Bulk loads bypass the RegionServer RPC path (and hence the
            # WAL-shipping hook), so followers are synced explicitly.
            for name, cells in mirrored.items():
                self.replication.mirror(name, cells)
        if notify:
            # Bulk loads land synchronously, so one notification suffices.
            self._notify_writes(notify)
            self._notify_ingest(notify, written, 0)
        return written

    def _direct_put_blocks(self, batch: BlockBatch) -> int:
        """Bulk-load a columnar batch region-run by region-run."""
        tsd = self.tsds[0]
        written = 0
        for block in batch.blocks:
            cells = tsd.encode_block(block)
            run: List = []
            region = None
            prev_row: Optional[bytes] = None
            for cell in cells:
                if cell.row != prev_row:
                    prev_row = cell.row
                    if region is None or not region.info.contains(cell.row):
                        if region is not None and run:
                            region.put_block(run)
                            written += len(run)
                            if self.replication is not None:
                                self.replication.mirror(region.info.name, run)
                        run = []
                        region = self._region_hosting(cell.row)
                if region is not None:
                    run.append(cell)
            if region is not None and run:
                region.put_block(run)
                written += len(run)
                if self.replication is not None:
                    self.replication.mirror(region.info.name, run)
        if len(batch):
            self._notify_writes(batch)
            # Rows with no containing region are silently skipped by the
            # point path; surface them as failures so exact accounting
            # can taint rather than miscount.
            self._notify_ingest(batch, written, len(batch) - written)
        return written

    def _region_hosting(self, row: bytes):
        """The live region hosting ``row`` (None mirrors the point path's
        silent skip of rows with no containing region)."""
        _, server_name = self.master.locate(DATA_TABLE, row)
        if server_name is None:
            raise RuntimeError("region unassigned; cannot bulk-load")
        server = self.master.server(server_name)
        for region in server.hosted_regions():
            if region.info.contains(row):
                return region
        return None

    def per_server_writes(self) -> Dict[str, int]:
        return {rs.name: rs.cells_written for rs in self.servers}

    def total_crashes(self) -> int:
        return int(self.metrics.counter("regionserver.crashes").get())

    def write_skew(self) -> float:
        return skew_ratio(self.per_server_writes().values())


@dataclass
class IngestionReport:
    """Outcome of one ingestion run (all rates in simulated seconds)."""

    n_nodes: int
    duration: float
    offered_samples: int
    committed_samples: int
    failed_samples: int
    throughput: float  # committed samples per simulated second
    per_server_writes: Dict[str, int]
    write_skew: float
    crashes: int
    proxy_buffer_high_water: int
    client_retries: int
    timeline: TimeSeriesRecorder

    def summary_row(self) -> str:
        return (
            f"{self.n_nodes:3d} nodes  {self.throughput / 1000.0:7.1f}k samples/s  "
            f"skew={self.write_skew:5.2f}  crashes={self.crashes}"
        )


class IngestionDriver:
    """Open-loop load generator over a simulated cluster.

    Emits batches of ``batch_size`` points from ``workload`` every
    ``batch_size / offered_rate`` simulated seconds and counts durable
    acknowledgements.  Offered load above cluster capacity is the
    interesting regime: throughput then measures capacity, as in
    Figure 2.
    """

    def __init__(
        self,
        cluster: TsdbCluster,
        workload: Iterator[List[DataPoint]],
        offered_rate: float,
        batch_size: int = 50,
        record_interval: float = 0.25,
    ) -> None:
        if offered_rate <= 0:
            raise ValueError("offered_rate must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.cluster = cluster
        self.workload = workload
        self.offered_rate = offered_rate
        self.batch_size = batch_size
        self.record_interval = record_interval
        self.offered = 0
        self.committed = 0
        self.failed = 0
        self.committed_at_stop = 0
        self.committed_at_warm = 0
        self.timeline = TimeSeriesRecorder("samples_committed")
        self._stop_at = 0.0

    # ------------------------------------------------------------------
    def run(self, duration: float, drain: float = 1.0, warmup: float = 0.0) -> IngestionReport:
        """Offer load for ``warmup + duration`` sim-seconds, then report.

        Throughput is the committed-sample delta over the measurement
        window ``[warmup, warmup + duration]`` — the warm-up excludes
        pipeline fill, the drain window merely lets in-flight batches
        resolve so total accounting is exact.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        sim = self.cluster.sim
        self._stop_at = sim.now + warmup + duration
        interval = self.batch_size / self.offered_rate
        sim.schedule(0.0, self._tick, interval)
        sim.schedule(self.record_interval, self._record)
        sim.schedule(warmup, self._snapshot_warm)
        sim.schedule(warmup + duration, self._snapshot_stop)
        sim.run(until=self._stop_at + drain)
        self.timeline.record(sim.now, self.committed)
        return IngestionReport(
            n_nodes=self.cluster.config.n_nodes,
            duration=duration,
            offered_samples=self.offered,
            committed_samples=self.committed,
            failed_samples=self.failed,
            throughput=(self.committed_at_stop - self.committed_at_warm) / duration,
            per_server_writes=self.cluster.per_server_writes(),
            write_skew=self.cluster.write_skew(),
            crashes=self.cluster.total_crashes(),
            proxy_buffer_high_water=getattr(self.cluster.ingress, "buffer_high_water", 0),
            client_retries=int(self.cluster.metrics.counter("client.retries").get()),
            timeline=self.timeline,
        )

    # ------------------------------------------------------------------
    def _tick(self, interval: float) -> None:
        sim = self.cluster.sim
        if sim.now >= self._stop_at:
            return
        batch = next(self.workload, None)
        if batch:
            self.offered += len(batch)
            self.cluster.submit(batch, self._on_ack)
        if batch is not None:
            sim.schedule(interval, self._tick, interval)

    def _snapshot_warm(self) -> None:
        self.committed_at_warm = self.committed

    def _snapshot_stop(self) -> None:
        # Throughput is measured over the offered-load window only;
        # commits that land during the drain are excluded.
        self.committed_at_stop = self.committed

    def _on_ack(self, ack: PutAck) -> None:
        self.committed += ack.written
        self.failed += ack.failed

    def _record(self) -> None:
        sim = self.cluster.sim
        self.timeline.record(sim.now, self.committed)
        if sim.now < self._stop_at:
            sim.schedule(self.record_interval, self._record)


def build_cluster(config: Optional[ClusterConfig] = None, **overrides) -> TsdbCluster:
    """Build a simulated deployment (``ClusterConfig`` fields as kwargs)."""
    if config is None:
        config = ClusterConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a config object or keyword overrides, not both")
    return TsdbCluster(config)
