"""TSD daemons: the OpenTSDB write/query frontends.

Each cluster node runs one TSD.  A TSD accepts batched data points
(the HTTP ``/api/put`` equivalent), interns names to UIDs, encodes the
salted row keys, and writes to HBase through an asynchronous client
that — like AsyncHBase — **buffers cells per destination region** so
RegionServers see full batches even though a single inbound batch
scatters across salt buckets.

A put batch is acknowledged only when every one of its cells has been
acknowledged by a RegionServer (durable ack), which is what gives the
reverse proxy's in-flight window (:mod:`repro.tsdb.proxy`) its
backpressure semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..cluster.metrics import MetricsRegistry
from ..cluster.network import Network
from ..cluster.node import Node, Server
from ..cluster.simulation import Simulator
from ..hbase.bytescodec import encode_f64
from ..hbase.client import HTableClient
from ..hbase.master import HMaster
from ..hbase.region import Cell
from ..obs.telemetry import component_registry
from ..obs.trace import NULL_SPAN, SpanLike, Tracer
from .blocks import BlockBatch, SeriesBlock
from .rowkey import RowKeyCodec
from .uid import UniqueIdRegistry

__all__ = ["DataPoint", "PutAck", "TSDaemon", "TSDServiceModel", "DATA_TABLE"]

DATA_TABLE = "tsdb"


@dataclass(frozen=True, slots=True)
class DataPoint:
    """One sensor sample: ``metric{tags} timestamp = value``."""

    metric: str
    timestamp: int
    value: float
    tags: Tuple[Tuple[str, str], ...]

    @staticmethod
    def make(metric: str, timestamp: int, value: float, tags: Dict[str, str]) -> "DataPoint":
        return DataPoint(metric, timestamp, value, tuple(sorted(tags.items())))


@dataclass
class PutAck:
    """Resolution of one inbound put batch."""

    ok: bool
    written: int
    failed: int
    tsd: str


@dataclass
class TSDServiceModel:
    """TSD-side CPU cost of handling a put batch (seconds).

    ``overhead + per_point × n``: parsing, UID lookups, key encoding.
    Defaults give ≈41k points/s per TSD — comfortably above a single
    RegionServer's ≈13.3k cells/s, so the storage tier stays the
    bottleneck (as in the paper), while a *single* TSD still caps well
    below full-cluster capacity, which is why the proxy's round-robin
    fan-out matters (E7 ablation).
    """

    overhead: float = 0.0002
    per_point: float = 0.00002
    #: Block-batch costs: per-series setup (UID interning, row prefix,
    #: one salt hash per row hour) is paid once per *block*, and the
    #: residual per-point work is one table-lookup qualifier + column
    #: append — calibrated at per_point / 10 to match the measured
    #: wall-clock ratio of the columnar parse/encode kernels.
    per_block: float = 0.00005
    per_point_block: float = 0.000002

    def batch_cost(self, n_points: int) -> float:
        return self.overhead + self.per_point * n_points

    def block_cost(self, n_blocks: int, n_points: int) -> float:
        return self.overhead + self.per_block * n_blocks + self.per_point_block * n_points


class _BatchContext:
    """Refcount tracker tying buffered cells back to their inbound batch."""

    __slots__ = ("pending", "written", "failed", "reply", "batch_id", "span")

    def __init__(
        self,
        n_points: int,
        reply: Callable[[PutAck], None],
        batch_id: Optional[int] = None,
        span: SpanLike = NULL_SPAN,
    ) -> None:
        self.pending = n_points
        self.written = 0
        self.failed = 0
        self.reply = reply
        self.batch_id = batch_id
        self.span = span


class TSDaemon:
    """One OpenTSDB daemon instance.

    Parameters
    ----------
    rpc_batch_size:
        Cells buffered per destination salt bucket before flushing one
        HBase put RPC (AsyncHBase-style write coalescing).
    flush_interval:
        Timer that flushes partially filled buffers so tail points are
        not stranded.
    queue_capacity:
        Inbound request queue bound; overflow rejects the batch (the
        proxy retries elsewhere).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node: Node,
        name: str,
        master: HMaster,
        uids: UniqueIdRegistry,
        codec: RowKeyCodec,
        rpc_batch_size: int = 50,
        flush_interval: float = 0.15,
        queue_capacity: int = 1024,
        service_model: Optional[TSDServiceModel] = None,
        metrics: Optional[MetricsRegistry] = None,
        write_ts: Optional[Callable[[], float]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if rpc_batch_size < 1:
            raise ValueError("rpc_batch_size must be >= 1")
        self.sim = sim
        self.network = network
        self.node = node
        self.name = name
        self.uids = uids
        self.codec = codec
        self.rpc_batch_size = rpc_batch_size
        self.flush_interval = flush_interval
        self.service_model = service_model if service_model is not None else TSDServiceModel()
        self.metrics = metrics if metrics is not None else component_registry("tsd")
        self.tracer = tracer if tracer is not None else Tracer()
        self.http_server = Server(sim, name, queue_capacity, self.metrics)
        node.add_server(self.http_server)
        if write_ts is None:
            counter = itertools.count(1)
            write_ts = lambda: float(next(counter))  # noqa: E731 - tiny local clock
        self._next_write_ts = write_ts
        self.client = HTableClient(
            sim, network, master, node.hostname, metrics=self.metrics, rpc_timeout=2.0
        )
        # Per-salt-bucket write buffers: bucket -> [(cell, batch context)]
        self._buffers: Dict[int, List[Tuple[Cell, _BatchContext]]] = {}
        # Per-bucket linger timers (armed when the first cell arrives).
        self._linger_timers: Dict[int, object] = {}
        self.points_received = 0
        self.points_written = 0
        self.points_failed = 0
        self.crashed = False
        self.batches_swallowed = 0

    # ------------------------------------------------------------------
    # lifecycle (chaos hooks)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the daemon process: queued work is lost, nothing replies.

        Unlike a queue-overflow rejection (which still sends a negative
        ack), a crashed TSD is silent — in-flight batches are swallowed
        and their acks never arrive, which is exactly the failure the
        proxy's ack timeouts and the publisher's ack deadlines exist to
        survive.  Buffered-but-unflushed cells die with the process.
        """
        if self.crashed:
            return
        self.crashed = True
        self.http_server.stop()
        for timer in self._linger_timers.values():
            timer.cancel()  # type: ignore[attr-defined]
        self._linger_timers.clear()
        self._buffers.clear()
        self.metrics.counter("tsd.crashes").inc(label=self.name)

    def restart(self) -> None:
        """Bring the daemon back up with empty buffers."""
        if not self.crashed:
            return
        self.crashed = False
        self.http_server.start()

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put_batch(
        self,
        points: "Union[List[DataPoint], BlockBatch]",
        reply_to: Callable[[PutAck], None],
        src_host: str,
        batch_id: Optional[int] = None,
    ) -> None:
        """Accept a batch of points (async); ack routed back over the network.

        The payload may be a plain point list or a :class:`BlockBatch`;
        a block batch is serviced at the cheaper columnar cost and
        written block-granularly (the delivery/ack contract — one
        :class:`PutAck` covering every point — is identical, so the
        proxy and publisher need no forked logic).  ``batch_id`` is
        trace correlation only (stamped by the proxy) — it ties this
        daemon's ingest span to the proxy's batch trace.
        """
        if self.crashed:
            # Dead process: the batch vanishes without an ack.
            self.batches_swallowed += 1
            self.metrics.counter("tsd.batches_swallowed").inc(label=self.name)
            return
        # Covers HTTP queueing + parse/encode service + HBase round trips
        # until the last cell of the batch is durably acked.
        span = self.tracer.begin(
            "tsd.ingest", batch_id=batch_id, tsd=self.name, points=len(points)
        )
        if isinstance(points, BlockBatch):
            cost = self.service_model.block_cost(points.n_blocks, len(points))
            handler = self._process_blocks
        else:
            cost = self.service_model.batch_cost(len(points))
            handler = self._process
        accepted = self.http_server.submit(
            points,
            cost,
            on_done=lambda pts: handler(pts, reply_to, src_host, batch_id, span),
            on_reject=lambda pts: self._reject(pts, reply_to, src_host, span),
        )
        if accepted:
            self.metrics.counter("tsd.batches_accepted").inc(label=self.name)

    def _reject(
        self,
        points: List[DataPoint],
        reply_to: Callable[[PutAck], None],
        src_host: str,
        span: SpanLike = NULL_SPAN,
    ) -> None:
        span.end(outcome="rejected")
        self.metrics.counter("tsd.batches_rejected").inc(label=self.name)
        self._send_ack(reply_to, src_host, PutAck(False, 0, len(points), self.name))

    def _process(
        self,
        points: List[DataPoint],
        reply_to: Callable[[PutAck], None],
        src_host: str,
        batch_id: Optional[int] = None,
        span: SpanLike = NULL_SPAN,
    ) -> None:
        self.points_received += len(points)
        ctx = _BatchContext(
            len(points),
            lambda ack: self._send_ack(reply_to, src_host, ack),
            batch_id=batch_id,
            span=span,
        )
        for point in points:
            cell = self.encode_point(point)
            bucket = cell.row[0] if self.codec.salted else 0
            buf = self._buffers.get(bucket)
            if buf is None:
                buf = self._buffers[bucket] = []
            buf.append((cell, ctx))
            if len(buf) >= self.rpc_batch_size:
                self._flush_bucket(bucket)
            elif len(buf) == 1:
                # First cell in an empty buffer: arm this bucket's linger
                # timer so stragglers are flushed even at low rates.
                self._linger_timers[bucket] = self.sim.schedule(
                    self.flush_interval, self._linger_flush, bucket
                )

    def _process_blocks(
        self,
        batch: BlockBatch,
        reply_to: Callable[[PutAck], None],
        src_host: str,
        batch_id: Optional[int] = None,
        span: SpanLike = NULL_SPAN,
    ) -> None:
        """Block twin of :meth:`_process`: no per-point boxing, no linger.

        A block batch is already coalesced upstream into per-series
        runs, so it skips the per-bucket linger buffers and goes to the
        HBase client as one block-granular put (the client partitions
        by server with one meta lookup per row change).
        """
        n_points = len(batch)
        self.points_received += n_points
        ctx = _BatchContext(
            n_points,
            lambda ack: self._send_ack(reply_to, src_host, ack),
            batch_id=batch_id,
            span=span,
        )
        cells: List[Cell] = []
        for block in batch.blocks:
            cells.extend(self.encode_block(block))
        batch_ids: tuple = ()
        flush_span: SpanLike = NULL_SPAN
        if self.tracer.enabled:
            batch_ids = (batch_id,) if batch_id is not None else ()
            flush_span = self.tracer.begin(
                "hbase.put_block", tsd=self.name, cells=len(cells), batch_ids=batch_ids
            )

        def on_done(ok: bool, count: int) -> None:
            # Every cell belongs to this one batch context; each
            # per-partition resolution covers ``count`` of its points.
            ctx.pending -= count
            if ok:
                ctx.written += count
                self.points_written += count
            else:
                ctx.failed += count
                self.points_failed += count
            if ctx.pending <= 0:
                flush_span.end(ok=ctx.failed == 0)
                ctx.span.end(written=ctx.written, failed=ctx.failed)
                ctx.reply(PutAck(ctx.failed == 0, ctx.written, ctx.failed, self.name))

        self.client.put(DATA_TABLE, cells, on_done, batch_ids=batch_ids, block=True)

    def encode_block(self, block: SeriesBlock) -> List[Cell]:
        """UID-intern and row-key-encode one series block into cells.

        The block twin of :meth:`encode_point`: UID interning and tag
        encoding happen once per block, row keys come from the batch
        codec (one salt hash per row hour), and write timestamps are
        drawn from the same logical clock so newest-wins semantics are
        unchanged.
        """
        metric_uid = self.uids.get_or_create("metric", block.metric)
        tag_pairs = self.uids.encode_tags(dict(block.tags))
        rows, qualifiers = self.codec.encode_rowkeys(metric_uid, block.timestamps, tag_pairs)
        next_wts = self._next_write_ts
        return [
            Cell(row, qualifier, encode_f64(value), next_wts())
            for row, qualifier, value in zip(rows, qualifiers, block.values)
        ]

    def encode_point(self, point: DataPoint) -> Cell:
        """UID-intern and row-key-encode one data point into an HBase cell.

        The cell's ``ts`` is a *write* timestamp from the deployment's
        logical clock (wall-clock write time in real HBase), so
        newest-write-wins resolution and compaction shadowing are
        well-defined even when old data timestamps are backfilled.
        """
        metric_uid = self.uids.get_or_create("metric", point.metric)
        tag_pairs = self.uids.encode_tags(dict(point.tags))
        row, qualifier = self.codec.encode(metric_uid, point.timestamp, tag_pairs)
        return Cell(row, qualifier, encode_f64(point.value), self._next_write_ts())

    def _linger_flush(self, bucket: int) -> None:
        self._linger_timers.pop(bucket, None)
        self._flush_bucket(bucket)

    def _flush_bucket(self, bucket: int) -> None:
        entries = self._buffers.pop(bucket, None)
        timer = self._linger_timers.pop(bucket, None)
        if timer is not None:
            timer.cancel()  # type: ignore[attr-defined]
        if not entries:
            return
        cells = [cell for cell, _ in entries]
        unresolved = [ctx for _, ctx in entries]
        batch_ids: tuple = ()
        flush_span: SpanLike = NULL_SPAN
        if self.tracer.enabled:
            # One flush coalesces cells from several inbound batches;
            # the span lists every one so each batch trace includes it.
            batch_ids = tuple(
                sorted({c.batch_id for c in unresolved if c.batch_id is not None})
            )
            flush_span = self.tracer.begin(
                "hbase.put", tsd=self.name, cells=len(cells), batch_ids=batch_ids
            )

        def on_done(ok: bool, count: int) -> None:
            # The client may resolve the batch in parts (retries can
            # regroup across servers); each resolution covers ``count``
            # cells.  Any ``count`` of the remaining contexts is valid
            # to decrement — every cell entry is exactly one unit.
            for _ in range(min(count, len(unresolved))):
                c = unresolved.pop()
                c.pending -= 1
                if ok:
                    c.written += 1
                else:
                    c.failed += 1
                if c.pending == 0:
                    c.span.end(written=c.written, failed=c.failed)
                    c.reply(PutAck(c.failed == 0, c.written, c.failed, self.name))
            if not unresolved:
                flush_span.end(ok=ok)
            if ok:
                self.points_written += count
            else:
                self.points_failed += count

        self.client.put(DATA_TABLE, cells, on_done, batch_ids=batch_ids)

    def flush_all(self) -> None:
        """Flush every buffered bucket immediately (shutdown/drain hook)."""
        for bucket in list(self._buffers):
            self._flush_bucket(bucket)

    def _send_ack(self, reply_to: Callable[[PutAck], None], dst_host: str, ack: PutAck) -> None:
        if self.crashed:
            return  # a dead process sends nothing; the batch is swallowed
        self.network.send(self.node.hostname, dst_host, reply_to, ack)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TSDaemon {self.name} received={self.points_received}>"
