"""Timing-aware query execution over the simulated RPC path.

The offline :class:`~repro.tsdb.query.QueryEngine` reads region data
directly (analysis correctness, no timing).  This module executes the
same queries through the full simulated machinery — TSD-side query
costs, salt-bucket scan fan-out over the HBase client, per-RegionServer
scan RPCs, network latency — so *read-side* behaviour can be studied
too: most importantly the salting trade-off (writes spread across
buckets, but every read must now fan out to all of them).

Results are bit-identical to the offline engine (asserted in the test
suite); only the timing differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..lifecycle.manager import LifecycleManager

from ..cluster.simulation import Simulator
from ..hbase.client import _DEFAULT_DEADLINE, HTableClient, ScanResult
from ..hbase.region import Cell
from .aggregation import Series
from .query import TsdbQuery, group_and_aggregate
from .rowkey import RowKeyCodec
from .tsd import DATA_TABLE
from .uid import UniqueIdRegistry, UnknownUidError

__all__ = ["AsyncQueryResult", "AsyncQueryExecutor"]


@dataclass
class AsyncQueryResult:
    """Outcome of one RPC-path query.

    ``complete`` is False when at least one salt-bucket scan failed
    within its retry/deadline budget (the series are then partial).
    ``staleness`` is the worst follower staleness bound that
    contributed to a timeline read; 0.0 for primary-only results.
    """

    series: List[Series]
    started_at: float
    finished_at: float
    scans_issued: int
    complete: bool = True
    staleness: float = 0.0
    retries: int = 0
    hedges: int = 0
    follower_reads: int = 0

    @property
    def latency(self) -> float:
        """End-to-end simulated latency in seconds."""
        return self.finished_at - self.started_at


class AsyncQueryExecutor:
    """Runs :class:`TsdbQuery` objects through the simulated client.

    One scan RPC per salt-bucket range (the read amplification salting
    introduces); responses merge through the same decode/filter/group
    logic as the offline engine.
    """

    def __init__(
        self,
        sim: Simulator,
        client: HTableClient,
        uids: UniqueIdRegistry,
        codec: RowKeyCodec,
        table: str = DATA_TABLE,
        lifecycle: Optional["LifecycleManager"] = None,
    ) -> None:
        self.sim = sim
        self.client = client
        self.uids = uids
        self.codec = codec
        self.table = table
        #: Tier router (None = always raw).  The RPC path serves the
        #: single-rewrite plans (pair / non-avg pooled); plans needing
        #: execution-time group checks stay on raw, which is always
        #: correct — tier routing is an optimization, never a semantic.
        self.lifecycle = lifecycle

    # ------------------------------------------------------------------
    def execute(
        self,
        query: TsdbQuery,
        on_done: Callable[[AsyncQueryResult], None],
        consistency: str = "strong",
        deadline: object = _DEFAULT_DEADLINE,
        hedge_delay: Optional[float] = None,
    ) -> None:
        """Run the query; ``on_done`` fires when all scans resolve.

        ``consistency``, ``deadline`` and ``hedge_delay`` pass through
        to :meth:`HTableClient.scan_replicated` per salt-bucket range;
        the merged result reports completeness and the worst staleness
        bound, so callers can distinguish a fresh-but-partial answer
        from a complete-but-stale one.
        """
        started = self.sim.now
        if self.lifecycle is not None:
            plan = self.lifecycle.plan(query, record=False)
            if plan.tier_served:
                rewritten = self.lifecycle.router.rewrite_single(query, plan)
                if rewritten is not None:
                    # Scan the rollup column instead of raw cells; the
                    # rewritten pipeline is bit-identical (pair plans)
                    # or the documented pooled answer.
                    query = rewritten
        try:
            metric_uid = self.uids.get("metric", query.metric)
        except UnknownUidError:
            on_done(AsyncQueryResult([], started, self.sim.now, 0))
            return
        ranges = self.codec.scan_ranges(metric_uid, query.start, query.end)
        collected: List[ScanResult] = []
        remaining = [len(ranges)]

        def handle(result: ScanResult) -> None:
            collected.append(result)
            remaining[0] -= 1
            if remaining[0] == 0:
                series = self._assemble(query, [r.cells for r in collected])
                on_done(
                    AsyncQueryResult(
                        series,
                        started,
                        self.sim.now,
                        len(ranges),
                        complete=all(r.ok for r in collected),
                        staleness=max((r.staleness for r in collected), default=0.0),
                        retries=sum(r.retries for r in collected),
                        hedges=sum(r.hedges for r in collected),
                        follower_reads=sum(r.follower_reads for r in collected),
                    )
                )

        for lo, hi in ranges:
            self.client.scan_replicated(
                self.table, lo, hi, handle,
                consistency=consistency, deadline=deadline, hedge_delay=hedge_delay,
            )

    def execute_sync(
        self,
        query: TsdbQuery,
        consistency: str = "strong",
        deadline: object = _DEFAULT_DEADLINE,
        hedge_delay: Optional[float] = None,
    ) -> AsyncQueryResult:
        """Convenience: run the simulator until the query resolves."""
        box: List[AsyncQueryResult] = []
        self.execute(query, box.append, consistency=consistency,
                     deadline=deadline, hedge_delay=hedge_delay)
        self.sim.run()
        if not box:  # pragma: no cover - defensive
            raise RuntimeError("query did not resolve")
        return box[0]

    # ------------------------------------------------------------------
    def _assemble(self, query: TsdbQuery, scans: List[List[Cell]]) -> List[Series]:
        # Shares the offline engine's columnar scan assembler so the two
        # read paths cannot drift apart semantically.
        from .query import _BlockScanState

        state = _BlockScanState(self.codec, self.uids)
        for cells in scans:
            state.ingest_scan(cells, query)
        return group_and_aggregate(query, state.to_series())
