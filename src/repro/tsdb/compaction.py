"""OpenTSDB row compaction.

OpenTSDB periodically rewrites the (up to 3600) individual columns of a
finished hourly row into a single wide column whose qualifier is the
concatenation of the per-point qualifiers and whose value concatenates
the 8-byte point values.  This shrinks HBase storage and speeds scans
— at the cost of extra read+write RPC traffic against the
RegionServers while ingesting, which is why the paper *disabled*
compaction during its throughput runs.

We implement the real byte format so the query engine can read mixed
compacted/uncompacted tables, and expose an offline compactor that
walks a table and rewrites completed rows.
"""

from __future__ import annotations

import struct
from array import array
from typing import Dict, List, Tuple

from ..hbase.bytescodec import decode_f64, decode_u16
from ..hbase.master import HMaster
from ..hbase.region import Cell
from .blocks import TS_TYPECODE, VAL_TYPECODE, SeriesBlock

__all__ = [
    "COMPACTED_MARKER",
    "compact_row_cells",
    "decompact_cell",
    "decompact_columns",
    "decompact_block",
    "is_compacted",
    "RowCompactor",
]

# A real TSDB distinguishes compacted columns by qualifier length; we
# additionally prefix them so 2-byte single points can never be confused
# with a compacted blob.
COMPACTED_MARKER = b"\xF0"


def is_compacted(cell: Cell) -> bool:
    """True if the cell holds a compacted row blob."""
    return cell.qualifier[:1] == COMPACTED_MARKER


def compact_row_cells(cells: List[Cell]) -> Cell:
    """Merge one row's point cells into a single compacted cell.

    ``cells`` must share a row key and hold 2-byte qualifiers.  Points
    are ordered by offset; duplicate offsets keep the newest write.
    """
    if not cells:
        raise ValueError("cannot compact an empty row")
    row = cells[0].row
    by_offset: Dict[int, Cell] = {}
    for cell in cells:
        if cell.row != row:
            raise ValueError("cells from different rows")
        if is_compacted(cell):
            # Re-compaction: explode the blob and merge.
            for offset, value, ts in _iter_compacted(cell):
                prev = by_offset.get(offset)
                if prev is None or ts >= prev.ts:
                    by_offset[offset] = Cell(row, offset.to_bytes(2, "big"), value, ts)
            continue
        if len(cell.qualifier) != 2:
            raise ValueError(f"unexpected qualifier length {len(cell.qualifier)}")
        offset = decode_u16(cell.qualifier)
        prev = by_offset.get(offset)
        if prev is None or cell.ts >= prev.ts:
            by_offset[offset] = cell
    ordered = [by_offset[o] for o in sorted(by_offset)]
    qualifier = COMPACTED_MARKER + b"".join(c.qualifier for c in ordered)
    value = b"".join(c.value for c in ordered)
    newest = max(c.ts for c in ordered)
    return Cell(row, qualifier, value, newest)


def _iter_compacted(cell: Cell):
    body = cell.qualifier[1:]
    n = len(body) // 2
    for i in range(n):
        offset = decode_u16(body, 2 * i)
        value = cell.value[8 * i : 8 * (i + 1)]
        yield offset, value, cell.ts


def decompact_columns(cell: Cell) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
    """Vectorized decompact: a cell's ``(offsets, values)`` parallel columns.

    One ``struct.unpack`` call per column instead of one decode per
    point — the block read path's inner loop.  Works on both compacted
    blobs and single-point cells, so readers can treat every cell
    uniformly.
    """
    if is_compacted(cell):
        body = cell.qualifier[1:]
        n = len(body) // 2
        offsets = struct.unpack(f">{n}H", body)
        values = struct.unpack(f">{n}d", cell.value[: 8 * n])
        return offsets, values
    return (decode_u16(cell.qualifier),), (decode_f64(cell.value),)


def decompact_cell(cell: Cell) -> List[Tuple[int, float]]:
    """Expand a cell into ``[(offset_seconds, value)]`` point tuples.

    Point-wise convenience form of :func:`decompact_columns` (which is
    the single implementation).
    """
    offsets, values = decompact_columns(cell)
    return list(zip(offsets, values))


def decompact_block(
    cell: Cell,
    metric: str,
    tags: Tuple[Tuple[str, str], ...],
    base_time: int,
) -> SeriesBlock:
    """Expand a cell straight into a :class:`SeriesBlock`.

    Compacted blobs store offsets sorted and de-duplicated, so the
    resulting columns are already monotone and adopted without copies.
    """
    offsets, values = decompact_columns(cell)
    ts = array(TS_TYPECODE, [base_time + o for o in offsets])
    vals = array(VAL_TYPECODE, values)
    return SeriesBlock(metric, tags, ts, vals, _trusted=True)


class RowCompactor:
    """Offline compactor: rewrite completed rows of a TSDB table.

    Walks the table via the master's administrative scan, groups cells
    by row, and for every row with more than one point cell writes a
    single compacted cell back through the region (the individual
    cells become shadowed by the newer compacted write at read time —
    the query engine prefers the compacted column when present, as
    OpenTSDB's does).
    """

    def __init__(self, master: HMaster, table: str, write_ts=None, lifecycle=None) -> None:
        self.master = master
        self.table = table
        # The deployment's logical write clock: the rewritten blob must
        # carry a write-ts strictly greater than every merged cell so it
        # shadows them (and only them) at read time.  Fallback: max+1,
        # which is correct when no concurrent writers share the table.
        self._write_ts = write_ts
        # Optional LifecycleManager: compaction-integrated expiry.
        self._lifecycle = lifecycle
        self.rows_compacted = 0
        self.cells_merged = 0

    def run(self) -> int:
        """Compact every eligible row; returns the number of rows rewritten.

        With a lifecycle tier attached, a full maintenance pass runs
        first — rollups advance, TTL-expired row-hours are tombstoned
        and physically purged — so expired rows are already gone from
        the scan below and are never rewritten (or re-read) here.
        """
        if self._lifecycle is not None:
            self._lifecycle.on_compaction()
        cells = self.master.direct_scan(self.table)
        by_row: Dict[bytes, List[Cell]] = {}
        for cell in cells:
            by_row.setdefault(cell.row, []).append(cell)
        for row, row_cells in by_row.items():
            point_cells = [c for c in row_cells if not is_compacted(c)]
            blobs = [c for c in row_cells if is_compacted(c)]
            if not blobs and len(point_cells) < 2:
                continue  # nothing worth merging
            if blobs:
                newest_blob = max(b.ts for b in blobs)
                already_merged = all(c.ts <= newest_blob for c in point_cells)
                if already_merged and len(blobs) == 1:
                    continue  # fully compacted; a second run is a no-op
            compacted = compact_row_cells(row_cells)
            ts = self._write_ts() if self._write_ts is not None else compacted.ts + 1.0
            bumped = Cell(compacted.row, compacted.qualifier, compacted.value, ts)
            self._write_back(bumped)
            self.rows_compacted += 1
            self.cells_merged += len(point_cells)
        return self.rows_compacted

    def _write_back(self, cell: Cell) -> None:
        info, server_name = self.master.locate(self.table, cell.row)
        del info
        if server_name is None:
            raise RuntimeError("row unassigned; cannot compact")
        server = self.master.server(server_name)
        region = None
        for r in server.hosted_regions():
            if r.info.contains(cell.row):
                region = r
                break
        if region is None:
            raise RuntimeError("region not hosted where the master believes")
        region.put(cell)
