"""Backpressured batch publishing into the cluster's real ingress.

The paper's §III lesson is that *all* writes must flow through the
buffering reverse proxy: fire-and-forget submission overflows the
RegionServer RPC queues and crashes them.  The analysis pipeline used
to sidestep that path with :meth:`TsdbCluster.direct_put`;
:class:`BatchPublisher` routes results through
:meth:`TsdbCluster.submit` instead — the same ingress the ingestion
benchmarks exercise — while keeping the *driver* side honest too:

* **Batching** — points accumulate into fixed-size put batches (the
  TSD ``/api/put`` granularity) instead of per-point RPCs.
* **Bounded in-flight** — at most ``max_in_flight_batches`` batches may
  be awaiting durable acknowledgement; past that the publisher steps
  the discrete-event simulator until acks free the window, so the
  producing pipeline cannot run ahead of the storage tier.
* **Ack deadlines + dead-letter ledger** — every submitted batch
  carries a deadline; a batch with no ack by then (a crashed TSD
  swallowed it) is retransmitted up to ``max_retransmits`` times and
  then *dead-lettered*: its points are recorded on the publisher's
  :attr:`~BatchPublisher.dead_letter` ledger and counted in the
  report, never silently lost.  Retransmission makes delivery
  at-least-once; storage dedupes via newest-write-wins cells.
* **Delivery conservation** — :meth:`PublishReport.check_conservation`
  enforces that every submitted point is accounted exactly once:
  ``points_submitted == points_written + points_failed +
  points_dead_lettered``.  ``flush`` verifies it on every run.

A ``use_proxy_path=False`` publisher falls back to the bulk
:meth:`~TsdbCluster.direct_put` load (identical stored cells, no
simulated RPC), which storage-less studies and tests use to compare
the two paths land the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.raceaudit import assert_holds, audited_lock
from ..cluster.metrics import MetricsRegistry
from ..cluster.simulation import EventHandle
from ..obs.telemetry import component_registry
from .blocks import BlockBatch, SeriesBlock
from .ingest import TsdbCluster
from .tsd import DataPoint, PutAck

__all__ = [
    "BatchPublisher",
    "DeliveryAccountingError",
    "PublishReport",
    "PublishStalledError",
]


class DeliveryAccountingError(RuntimeError):
    """The delivery conservation invariant was violated (a point was
    double-counted or lost without being written, failed, or
    dead-lettered)."""


class PublishStalledError(RuntimeError):
    """The simulator drained with acks still pending.

    Raised by :meth:`BatchPublisher.flush` instead of quietly returning
    a report whose ``complete`` is false.  ``pending`` carries the
    stalled ledger: ``(batch_size, attempts)`` per unresolved batch.
    """

    def __init__(self, report: "PublishReport", pending: List[Tuple[int, int]]) -> None:
        self.report = report
        self.pending = pending
        points = sum(n for n, _ in pending)
        super().__init__(
            f"publish stalled: {len(pending)} batch(es) / {points} point(s) "
            "still awaiting acks after the simulator drained "
            "(enable ack_deadline to convert stalls into dead letters)"
        )


@dataclass
class PublishReport:
    """Accounting for one publisher's lifetime (returned by ``flush``).

    ``mode`` is ``"proxy"`` (through :meth:`TsdbCluster.submit`) or
    ``"direct"`` (bulk-loaded via :meth:`TsdbCluster.direct_put`).
    ``points_written`` counts durably acknowledged cells;
    ``points_failed`` counts points the ingress reported permanently
    failed; ``points_dead_lettered`` counts points whose acks never
    arrived within the deadline/retransmit budget; ``retries`` counts
    proxy re-dispatches of bounced batches during this publisher's
    lifetime; ``retransmits`` counts publisher-level deadline
    retransmissions.  ``pending_unresolved`` is always zero on a
    report returned by ``flush`` (a stall raises
    :class:`PublishStalledError` instead).
    """

    mode: str
    points_submitted: int = 0
    batches_submitted: int = 0
    batches_acked: int = 0
    points_written: int = 0
    points_failed: int = 0
    points_dead_lettered: int = 0
    batches_dead_lettered: int = 0
    retries: int = 0
    retransmits: int = 0
    max_pending: int = 0
    pending_unresolved: int = 0

    @property
    def complete(self) -> bool:
        """True when every submitted batch resolved to an ack."""
        return self.pending_unresolved == 0

    @property
    def points_accounted(self) -> int:
        """Points with a definite fate: written, failed, or dead-lettered."""
        return self.points_written + self.points_failed + self.points_dead_lettered

    @property
    def conservation_ok(self) -> bool:
        """Every submitted point accounted exactly once."""
        return self.points_submitted == self.points_accounted

    def check_conservation(self) -> None:
        """Raise :class:`DeliveryAccountingError` unless every point is
        accounted exactly once (the ingest tier's delivery invariant)."""
        if not self.conservation_ok:
            raise DeliveryAccountingError(
                f"delivery accounting violated: submitted={self.points_submitted} "
                f"!= written={self.points_written} + failed={self.points_failed} "
                f"+ dead_lettered={self.points_dead_lettered}"
            )


class _PendingBatch:
    """Ledger entry for one submitted-but-unacked batch."""

    __slots__ = ("points", "attempts", "resolved", "deadline_handle")

    def __init__(self, points) -> None:
        # ``points`` is any point-sequence payload (list of DataPoints
        # or a BlockBatch); the ledger only ever takes its length and
        # hands it back to ``cluster.submit``.
        self.points = points
        self.attempts = 0
        self.resolved = False
        self.deadline_handle: Optional[EventHandle] = None


class BatchPublisher:
    """Batching, backpressured writer of analysis results to the TSDB.

    Parameters
    ----------
    cluster:
        The simulated deployment to publish into.
    batch_size:
        Points per put batch submitted to the ingress.
    max_in_flight_batches:
        Driver-side backpressure window: publishing blocks (stepping
        the simulator) while this many batches await acknowledgement.
    use_proxy_path:
        ``True`` routes through ``cluster.submit()`` (the reverse
        proxy / direct submitter, with simulated RPC and durable acks);
        ``False`` falls back to ``cluster.direct_put()`` bulk loads.
    ack_deadline:
        Sim-seconds a batch may await its durable ack before being
        retransmitted; after ``max_retransmits`` retransmissions it is
        dead-lettered.  ``None`` disables deadlines (a swallowed batch
        then stalls ``flush``, which raises
        :class:`PublishStalledError`).
    max_retransmits:
        Deadline-triggered retransmissions per batch before it goes to
        the dead-letter ledger.
    metrics:
        Registry receiving ``<channel>.batches`` / ``.acks`` /
        ``.points_written`` / ``.points_failed`` / ``.retries`` /
        ``.retransmits`` / ``.dead_lettered`` counters and the
        ``<channel>.max_pending`` gauge.
    channel:
        Metric-name prefix, so independent publishers (e.g. sensor
        data vs anomaly flags) stay separately accounted.
    """

    def __init__(
        self,
        cluster: TsdbCluster,
        *,
        batch_size: int = 500,
        max_in_flight_batches: int = 32,
        use_proxy_path: bool = True,
        ack_deadline: Optional[float] = 30.0,
        max_retransmits: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        channel: str = "publish",
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_in_flight_batches < 1:
            raise ValueError("max_in_flight_batches must be >= 1")
        if ack_deadline is not None and ack_deadline <= 0:
            raise ValueError("ack_deadline must be positive (or None)")
        if max_retransmits < 0:
            raise ValueError("max_retransmits must be >= 0")
        self.cluster = cluster
        self.batch_size = batch_size
        self.max_in_flight_batches = max_in_flight_batches
        self.use_proxy_path = use_proxy_path
        self.ack_deadline = ack_deadline
        self.max_retransmits = max_retransmits
        self.metrics = metrics if metrics is not None else component_registry("publisher")
        self.channel = channel
        self.report = PublishReport(mode="proxy" if use_proxy_path else "direct")
        #: Dead-letter ledger: batches whose acks never arrived in budget.
        self.dead_letter: List[List[DataPoint]] = []
        self._batch: List[DataPoint] = []
        # Ack state is mutated by _on_ack callbacks fired from simulator
        # steps as well as by the submitting driver code.
        self._state_lock = audited_lock("tsdb.publish.state")
        self._pending = 0  # guarded-by: _state_lock
        self._ledger: Dict[int, _PendingBatch] = {}  # guarded-by: _state_lock
        self._next_token = 0
        self._closed = False
        self._retries_at_start = cluster.metrics.counter("proxy.retries").get()

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    def publish(self, points: Iterable[DataPoint]) -> None:
        """Buffer points, submitting every full batch (with backpressure)."""
        if self._closed:
            raise RuntimeError("publisher already flushed")
        batch = self._batch
        for point in points:
            batch.append(point)
            if len(batch) >= self.batch_size:
                self._submit(batch)
                batch = self._batch = []

    def publish_blocks(self, blocks) -> None:
        """Publish columnar blocks through the same submission window.

        Accepts a :class:`BlockBatch`, one :class:`SeriesBlock`, or an
        iterable of blocks.  The batch is chunked into
        ``batch_size``-point :class:`BlockBatch` slices (whole blocks
        where possible; at most one block splits per boundary) and each
        chunk rides the identical ledger / deadline / dead-letter
        machinery as :meth:`publish` — the payload stays columnar all
        the way to the TSD.  Any buffered point tail is submitted first
        so FIFO ordering holds across mixed publishes; block chunks are
        not buffered (blocks arrive pre-batched upstream).
        """
        if self._closed:
            raise RuntimeError("publisher already flushed")
        if isinstance(blocks, SeriesBlock):
            batch = BlockBatch([blocks])
        elif isinstance(blocks, BlockBatch):
            batch = blocks
        else:
            batch = BlockBatch(list(blocks))
        if self._batch:
            self._submit(self._batch)
            self._batch = []
        pos, total = 0, len(batch)
        while pos < total:
            chunk = batch[pos : pos + self.batch_size]
            pos += len(chunk)
            self._submit(chunk)

    @property
    def pending_batches(self) -> int:
        """Batches submitted but not yet durably acknowledged."""
        with self._state_lock:
            return self._pending

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def flush(self) -> PublishReport:
        """Submit the tail batch, await every ack, and return the report.

        Raises :class:`PublishStalledError` if the simulator drains
        with acks still pending (only possible with ``ack_deadline``
        disabled — deadlines convert stalls into dead letters), and
        :class:`DeliveryAccountingError` if the conservation invariant
        is violated.
        """
        if self._closed:
            return self.report
        if self._batch:
            self._submit(self._batch)
            self._batch = []
        sim = self.cluster.sim
        while self.pending_batches and sim.step():
            pass
        self._closed = True
        rep = self.report
        with self._state_lock:
            stalled = [
                (len(entry.points), entry.attempts)
                for entry in self._ledger.values()
                if not entry.resolved
            ]
        rep.pending_unresolved = len(stalled)
        rep.retries = int(
            self.cluster.metrics.counter("proxy.retries").get() - self._retries_at_start
        )
        self.metrics.counter(f"{self.channel}.retries").inc(rep.retries)
        if stalled:
            raise PublishStalledError(rep, stalled)
        rep.check_conservation()
        return rep

    # ------------------------------------------------------------------
    def _submit(self, batch) -> None:
        rep = self.report
        rep.batches_submitted += 1
        rep.points_submitted += len(batch)
        self.metrics.counter(f"{self.channel}.batches").inc()
        if not self.use_proxy_path:
            written = self.cluster.direct_put(batch)
            rep.batches_acked += 1
            rep.points_written += written
            rep.points_failed += len(batch) - written
            self.metrics.counter(f"{self.channel}.acks").inc()
            self.metrics.counter(f"{self.channel}.points_written").inc(written)
            return
        entry = _PendingBatch(batch)
        with self._state_lock:
            token = self._next_token
            self._next_token += 1
            self._ledger[token] = entry
            self._pending += 1
            rep.max_pending = max(rep.max_pending, self._pending)
            self.metrics.gauge(f"{self.channel}.max_pending").set(self._pending)
        self._transmit(token, entry)
        # Backpressure: step the cluster simulation until the in-flight
        # window has room again, so the producer cannot outrun storage.
        sim = self.cluster.sim
        while self.pending_batches >= self.max_in_flight_batches and sim.step():
            pass

    def _transmit(self, token: int, entry: _PendingBatch) -> None:
        """Send one (re)transmission of a ledger entry and arm its deadline."""
        if self.ack_deadline is not None:
            entry.deadline_handle = self.cluster.sim.schedule(
                self.ack_deadline, self._on_deadline, token
            )
        self.cluster.submit(entry.points, lambda ack: self._on_ack(token, ack))

    def _on_ack(self, token: int, ack: PutAck) -> None:
        with self._state_lock:
            entry = self._ledger.get(token)
            if entry is None or entry.resolved:
                # Ack for a batch already retransmitted-and-resolved or
                # dead-lettered: count it once only (at-least-once
                # delivery; storage dedupes duplicate cells).
                self.metrics.counter(f"{self.channel}.late_acks").inc()
                return
            self._resolve(entry)
            self._record_ack(ack)

    def _on_deadline(self, token: int) -> None:
        with self._state_lock:
            entry = self._ledger.get(token)
            if entry is None or entry.resolved:
                return
            if entry.attempts < self.max_retransmits:
                entry.attempts += 1
                self.report.retransmits += 1
                self.metrics.counter(f"{self.channel}.retransmits").inc()
                retransmit = True
            else:
                # Budget exhausted: to the dead-letter ledger, with the
                # points preserved for later replay/inspection.
                self._resolve(entry)
                self.report.batches_dead_lettered += 1
                self.report.points_dead_lettered += len(entry.points)
                self.dead_letter.append(entry.points)
                self._pending -= 1
                self.metrics.counter(f"{self.channel}.dead_lettered").inc(
                    len(entry.points)
                )
                retransmit = False
        if retransmit:
            self._transmit(token, entry)

    def _resolve(self, entry: _PendingBatch) -> None:
        """Mark a ledger entry settled; caller holds ``_state_lock``."""
        assert_holds(self._state_lock)
        entry.resolved = True
        if entry.deadline_handle is not None:
            entry.deadline_handle.cancel()
            entry.deadline_handle = None

    def _record_ack(self, ack: PutAck) -> None:
        """Fold one durable ack into the report; caller holds ``_state_lock``."""
        assert_holds(self._state_lock)
        self._pending -= 1
        rep = self.report
        rep.batches_acked += 1
        rep.points_written += ack.written
        rep.points_failed += ack.failed
        self.metrics.counter(f"{self.channel}.acks").inc()
        self.metrics.counter(f"{self.channel}.points_written").inc(ack.written)
        if ack.failed:
            self.metrics.counter(f"{self.channel}.points_failed").inc(ack.failed)
