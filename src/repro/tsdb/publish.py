"""Backpressured batch publishing into the cluster's real ingress.

The paper's §III lesson is that *all* writes must flow through the
buffering reverse proxy: fire-and-forget submission overflows the
RegionServer RPC queues and crashes them.  The analysis pipeline used
to sidestep that path with :meth:`TsdbCluster.direct_put`;
:class:`BatchPublisher` routes results through
:meth:`TsdbCluster.submit` instead — the same ingress the ingestion
benchmarks exercise — while keeping the *driver* side honest too:

* **Batching** — points accumulate into fixed-size put batches (the
  TSD ``/api/put`` granularity) instead of per-point RPCs.
* **Bounded in-flight** — at most ``max_in_flight_batches`` batches may
  be awaiting durable acknowledgement; past that the publisher steps
  the discrete-event simulator until acks free the window, so the
  producing pipeline cannot run ahead of the storage tier.
* **Ack/retry tracking** — durable acks are counted point-by-point and
  proxy retries are attributed to this publisher's lifetime, all
  mirrored into a :class:`~repro.cluster.metrics.MetricsRegistry`.

A ``use_proxy_path=False`` publisher falls back to the bulk
:meth:`~TsdbCluster.direct_put` load (identical stored cells, no
simulated RPC), which storage-less studies and tests use to compare
the two paths land the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..analysis.raceaudit import assert_holds, audited_lock
from ..cluster.metrics import MetricsRegistry
from .ingest import TsdbCluster
from .tsd import DataPoint, PutAck

__all__ = ["BatchPublisher", "PublishReport"]


@dataclass
class PublishReport:
    """Accounting for one publisher's lifetime (returned by ``flush``).

    ``mode`` is ``"proxy"`` (through :meth:`TsdbCluster.submit`) or
    ``"direct"`` (bulk-loaded via :meth:`TsdbCluster.direct_put`).
    ``points_written`` counts durably acknowledged cells;
    ``retries`` counts proxy re-dispatches of bounced batches during
    this publisher's lifetime; ``pending_unresolved`` is non-zero only
    if the simulator drained without resolving every ack (a cluster
    wedged hard enough that retries stopped being scheduled).
    """

    mode: str
    points_submitted: int = 0
    batches_submitted: int = 0
    batches_acked: int = 0
    points_written: int = 0
    points_failed: int = 0
    retries: int = 0
    max_pending: int = 0
    pending_unresolved: int = 0

    @property
    def complete(self) -> bool:
        """True when every submitted batch resolved to an ack."""
        return self.pending_unresolved == 0


class BatchPublisher:
    """Batching, backpressured writer of analysis results to the TSDB.

    Parameters
    ----------
    cluster:
        The simulated deployment to publish into.
    batch_size:
        Points per put batch submitted to the ingress.
    max_in_flight_batches:
        Driver-side backpressure window: publishing blocks (stepping
        the simulator) while this many batches await acknowledgement.
    use_proxy_path:
        ``True`` routes through ``cluster.submit()`` (the reverse
        proxy / direct submitter, with simulated RPC and durable acks);
        ``False`` falls back to ``cluster.direct_put()`` bulk loads.
    metrics:
        Registry receiving ``<channel>.batches`` / ``.acks`` /
        ``.points_written`` / ``.points_failed`` / ``.retries``
        counters and the ``<channel>.max_pending`` gauge.
    channel:
        Metric-name prefix, so independent publishers (e.g. sensor
        data vs anomaly flags) stay separately accounted.
    """

    def __init__(
        self,
        cluster: TsdbCluster,
        *,
        batch_size: int = 500,
        max_in_flight_batches: int = 32,
        use_proxy_path: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        channel: str = "publish",
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_in_flight_batches < 1:
            raise ValueError("max_in_flight_batches must be >= 1")
        self.cluster = cluster
        self.batch_size = batch_size
        self.max_in_flight_batches = max_in_flight_batches
        self.use_proxy_path = use_proxy_path
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.channel = channel
        self.report = PublishReport(mode="proxy" if use_proxy_path else "direct")
        self._batch: List[DataPoint] = []
        # Ack state is mutated by _on_ack callbacks fired from simulator
        # steps as well as by the submitting driver code.
        self._state_lock = audited_lock("tsdb.publish.state")
        self._pending = 0  # guarded-by: _state_lock
        self._closed = False
        self._retries_at_start = cluster.metrics.counter("proxy.retries").get()

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    def publish(self, points: Iterable[DataPoint]) -> None:
        """Buffer points, submitting every full batch (with backpressure)."""
        if self._closed:
            raise RuntimeError("publisher already flushed")
        batch = self._batch
        for point in points:
            batch.append(point)
            if len(batch) >= self.batch_size:
                self._submit(batch)
                batch = self._batch = []

    @property
    def pending_batches(self) -> int:
        """Batches submitted but not yet durably acknowledged."""
        with self._state_lock:
            return self._pending

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def flush(self) -> PublishReport:
        """Submit the tail batch, await every ack, and return the report."""
        if self._closed:
            return self.report
        if self._batch:
            self._submit(self._batch)
            self._batch = []
        sim = self.cluster.sim
        while self.pending_batches and sim.step():
            pass
        self._closed = True
        rep = self.report
        rep.pending_unresolved = self.pending_batches
        rep.retries = int(
            self.cluster.metrics.counter("proxy.retries").get() - self._retries_at_start
        )
        self.metrics.counter(f"{self.channel}.retries").inc(rep.retries)
        return rep

    # ------------------------------------------------------------------
    def _submit(self, batch: List[DataPoint]) -> None:
        rep = self.report
        rep.batches_submitted += 1
        rep.points_submitted += len(batch)
        self.metrics.counter(f"{self.channel}.batches").inc()
        if not self.use_proxy_path:
            written = self.cluster.direct_put(batch)
            rep.batches_acked += 1
            rep.points_written += written
            rep.points_failed += len(batch) - written
            self.metrics.counter(f"{self.channel}.acks").inc()
            self.metrics.counter(f"{self.channel}.points_written").inc(written)
            return
        with self._state_lock:
            self._pending += 1
            rep.max_pending = max(rep.max_pending, self._pending)
            self.metrics.gauge(f"{self.channel}.max_pending").set(self._pending)
        self.cluster.submit(batch, self._on_ack)
        # Backpressure: step the cluster simulation until the in-flight
        # window has room again, so the producer cannot outrun storage.
        sim = self.cluster.sim
        while self.pending_batches >= self.max_in_flight_batches and sim.step():
            pass

    def _on_ack(self, ack: PutAck) -> None:
        with self._state_lock:
            self._record_ack(ack)

    def _record_ack(self, ack: PutAck) -> None:
        """Fold one durable ack into the report; caller holds ``_state_lock``."""
        assert_holds(self._state_lock)
        self._pending -= 1
        rep = self.report
        rep.batches_acked += 1
        rep.points_written += ack.written
        rep.points_failed += ack.failed
        self.metrics.counter(f"{self.channel}.acks").inc()
        self.metrics.counter(f"{self.channel}.points_written").inc(ack.written)
        if ack.failed:
            self.metrics.counter(f"{self.channel}.points_failed").inc(ack.failed)
