"""Benchmark harness: experiment registry and paper-comparison tables."""

from .experiments import (
    PAPER_FIG2_LEFT,
    PAPER_ONLINE_THROUGHPUT,
    REGISTRY,
    run_ingestion,
)
from .harness import (
    ExperimentRegistry,
    ExperimentResult,
    Table,
    format_rate,
    write_json_result,
)

__all__ = [
    "ExperimentRegistry",
    "ExperimentResult",
    "PAPER_FIG2_LEFT",
    "PAPER_ONLINE_THROUGHPUT",
    "REGISTRY",
    "Table",
    "format_rate",
    "run_ingestion",
    "write_json_result",
]
