"""CLI: ``python -m repro.bench [E1 ...] [--quick]``.

Runs the named experiments (all of them by default) and prints the
paper-comparison tables.  ``--quick`` shrinks every workload for a fast
sanity pass; full-scale runs are what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import REGISTRY


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (E1..E9); default: all",
    )
    parser.add_argument("--quick", action="store_true", help="shrunken CI-speed workloads")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        help="also write the results as a markdown report to FILE",
    )
    args = parser.parse_args(argv)

    available = REGISTRY.available()
    if args.list:
        for exp_id, description in sorted(available.items()):
            print(f"{exp_id.upper():4s} {description}")
        return 0

    targets = [e.lower() for e in args.experiments] or sorted(available)
    unknown = [t for t in targets if t not in available]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(available))}", file=sys.stderr)
        return 2

    results = []
    for target in targets:
        started = time.perf_counter()
        result = REGISTRY.run(target, quick=args.quick)
        elapsed = time.perf_counter() - started
        results.append((result, elapsed))
        print(result.render())
        print(f"\n[{target.upper()} completed in {elapsed:.1f}s]\n")

    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write("# Benchmark report\n\n")
            if args.quick:
                fh.write("> quick mode — shrunken workloads, not paper scale\n\n")
            for result, elapsed in results:
                fh.write(result.to_markdown())
                fh.write(f"\n\n*completed in {elapsed:.1f}s*\n\n---\n\n")
        print(f"markdown report written to {args.markdown}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
