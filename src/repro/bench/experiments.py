"""Experiment definitions E1–E18 (see DESIGN.md §4 for the index).

Each experiment regenerates one paper artifact — a figure, a table, or
a key quantitative claim — and returns an
:class:`~repro.bench.harness.ExperimentResult` whose rows sit next to
the published values.  ``quick=True`` shrinks workloads for CI; the
default parameters are the paper-comparison scale.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..chaos import FaultEvent, FaultPlan, Injector
from ..hbase.client import HTableClient
from ..core.fdr import FDRDetector, FDRDetectorConfig
from ..core.metrics import aggregate_outcomes, evaluate_flags
from ..core.multiple_testing import family_wise_error_probability, uncorrected
from ..core.online import OnlineEvaluator
from ..core.pipeline import AnomalyPipeline
from ..core.spc import CusumChart, EwmaChart, ShewhartChart
from ..core.training import OfflineTrainer
from ..obs.trace import Tracer
from ..serve import (
    FleetWorkload,
    GatewayConfig,
    QueryGateway,
    ServeServiceModel,
    WorkloadConfig,
    WorkloadReport,
    result_etag,
)
from ..simdata.generator import FleetConfig, FleetGenerator
from ..simdata.workload import (
    METRIC as FLEET_METRIC,
    ingest_stream,
    sensor_tag,
    soak_stream,
    soak_units,
    unit_tag,
)
from ..sparklet.context import SparkletContext
from ..sparklet.storage import BlockStore
from ..tsdb.ingest import ClusterConfig, IngestionDriver, IngestionReport, TsdbCluster, build_cluster
from ..tsdb.publish import BatchPublisher
from ..tsdb.query import TsdbQuery
from ..tsdb.readpath import AsyncQueryExecutor
from ..tsdb.tsd import DataPoint
from ..viz.dashboard import Dashboard
from .harness import ExperimentRegistry, ExperimentResult, Table, format_rate

__all__ = ["REGISTRY", "PAPER_FIG2_LEFT", "PAPER_ONLINE_THROUGHPUT", "run_ingestion"]

REGISTRY = ExperimentRegistry()

# Published values (Figure 2 left, §IV-A text).
PAPER_FIG2_LEFT: Dict[int, float] = {
    10: 173_000.0,
    15: 233_000.0,
    20: 257_000.0,
    25: 325_000.0,
    30: 399_000.0,
}
PAPER_ONLINE_THROUGHPUT = 939_000.0


# ----------------------------------------------------------------------
# shared drivers
# ----------------------------------------------------------------------
def run_ingestion(
    n_nodes: int,
    duration: float = 1.5,
    warmup: float = 0.75,
    offered_rate: float = 600_000.0,
    **config_overrides,
) -> IngestionReport:
    """One saturated ingestion run on a freshly built cluster."""
    cluster = build_cluster(ClusterConfig(n_nodes=n_nodes, **config_overrides))
    workload = ingest_stream(n_units=100, n_sensors=100, batch_size=50)
    driver = IngestionDriver(cluster, workload, offered_rate=offered_rate, batch_size=50)
    return driver.run(duration, warmup=warmup)


def _procedure_sweep(
    generator: FleetGenerator,
    procedures: Sequence[str],
    q: float,
    window: int,
    n_train: int,
    n_eval: int,
    extra_levels: Sequence[Tuple[str, float]] = (),
) -> Dict[object, "object"]:
    """Evaluate many (procedure, level) combinations sharing one fit per unit.

    Models and window p-values depend only on the data, so each unit is
    fitted and scored once; procedures then differ only in how the
    p-value families are thresholded.  Keys of the result: procedure
    name for the primary ``q``, ``(name, level)`` for extras.
    """
    from ..core.hypothesis import two_sided_pvalues, window_mean_zscores
    from ..core.multiple_testing import apply_procedure

    combos: List[Tuple[object, str, float]] = [(proc, proc, q) for proc in procedures]
    combos += [((name, level), name, level) for name, level in extra_levels]
    outcomes: Dict[object, list] = {key: [] for key, _, _ in combos}
    detector = FDRDetector(FDRDetectorConfig(q=q, window=window, use_t2=False))
    for unit_id in generator.units():
        model = detector.fit(
            generator.training_window(unit_id, n_train).values, unit_id=unit_id
        )
        data = generator.evaluation_window(unit_id, n_eval)
        z = window_mean_zscores(data.values, model.mean, model.std, window)
        pvalues = two_sided_pvalues(z)
        for key, name, level in combos:
            flags = apply_procedure(name, pvalues, level)
            outcomes[key].append(evaluate_flags(flags, data.truth, unit_id))
    return {key: aggregate_outcomes(o) for key, o in outcomes.items()}


# ----------------------------------------------------------------------
# E1 — Figure 2 (left): throughput vs cluster size
# ----------------------------------------------------------------------
@REGISTRY.register("E1", "Fig. 2 left — ingestion throughput vs cluster size")
def e1_ingestion_scaling(
    nodes: Sequence[int] = (10, 15, 20, 25, 30),
    duration: float = 1.5,
    warmup: float = 0.75,
    offered_rate: float = 600_000.0,
    quick: bool = False,
    figure_path: Optional[str] = None,
) -> ExperimentResult:
    if quick:
        nodes, duration, warmup, offered_rate = (4, 8), 0.75, 0.5, 200_000.0
    table = Table(
        "Ingestion throughput vs cluster size (salted keys, proxy on)",
        ["nodes", "measured", "paper", "per-node", "skew", "crashes"],
    )
    throughputs: List[Tuple[int, float]] = []
    reports: List[IngestionReport] = []
    for n in nodes:
        report = run_ingestion(n, duration, warmup, offered_rate)
        reports.append(report)
        throughputs.append((n, report.throughput))
        paper = PAPER_FIG2_LEFT.get(n)
        table.add_row(
            n,
            format_rate(report.throughput),
            format_rate(paper) if paper else "—",
            format_rate(report.throughput / n),
            f"{report.write_skew:.2f}",
            report.crashes,
        )
    # Linearity: least-squares slope in samples/s per node.
    ns = np.array([n for n, _ in throughputs], dtype=float)
    ts = np.array([t for _, t in throughputs], dtype=float)
    slope = float(np.polyfit(ns, ts, 1)[0]) if len(ns) > 1 else float("nan")
    r2 = (
        float(np.corrcoef(ns, ts)[0, 1] ** 2) if len(ns) > 1 else float("nan")
    )
    result = ExperimentResult(
        "E1",
        "Figure 2 (left): linear ingestion scale-up",
        [table],
        notes=[
            f"fitted slope {format_rate(slope)} per added node "
            f"(paper: ~11k/s per machine), linearity R² = {r2:.4f}",
            "throughput in simulated seconds; offered load kept above capacity",
        ],
        numbers={"slope": slope, "r2": r2,
                 **{f"throughput_{n}": t for n, t in throughputs}},
    )
    if figure_path is not None:
        from ..viz.figures import render_throughput_figure

        with open(figure_path, "w") as fh:
            fh.write(render_throughput_figure(reports, PAPER_FIG2_LEFT))
        result.notes.append(f"figure written to {figure_path}")
    return result


# ----------------------------------------------------------------------
# E2 — Figure 2 (right): ingestion stability over time
# ----------------------------------------------------------------------
@REGISTRY.register("E2", "Fig. 2 right — cumulative samples vs time (stability)")
def e2_ingestion_stability(
    nodes: Sequence[int] = (10, 20, 30),
    duration: float = 2.0,
    offered_rate: float = 600_000.0,
    step: float = 0.5,
    quick: bool = False,
    figure_path: Optional[str] = None,
) -> ExperimentResult:
    if quick:
        nodes, duration, offered_rate, step = (4,), 1.0, 200_000.0, 0.25
    table = Table(
        "Cumulative samples ingested vs time",
        ["nodes"] + [f"t={step * (i + 1):.2f}s" for i in range(int(duration / step))]
        + ["rate CV"],
    )
    cvs = {}
    reports: List[IngestionReport] = []
    for n in nodes:
        report = run_ingestion(n, duration, warmup=0.0, offered_rate=offered_rate)
        reports.append(report)
        samples = report.timeline.resample(step, until=duration)
        cum = [v for _, v in samples[1:]]
        # Coefficient of variation of the per-interval rate — the
        # "constant and stable ingestion rate" claim.  Skip the first
        # interval (pipeline fill).
        rates = np.diff([0.0] + cum)
        steady = rates[1:]
        cv = float(np.std(steady) / np.mean(steady)) if len(steady) > 1 and np.mean(steady) > 0 else float("nan")
        cvs[n] = cv
        table.add_row(
            n,
            *[f"{v / 1e6:.2f}M" for v in cum],
            f"{cv:.3f}",
        )
    result = ExperimentResult(
        "E2",
        "Figure 2 (right): stable per-configuration ingestion rate",
        [table],
        notes=["low rate CV (steady slope) reproduces the constant-rate lines"],
        numbers={f"cv_{n}": cv for n, cv in cvs.items()},
    )
    if figure_path is not None:
        from ..viz.figures import render_stability_figure

        with open(figure_path, "w") as fh:
            fh.write(render_stability_figure(reports, step))
        result.notes.append(f"figure written to {figure_path}")
    return result


# ----------------------------------------------------------------------
# E3 — §IV: family-wise false-alarm growth
# ----------------------------------------------------------------------
@REGISTRY.register("E3", "§IV — false-alarm probability vs sensor count")
def e3_fwer_growth(
    alpha: float = 0.05,
    sensor_counts: Sequence[int] = (1, 5, 10, 50, 100, 500, 1000),
    n_trials: int = 2000,
    quick: bool = False,
    seed: int = 123,
) -> ExperimentResult:
    if quick:
        sensor_counts, n_trials = (1, 10, 100), 400
    rng = np.random.default_rng(seed)
    table = Table(
        f"P(at least one false alarm), per-test alpha = {alpha}",
        ["m sensors", "analytic 1-(1-a)^m", "Monte-Carlo", "paper"],
    )
    paper_points = {1: "5%", 10: "40%"}
    numbers = {}
    for m in sensor_counts:
        analytic = family_wise_error_probability(alpha, m)
        pvals = rng.random((n_trials, m))
        empirical = float(np.mean(uncorrected(pvals, alpha).any(axis=1)))
        numbers[f"analytic_{m}"] = analytic
        numbers[f"empirical_{m}"] = empirical
        table.add_row(
            m,
            f"{analytic:.4f}",
            f"{empirical:.4f}",
            paper_points.get(m, "—"),
        )
    return ExperimentResult(
        "E3",
        "uncorrected testing: false alarms explode with sensor count",
        [table],
        notes=["the paper's worked example: 5% at m=1 grows to 40% at m=10"],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E4 — §IV: FDR vs Bonferroni vs uncorrected (+ SPC baselines)
# ----------------------------------------------------------------------
@REGISTRY.register("E4", "§IV — FDR reduces false alarms while keeping power")
def e4_fdr_false_alarms(
    n_units: int = 40,
    n_sensors: int = 200,
    n_train: int = 500,
    n_eval: int = 500,
    q: float = 0.05,
    window: int = 32,
    seed: int = 29,
    quick: bool = False,
) -> ExperimentResult:
    if quick:
        n_units, n_sensors, n_train, n_eval = 10, 60, 250, 250
    generator = FleetGenerator(
        FleetConfig(n_units=n_units, n_sensors=n_sensors, seed=seed)
    )
    q_levels = (0.01, 0.05, 0.1, 0.2)
    sweep = _procedure_sweep(
        generator,
        ("none", "bonferroni", "holm", "bh", "adaptive-bh", "by"),
        q, window, n_train, n_eval,
        extra_levels=[("bh", level) for level in q_levels],
    )
    table = Table(
        f"Multiple-testing procedures ({n_units} units x {n_sensors} sensors, q = {q})",
        ["procedure", "family FDP", "power", "null-step alarms", "false-alarm rate", "delay (s)"],
    )
    numbers = {}
    for proc, agg in sweep.items():
        if not isinstance(proc, str):
            continue  # (name, level) extras are reported in the q-sweep table
        table.add_row(
            proc,
            f"{agg.mean_family_fdp:.3f}",
            f"{agg.mean_power:.3f}",
            f"{agg.null_family_rate:.3f}",
            f"{agg.mean_false_alarm_rate:.5f}",
            f"{agg.mean_delay:.1f}",
        )
        numbers[f"{proc}_family_fdp"] = agg.mean_family_fdp
        numbers[f"{proc}_power"] = agg.mean_power
        numbers[f"{proc}_null_rate"] = agg.null_family_rate

    # SPC baselines, same data.
    spc_table = Table(
        "SPC baselines (per-sensor charts, no multiplicity control)",
        ["chart", "family FDP", "power", "null-step alarms", "false-alarm rate"],
    )
    detector = FDRDetector(FDRDetectorConfig(q=q, window=window, use_t2=False))
    for name, chart in (
        ("shewhart-3s", ShewhartChart()),
        ("cusum", CusumChart()),
        ("ewma", EwmaChart()),
    ):
        outcomes = []
        for unit_id in generator.units():
            model = detector.fit(
                generator.training_window(unit_id, n_train).values, unit_id=unit_id
            )
            window_data = generator.evaluation_window(unit_id, n_eval)
            flags = chart.flags(model, window_data.values)
            outcomes.append(evaluate_flags(flags, window_data.truth, unit_id))
        agg = aggregate_outcomes(outcomes)
        spc_table.add_row(
            name,
            f"{agg.mean_family_fdp:.3f}",
            f"{agg.mean_power:.3f}",
            f"{agg.null_family_rate:.3f}",
            f"{agg.mean_false_alarm_rate:.5f}",
        )
    # Operating characteristic: sweep the FDR target q for BH.
    q_table = Table(
        "BH operating characteristic (q sweep)",
        ["q", "family FDP", "power", "null-step alarms"],
    )
    for q_level in q_levels:
        agg = sweep[("bh", q_level)]
        q_table.add_row(
            f"{q_level:.2f}",
            f"{agg.mean_family_fdp:.3f}",
            f"{agg.mean_power:.3f}",
            f"{agg.null_family_rate:.3f}",
        )
        numbers[f"q{q_level}_fdp"] = agg.mean_family_fdp
        numbers[f"q{q_level}_power"] = agg.mean_power

    return ExperimentResult(
        "E4",
        "FDR (BH) controls the false-discovery proportion with more power than FWER control",
        [table, spc_table, q_table],
        notes=[
            "expected shape: 'none' null-step alarm rate near 1, BH famFDP near q "
            "with power above bonferroni/holm/by",
        ],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E5 — §IV-A: online evaluation throughput
# ----------------------------------------------------------------------
@REGISTRY.register("E5", "§IV-A — online evaluation throughput (wall-clock)")
def e5_online_throughput(
    n_sensors: int = 1000,
    n_train: int = 600,
    n_eval: int = 4000,
    batch: int = 250,
    window: int = 32,
    quick: bool = False,
    seed: int = 31,
) -> ExperimentResult:
    if quick:
        n_sensors, n_eval = 200, 1000
    generator = FleetGenerator(
        FleetConfig(n_units=1, n_sensors=n_sensors, seed=seed, fault_mix=(1.0, 0.0, 0.0))
    )
    detector = FDRDetector(FDRDetectorConfig(window=window))
    model = detector.fit(generator.training_window(0, n_train).values)
    values = generator.evaluation_window(0, n_eval).values
    evaluator = OnlineEvaluator(model, detector.config)
    # warm-up pass (allocations, BLAS thread spin-up)
    evaluator.evaluate(values[:batch])
    evaluator.reset()
    t0 = time.perf_counter()
    for i in range(0, n_eval, batch):
        evaluator.evaluate(values[i : i + batch])
    elapsed = time.perf_counter() - t0
    throughput = evaluator.throughput_samples_per_second(elapsed)
    table = Table(
        "Online evaluation throughput (real wall-clock)",
        ["config", "measured", "paper"],
    )
    table.add_row(
        f"{n_sensors} sensors, window {window}, batch {batch}",
        format_rate(throughput),
        format_rate(PAPER_ONLINE_THROUGHPUT),
    )
    return ExperimentResult(
        "E5",
        "online scoring is a single matrix pass per batch",
        [table],
        notes=[
            f"evaluated {evaluator.stats.samples:,} sensor samples in {elapsed:.3f}s",
            "paper: 939k samples/s on their cluster; same order or better expected "
            "single-node with vectorised NumPy",
        ],
        numbers={"throughput": throughput},
    )


# ----------------------------------------------------------------------
# E6 — §III-B: row-key salting ablation
# ----------------------------------------------------------------------
@REGISTRY.register("E6", "§III-B — salting spreads writes across RegionServers")
def e6_salting_ablation(
    n_nodes: int = 20,
    duration: float = 1.5,
    warmup: float = 0.75,
    offered_rate: float = 500_000.0,
    quick: bool = False,
) -> ExperimentResult:
    if quick:
        n_nodes, duration, warmup, offered_rate = 6, 0.75, 0.5, 150_000.0
    table = Table(
        f"Row-key salting ablation ({n_nodes} nodes)",
        ["configuration", "throughput", "write skew (max/mean)", "crashes"],
    )
    numbers = {}
    for label, salt in (("unsalted, single region", 0), ("salted + pre-split", None)):
        report = run_ingestion(
            n_nodes, duration, warmup, offered_rate, salt_buckets=salt
        )
        table.add_row(
            label, format_rate(report.throughput), f"{report.write_skew:.2f}",
            report.crashes,
        )
        key = "salted" if salt is None else "unsalted"
        numbers[f"{key}_throughput"] = report.throughput
        numbers[f"{key}_skew"] = report.write_skew
    return ExperimentResult(
        "E6",
        "salting turns one hot RegionServer into a balanced cluster",
        [table],
        notes=[
            "expected shape: unsalted throughput ≈ one server's capacity with skew ≈ n; "
            "salted approaches n × per-server capacity with skew ≈ 1 — the paper's "
            "'dramatic increase to the ingestion rate'",
        ],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E7 — §III-B: backpressure-proxy ablation
# ----------------------------------------------------------------------
@REGISTRY.register("E7", "§III-B — reverse proxy prevents RegionServer crashes")
def e7_backpressure_ablation(
    n_nodes: int = 10,
    duration: float = 1.5,
    warmup: float = 0.5,
    offered_rate: float = 400_000.0,
    quick: bool = False,
) -> ExperimentResult:
    if quick:
        n_nodes, duration, offered_rate = 5, 1.0, 200_000.0
    table = Table(
        f"Backpressure ablation ({n_nodes} nodes, offered ≈ "
        f"{format_rate(offered_rate)} > capacity)",
        ["configuration", "goodput", "RS crashes", "RPC rejects", "client retries"],
    )
    numbers = {}
    configs = [
        ("proxy (buffered, round-robin)", dict(use_proxy=True)),
        ("direct fire-and-forget", dict(use_proxy=False)),
        ("direct, single TSD", dict(use_proxy=False, direct_spray=False)),
        ("proxy + compaction enabled", dict(use_proxy=True, compaction_enabled=True)),
    ]
    for label, overrides in configs:
        cluster = build_cluster(ClusterConfig(n_nodes=n_nodes, **overrides))
        workload = ingest_stream(n_units=100, n_sensors=100, batch_size=50)
        driver = IngestionDriver(cluster, workload, offered_rate=offered_rate, batch_size=50)
        report = driver.run(duration, warmup=warmup)
        rejects = int(cluster.metrics.counter("rpc.rejected").get())
        table.add_row(
            label,
            format_rate(report.throughput),
            report.crashes,
            rejects,
            report.client_retries,
        )
        slug = label.split(" ")[0] + ("_compact" if "compaction" in label else "") + (
            "_single" if "single" in label else ""
        )
        numbers[f"{slug}_goodput"] = report.throughput
        numbers[f"{slug}_crashes"] = float(report.crashes)
    return ExperimentResult(
        "E7",
        "bounded in-flight window + buffering eliminates overflow crashes",
        [table],
        notes=[
            "expected shape: proxy config has zero crashes; fire-and-forget overloads "
            "the RPC queues and crashes RegionServers (the paper's pre-proxy failure mode); "
            "compaction-on costs throughput (why the paper disabled it)",
        ],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E8 — Figure 3: the machine-page dashboard
# ----------------------------------------------------------------------
@REGISTRY.register("E8", "Fig. 3 — machine page with status bar, sparklines, drill-down")
def e8_dashboard(
    out_dir: str = "dashboard_out",
    n_units: int = 12,
    n_sensors: int = 40,
    n_train: int = 300,
    n_eval: int = 300,
    machine: Optional[int] = None,
    quick: bool = False,
    seed: int = 80,
) -> ExperimentResult:
    if quick:
        n_units, n_sensors, n_train, n_eval = 6, 20, 200, 200
    generator = FleetGenerator(FleetConfig(n_units=n_units, n_sensors=n_sensors, seed=seed))
    cluster = build_cluster(n_nodes=4, retain_data=True)
    pipeline = AnomalyPipeline(generator, cluster)
    result = pipeline.run(n_train=n_train, n_eval=n_eval)
    dash = Dashboard(cluster.query_engine())
    pages = [machine] if machine is not None else list(generator.units())
    paths = dash.write(
        out_dir, list(generator.units()), start=n_eval, end=2 * n_eval, machine_pages=pages
    )
    table = Table("Dashboard artifacts", ["file", "size (bytes)"])
    for path in paths:
        table.add_row(path.name, path.stat().st_size)
    return ExperimentResult(
        "E8",
        "static web dashboard generated from TSDB queries",
        [table],
        notes=[
            f"{result.total_discoveries()} anomalies flagged, "
            f"{result.anomalies_published} published to the TSDB",
            f"open {paths[0]} in a browser for the Figure 3 layout",
        ],
        numbers={"pages": float(len(paths)), "anomalies": float(result.anomalies_published)},
    )


# ----------------------------------------------------------------------
# E10 — detector design ablations (DESIGN.md §5)
# ----------------------------------------------------------------------
@REGISTRY.register("E10", "ablation — test window length and the whitened T² channel")
def e10_detector_ablations(
    n_units: int = 24,
    n_sensors: int = 120,
    n_train: int = 500,
    n_eval: int = 500,
    q: float = 0.05,
    windows: Sequence[int] = (1, 8, 32, 128),
    seed: int = 53,
    quick: bool = False,
) -> ExperimentResult:
    if quick:
        n_units, n_sensors, n_train, n_eval, windows = 8, 40, 250, 250, (1, 32)
    generator = FleetGenerator(
        FleetConfig(n_units=n_units, n_sensors=n_sensors, seed=seed)
    )
    window_table = Table(
        f"Window-length ablation (BH, q = {q})",
        ["window (s)", "family FDP", "power", "delay (s)", "null-step alarms"],
    )
    numbers: Dict[str, float] = {}
    for window in windows:
        detector = FDRDetector(
            FDRDetectorConfig(q=q, window=window, procedure="bh", use_t2=False)
        )
        outcomes = []
        for unit_id in generator.units():
            model = detector.fit(
                generator.training_window(unit_id, n_train).values, unit_id=unit_id
            )
            data = generator.evaluation_window(unit_id, n_eval)
            report = detector.detect(model, data.values)
            outcomes.append(evaluate_flags(report.flags, data.truth, unit_id))
        agg = aggregate_outcomes(outcomes)
        window_table.add_row(
            window,
            f"{agg.mean_family_fdp:.3f}",
            f"{agg.mean_power:.3f}",
            f"{agg.mean_delay:.1f}",
            f"{agg.null_family_rate:.3f}",
        )
        numbers[f"w{window}_power"] = agg.mean_power
        numbers[f"w{window}_delay"] = agg.mean_delay

    # Whitened T² channel: unit-level detection of correlated faults.
    # Alarm *step counts* per unit are the honest readout: the per-step
    # false-alarm rate on healthy units should sit near unit_alarm_alpha,
    # while faulted units alarm persistently once the fault develops.
    t2_table = Table(
        "Unit-level channel ablation (alarm steps / unit, alpha = 0.001)",
        ["configuration", "faulted units", "healthy units"],
    )

    def unit_channel_row(label: str, key: str, alarm_fn) -> None:
        fit_detector = FDRDetector(FDRDetectorConfig(q=q, window=32, use_t2=False))
        faulted_steps: List[int] = []
        healthy_steps: List[int] = []
        for unit_id in generator.units():
            model = fit_detector.fit(
                generator.training_window(unit_id, n_train).values, unit_id=unit_id
            )
            data = generator.evaluation_window(unit_id, n_eval)
            steps = int(np.sum(alarm_fn(model, data.values)))
            (faulted_steps if data.faults else healthy_steps).append(steps)
        mean_faulted = float(np.mean(faulted_steps)) if faulted_steps else 0.0
        mean_healthy = float(np.mean(healthy_steps)) if healthy_steps else 0.0
        t2_table.add_row(label, f"{mean_faulted:.1f}", f"{mean_healthy:.1f}")
        numbers[f"{key}_faulted_steps"] = mean_faulted
        numbers[f"{key}_healthy_steps"] = mean_healthy

    def t2_alarms(model, values):
        detector = FDRDetector(
            FDRDetectorConfig(q=q, window=32, use_t2=True, unit_alarm_alpha=0.001)
        )
        return detector.detect(model, values).unit_alarm

    from ..core.spc import MewmaChart

    unit_channel_row("T² on (whitened scores)", "t2_on", t2_alarms)
    unit_channel_row(
        "MEWMA (lam=0.1, whitened)", "mewma",
        lambda model, values: MewmaChart(lam=0.1, alpha=0.001).flags(model, values),
    )
    unit_channel_row(
        "T² off", "t2_off", lambda model, values: np.zeros(values.shape[0], dtype=bool)
    )

    return ExperimentResult(
        "E10",
        "longer windows buy power on drifts at the cost of reaction time; "
        "the whitened T² adds a unit-level channel for correlated faults",
        [window_table, t2_table],
        notes=[
            "expected shape: power grows with window length; detection delay is "
            "U-shaped (short windows detect late for lack of power, very long "
            "windows are sluggish); T² alarm steps separate faulted from healthy "
            "units by an order of magnitude",
        ],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E9 — §IV-A: offline training scaling on sparklet
# ----------------------------------------------------------------------
@REGISTRY.register("E9", "§IV-A — offline training scales across executors")
def e9_training_scaling(
    executor_counts: Sequence[int] = (1, 2, 4),
    n_units: int = 24,
    n_sensors: int = 150,
    n_train: int = 400,
    quick: bool = False,
    seed: int = 47,
    store_dir: Optional[str] = None,
) -> ExperimentResult:
    import tempfile

    if quick:
        executor_counts, n_units, n_sensors, n_train = (1, 2), 8, 60, 200
    generator = FleetGenerator(FleetConfig(n_units=n_units, n_sensors=n_sensors, seed=seed))
    table = Table(
        f"Offline training wall-clock ({n_units} units x {n_sensors} sensors)",
        ["executors", "seconds", "units/s", "speedup"],
    )
    numbers = {}
    base = None
    for workers in executor_counts:
        with tempfile.TemporaryDirectory(dir=store_dir) as tmp:
            store = BlockStore(tmp)
            with SparkletContext(parallelism=workers) as ctx:
                trainer = OfflineTrainer(ctx, store)
                t0 = time.perf_counter()
                trainer.train_fleet(generator, n_train=n_train)
                elapsed = time.perf_counter() - t0
        if base is None:
            base = elapsed
        table.add_row(
            workers, f"{elapsed:.2f}", f"{n_units / elapsed:.1f}", f"{base / elapsed:.2f}x"
        )
        numbers[f"seconds_{workers}"] = elapsed
    return ExperimentResult(
        "E9",
        "per-unit model fits parallelise across the executor pool",
        [table],
        notes=["BLAS releases the GIL, so thread executors give real speedup"],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E12 — chaos: hardened ingest overhead and crash survival
# ----------------------------------------------------------------------
def _chaos_publish_run(
    n_points: int,
    batch_size: int,
    hardened: bool,
    plan: Optional[FaultPlan],
    seed: int,
) -> Dict[str, float]:
    """Publish one synthetic stream into a fresh 2-node cluster.

    Returns sim-time goodput, end-to-end ack latency, the hardening
    counters, and the delivery-accounting residual (always zero).
    """
    rng = np.random.default_rng(seed)
    points = [
        DataPoint.make(
            "energy", 1_000 + i, float(v), {"unit": f"u{i % 8}", "sensor": f"s{i % 25}"}
        )
        for i, v in enumerate(rng.normal(size=n_points))
    ]
    cluster = build_cluster(ClusterConfig(n_nodes=2, salt_buckets=4))
    injector = Injector(cluster, plan) if plan is not None else None
    if injector is not None:
        injector.arm()
    if not hardened:
        # The pre-hardening ingress: no breakers, no ack timeouts, no
        # publisher deadlines.  Safe only in the fault-free scenario —
        # a crash would wedge this configuration (PublishStalledError).
        cluster.ingress.breakers = None
        cluster.ingress.ack_timeout = None
    publisher = BatchPublisher(
        cluster,
        batch_size=batch_size,
        max_in_flight_batches=8,
        ack_deadline=30.0 if hardened else None,
    )
    wall0 = time.perf_counter()
    publisher.publish(points)
    report = publisher.flush()
    wall = time.perf_counter() - wall0
    if injector is not None:
        injector.finalize()
    hist = cluster.metrics.histogram("proxy.ack_latency")
    sim_elapsed = max(cluster.sim.now, 1e-9)
    return {
        "goodput": report.points_written / sim_elapsed,
        "ack_mean_ms": hist.mean * 1e3,
        "ack_p99_ms": hist.quantile(0.99) * 1e3,
        "retries": float(report.retries),
        "ack_timeouts": float(getattr(cluster.ingress, "ack_timeouts", 0)),
        "dead_lettered": float(report.points_dead_lettered),
        "unaccounted": float(report.points_submitted - report.points_accounted),
        "wall_s": wall,
    }


@REGISTRY.register("E12", "chaos — hardened ingest: fault-free overhead, crash survival")
def e12_chaos_ingest(
    n_points: int = 10_000,
    batch_size: int = 100,
    quick: bool = False,
    seed: int = 29,
) -> ExperimentResult:
    """Cost and payoff of the fault-tolerant ingest path.

    Fault-free, the hardening machinery (circuit breakers, ack
    timeouts, publisher deadlines) must be close to free in simulated
    goodput.  Under an injected mid-publish TSD crash it must keep the
    delivery-conservation invariant — every point written, failed, or
    dead-lettered — at a measurable throughput/latency cost.
    """
    if quick:
        n_points = 2_500
    crash_plan = FaultPlan(
        name="e12-tsd-crash",
        events=(FaultEvent(at=0.05, action="tsd_crash", target="tsd00", duration=0.4),),
    )
    scenarios = [
        ("hardened, fault-free", True, None),
        ("hardening off, fault-free", False, None),
        ("hardened, TSD crash mid-publish", True, crash_plan),
    ]
    table = Table(
        f"Chaos ingest ({n_points} points, batches of {batch_size}, 2 nodes)",
        ["configuration", "goodput", "ack mean", "ack p99", "retries",
         "ack timeouts", "dead-lettered", "unaccounted"],
    )
    numbers: Dict[str, float] = {}
    for label, hardened, plan in scenarios:
        stats = _chaos_publish_run(n_points, batch_size, hardened, plan, seed)
        table.add_row(
            label,
            format_rate(stats["goodput"]),
            f"{stats['ack_mean_ms']:.2f} ms",
            f"{stats['ack_p99_ms']:.2f} ms",
            int(stats["retries"]),
            int(stats["ack_timeouts"]),
            int(stats["dead_lettered"]),
            int(stats["unaccounted"]),
        )
        slug = {
            "hardened, fault-free": "hardened",
            "hardening off, fault-free": "baseline",
            "hardened, TSD crash mid-publish": "crash",
        }[label]
        for key, value in stats.items():
            numbers[f"{slug}_{key}"] = value
    numbers["overhead_frac"] = (
        numbers["baseline_goodput"] - numbers["hardened_goodput"]
    ) / numbers["baseline_goodput"]
    return ExperimentResult(
        "E12",
        "hardening is ~free fault-free and keeps conservation through a crash",
        [table],
        notes=[
            "expected shape: fault-free goodput within 5% with hardening on vs off; "
            "the crash run engages timeouts/retries (degraded goodput, inflated ack "
            "latency) yet ends with zero unaccounted points",
        ],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E13 — observability: tracing and self-telemetry overhead
# ----------------------------------------------------------------------
def _obs_publish_run(
    n_points: int,
    batch_size: int,
    trace: bool,
    self_report: bool,
    seed: int,
) -> Dict[str, float]:
    """Publish one synthetic stream with the requested observability on.

    Tracing and self-telemetry consume no *simulated* time, so their
    cost only shows up in wall-clock; goodput is reported to prove the
    simulated behaviour is unchanged.
    """
    rng = np.random.default_rng(seed)
    points = [
        DataPoint.make(
            "energy", 1_000 + i, float(v), {"unit": f"u{i % 8}", "sensor": f"s{i % 25}"}
        )
        for i, v in enumerate(rng.normal(size=n_points))
    ]
    cluster = build_cluster(ClusterConfig(n_nodes=2, salt_buckets=4, trace=trace))
    reporter = cluster.self_reporter(interval=0.25) if self_report else None
    if reporter is not None:
        reporter.start()
    publisher = BatchPublisher(cluster, batch_size=batch_size, max_in_flight_batches=8)
    # Benchmark hygiene: collect the garbage from previous runs up front
    # and keep the collector out of the measured window, so a GC pause
    # cannot land on one configuration and masquerade as overhead.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        wall0 = time.perf_counter()
        publisher.publish(points)
        report = publisher.flush()
        wall = time.perf_counter() - wall0
    finally:
        if gc_was_enabled:
            gc.enable()
    self_series = 0
    if reporter is not None:
        reporter.stop()
        reporter.flush()
        self_series = len(reporter.series_written())
    sim_elapsed = max(cluster.sim.now, 1e-9)
    return {
        "goodput": report.points_written / sim_elapsed,
        "wall_s": wall,
        "span_records": float(len(cluster.tracer)),
        "batches_traced": float(len(cluster.tracer.batch_ids())),
        "self_series": float(self_series),
    }


@REGISTRY.register("E13", "observability — tracing and self-telemetry overhead")
def e13_obs_overhead(
    n_points: int = 10_000,
    batch_size: int = 100,
    repeats: int = 5,
    quick: bool = False,
    seed: int = 31,
) -> ExperimentResult:
    """Cost of the observability layer on the ingest hot path.

    With tracing off the path must be zero-cost: no span records exist
    and the disabled ``Tracer.begin`` is a few-nanosecond guard.  With
    tracing on (and additionally the ``SelfReporter`` flushing ``tsd.*``
    /``proxy.*`` series back into the store) wall-clock overhead over
    the untraced run must stay under 5%.  Repeats are interleaved
    round-robin across the configurations (so clock/cache drift hits
    all of them equally) after one unmeasured warmup run, and each
    configuration keeps its fastest run — the standard noise filters
    for wall-clock microcomparisons.
    """
    if quick:
        n_points, repeats = 2_500, 3
    scenarios = [
        ("observability off", "off", False, False),
        ("tracing on", "traced", True, False),
        ("tracing + self-report", "selfreport", True, True),
    ]
    table = Table(
        f"Observability overhead ({n_points} points, batches of {batch_size}, "
        f"min wall over {repeats} runs)",
        ["configuration", "wall", "goodput", "spans", "traced batches", "self series"],
    )
    numbers: Dict[str, float] = {}
    _obs_publish_run(n_points, batch_size, True, True, seed)  # warmup, unmeasured
    bests: Dict[str, Dict[str, float]] = {}
    for _ in range(repeats):
        for _, slug, trace, self_report in scenarios:
            stats = _obs_publish_run(n_points, batch_size, trace, self_report, seed)
            best = bests.get(slug)
            if best is None or stats["wall_s"] < best["wall_s"]:
                bests[slug] = stats
    for label, slug, trace, self_report in scenarios:
        best = bests[slug]
        table.add_row(
            label,
            f"{best['wall_s'] * 1e3:.1f} ms",
            format_rate(best["goodput"]),
            int(best["span_records"]),
            int(best["batches_traced"]),
            int(best["self_series"]),
        )
        for key, value in best.items():
            numbers[f"{slug}_{key}"] = value
    numbers["traced_overhead_frac"] = (
        numbers["traced_wall_s"] - numbers["off_wall_s"]
    ) / numbers["off_wall_s"]
    numbers["selfreport_overhead_frac"] = (
        numbers["selfreport_wall_s"] - numbers["off_wall_s"]
    ) / numbers["off_wall_s"]
    numbers["untraced_span_records"] = numbers["off_span_records"]
    # Disabled-path micro-measure: per-call cost of Tracer.begin when
    # tracing is off (returns the shared NULL_SPAN, no allocation).
    tracer = Tracer()
    calls = 200_000
    t0 = time.perf_counter()
    for _ in range(calls):
        tracer.begin("bench.noop")
    numbers["disabled_span_ns"] = (time.perf_counter() - t0) / calls * 1e9
    return ExperimentResult(
        "E13",
        "tracing is zero-cost off and <5% wall overhead on",
        [table],
        notes=[
            "expected shape: the untraced run records zero spans and its goodput "
            "matches the traced runs exactly (observability consumes no simulated "
            "time); min-wall overhead stays under 5% with tracing on, and the "
            "disabled Tracer.begin guard costs nanoseconds per call",
        ],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E14 — serving gateway: cache hit ratio, tail latency, stampede
# ----------------------------------------------------------------------
_SERVE_METRIC = "energy"


def _serve_cluster(n_units: int, n_sensors: int, horizon: int) -> TsdbCluster:
    """A small retained-data deployment pre-seeded with fleet series."""
    cluster = build_cluster(ClusterConfig(n_nodes=2, salt_buckets=4, retain_data=True))
    cluster.direct_put(
        [
            DataPoint.make(
                _SERVE_METRIC,
                t,
                float((t * 13 + u * 7 + s * 3) % 101),
                {"unit": f"u{u}", "sensor": f"s{s}"},
            )
            for t in range(horizon)
            for u in range(n_units)
            for s in range(n_sensors)
        ]
    )
    return cluster


def _serve_workload(
    cache_enabled: bool,
    n_stampede: int,
    duration: float,
    seed: int,
    n_units: int = 4,
    n_sensors: int = 3,
    horizon: int = 120,
    deadline: Optional[float] = None,
) -> Tuple[WorkloadReport, "QueryGateway"]:
    """One seeded fleet-workload run against a fresh gateway."""
    cluster = _serve_cluster(n_units, n_sensors, horizon)
    gateway = cluster.gateway(
        GatewayConfig(
            ttl=1.0,
            cache_enabled=cache_enabled,
            max_concurrent=2,
            max_queue=8,
            service_model=ServeServiceModel(overhead=0.01),
        )
    )
    units = [f"u{u}" for u in range(n_units)]
    workload = FleetWorkload(
        gateway,
        _SERVE_METRIC,
        units,
        (0, horizon),
        WorkloadConfig(
            n_overview_pollers=16,
            n_drilldown=4,
            n_stampede=n_stampede,
            duration=duration,
            stampede_at=duration / 2.0,
            deadline=deadline,
            seed=seed,
        ),
    )
    # Steady-state warmup: dashboards have been polling since long
    # before the measured window, so the working set is resident (and
    # thereafter kept live by stale-while-revalidate).  The cache-off
    # ablation executes these uncached, symmetrically.
    gateway.serve(workload.overview_query(), client_id="warmup")
    for unit in units:
        gateway.serve(workload.drilldown_query(unit), client_id="warmup")
    return workload.run(), gateway


@REGISTRY.register("E14", "serving gateway — hit ratio, tail latency, stampede shedding")
def e14_serve_gateway(
    duration: float = 10.0,
    stampede: int = 60,
    quick: bool = False,
    seed: int = 29,
) -> ExperimentResult:
    """The query-serving tier under a simulated dashboard fleet.

    Three runs share one seeded workload shape: the gateway with its
    result cache on, the cache-off ablation (every poll executes
    against storage), and a hot-unit stampede against each.  Expected
    shape: warm-cache hit ratio >= 0.8 with client p99 at least 5x
    lower than cache-off; under the stampede the cache+admission tier
    keeps p99 bounded and conserves every request
    (``issued == served + shed + rejected``) with zero unaccounted
    stale responses; with the cache ablated the stampede overwhelms the
    execution slots and admission control demonstrably sheds.
    """
    if quick:
        duration, stampede = 5.0, 30
    scenarios = [
        ("cache on", "on", True, 0, None),
        ("cache off", "off", False, 0, None),
        ("stampede, cache on", "stampede_on", True, stampede, 1.0),
        ("stampede, cache off", "stampede_off", False, stampede, 1.0),
    ]
    table = Table(
        f"Serving-gateway fleet workload ({duration:.0f}s sim, "
        f"16 pollers + 4 browsers, stampede of {stampede})",
        ["scenario", "issued", "served", "hit ratio", "p50", "p99", "shed", "rejected"],
    )
    numbers: Dict[str, float] = {}
    for label, slug, cache_enabled, n_stampede, deadline in scenarios:
        report, gateway = _serve_workload(
            cache_enabled, n_stampede, duration, seed, deadline=deadline
        )
        table.add_row(
            label,
            report.issued,
            report.served,
            f"{report.hit_ratio:.2f}",
            f"{report.latency_quantile(0.5) * 1e3:.2f} ms",
            f"{report.latency_quantile(0.99) * 1e3:.2f} ms",
            report.shed,
            report.rejected,
        )
        numbers[f"{slug}_issued"] = float(report.issued)
        numbers[f"{slug}_served"] = float(report.served)
        numbers[f"{slug}_shed"] = float(report.shed)
        numbers[f"{slug}_rejected"] = float(report.rejected)
        numbers[f"{slug}_hit_ratio"] = report.hit_ratio
        numbers[f"{slug}_p50"] = report.latency_quantile(0.5)
        numbers[f"{slug}_p99"] = report.latency_quantile(0.99)
        numbers[f"{slug}_stale_unaccounted"] = float(report.stale_unaccounted)
        numbers[f"{slug}_not_modified"] = float(report.not_modified)
        numbers[f"{slug}_cache_size"] = float(len(gateway.cache))
    numbers["p99_speedup"] = numbers["off_p99"] / max(numbers["on_p99"], 1e-12)
    return ExperimentResult(
        "E14",
        "the result cache + admission tier keeps dashboard p99 bounded",
        [table],
        notes=[
            "expected shape: cache-on hit ratio >= 0.8 with p99 >= 5x below the "
            "cache-off ablation; the stampede conserves every request "
            "(issued == served + shed + rejected, zero unaccounted stale serves) "
            "and with the cache ablated admission control sheds the overflow "
            "instead of letting the queue grow without bound",
        ],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E15 — columnar block hot path: ingest goodput and read-kernel parity
# ----------------------------------------------------------------------
def _series_major_points(
    n_points: int, n_units: int, n_sensors: int, seed: int
) -> List[DataPoint]:
    """Series-major synthetic workload: long per-series runs, dense blocks.

    Sensors publish contiguous per-series runs (how real collectors
    batch), which is what makes blocks dense; an interleaved stream
    (E13 style, ``unit=u{i%8}``) would degenerate every block to one
    point and measure nothing.
    """
    rng = np.random.default_rng(seed)
    per_series = n_points // (n_units * n_sensors)
    values = rng.normal(size=n_units * n_sensors * per_series)
    points: List[DataPoint] = []
    k = 0
    for u in range(n_units):
        for s in range(n_sensors):
            tags = {"unit": f"u{u}", "sensor": f"s{s}"}
            for t in range(per_series):
                points.append(
                    DataPoint.make("energy", 1_000 + t, float(values[k]), tags)
                )
                k += 1
    return points


def _block_publish_run(
    points: List[DataPoint], batch_size: int, use_blocks: bool
) -> Dict[str, float]:
    """Publish one workload point-wise or as blocks; report sim goodput."""
    from ..tsdb.blocks import BlockBatch

    cluster = build_cluster(ClusterConfig(n_nodes=2, salt_buckets=4))
    publisher = BatchPublisher(cluster, batch_size=batch_size, max_in_flight_batches=8)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        wall0 = time.perf_counter()
        if use_blocks:
            publisher.publish_blocks(BlockBatch.from_points(points))
        else:
            publisher.publish(points)
        report = publisher.flush()
        wall = time.perf_counter() - wall0
    finally:
        if gc_was_enabled:
            gc.enable()
    sim_elapsed = max(cluster.sim.now, 1e-9)
    return {
        "goodput": report.points_written / sim_elapsed,
        "written": float(report.points_written),
        "failed": float(report.points_failed),
        "wall_s": wall,
        "sim_s": cluster.sim.now,
    }


def _read_ablation_run(
    points: List[DataPoint], n_queries: int, seed: int
) -> Dict[str, float]:
    """Columnar vs per-cell scan assembly: wall-clock and bit-identity."""
    from ..tsdb.query import TsdbQuery

    rng = np.random.default_rng(seed)
    cluster = build_cluster(ClusterConfig(n_nodes=2, salt_buckets=4, retain_data=True))
    cluster.direct_put(points)
    engine = cluster.query_engine()
    t_lo = min(p.timestamp for p in points)
    t_hi = max(p.timestamp for p in points) + 1
    queries = [
        TsdbQuery(
            "energy",
            int(rng.integers(t_lo, max(t_hi - 1, t_lo + 1))),
            t_hi,
            tag_filters={"unit": f"u{int(rng.integers(0, 8))}"},
            group_by=("sensor",),
        )
        for _ in range(n_queries)
    ]
    identical = True
    wall_block = 0.0
    wall_point = 0.0
    for query in queries:
        w0 = time.perf_counter()
        block_out = engine.run(query)
        wall_block += time.perf_counter() - w0
        w0 = time.perf_counter()
        point_out = engine.run_pointwise(query)
        wall_point += time.perf_counter() - w0
        if len(block_out) != len(point_out):
            identical = False
            continue
        for a, b in zip(block_out, point_out):
            if (
                a.tags != b.tags
                or a.timestamps.tobytes() != b.timestamps.tobytes()
                or a.values.tobytes() != b.values.tobytes()
            ):
                identical = False
    return {
        "read_wall_block_s": wall_block,
        "read_wall_pointwise_s": wall_point,
        "read_speedup": wall_point / max(wall_block, 1e-12),
        "read_identical": 1.0 if identical else 0.0,
    }


def _kernel_microbench(n_points: int, seed: int) -> Dict[str, float]:
    """Wall-clock of the batch parse kernel vs the per-line path."""
    from ..tsdb.lineprotocol import format_put_line, parse_block, parse_lines

    points = _series_major_points(n_points, 4, 5, seed)
    lines = [format_put_line(p) for p in points]
    w0 = time.perf_counter()
    parsed = list(parse_lines(lines))
    wall_lines = time.perf_counter() - w0
    w0 = time.perf_counter()
    batch = parse_block(lines)
    wall_block = time.perf_counter() - w0
    assert len(parsed) == len(batch)
    return {
        "parse_wall_lines_s": wall_lines,
        "parse_wall_block_s": wall_block,
        "parse_speedup": wall_lines / max(wall_block, 1e-12),
        "parse_blocks": float(batch.n_blocks),
    }


#: The E12 fault-free goodput this repo's seed runs record (22.5k pts/s
#: at 10k points / batches of 100 / 2 nodes) — the block path's target
#: is >= 5x this.
E12_BASELINE_GOODPUT = 22_500.0


@REGISTRY.register("E15", "columnar blocks — ingest goodput and read-kernel parity")
def e15_block_hotpath(
    n_points: int = 10_000,
    batch_size: int = 100,
    n_units: int = 8,
    n_sensors: int = 5,
    n_queries: int = 12,
    quick: bool = False,
    seed: int = 29,
) -> ExperimentResult:
    """The block redesign's headline claim: the hot path is columnar.

    Publishes one series-major workload through the point-wise and the
    block ingest paths (same batch size, same cluster), runs the
    columnar vs per-cell read ablation on identical data, and times the
    batch parse kernel.  Simulated goodput is deterministic per seed;
    wall-clock rows are reported for the kernel story but gated only
    loosely.
    """
    if quick:
        n_points, n_queries = 2_500, 6
    points = _series_major_points(n_points, n_units, n_sensors, seed)
    point_run = _block_publish_run(points, batch_size, use_blocks=False)
    block_run = _block_publish_run(points, batch_size, use_blocks=True)
    reads = _read_ablation_run(points, n_queries, seed)
    kernels = _kernel_microbench(min(n_points, 5_000), seed)

    ingest = Table(
        f"Block vs point ingest ({len(points)} points, batches of {batch_size}, 2 nodes)",
        ["path", "goodput", "written", "failed", "sim time", "wall"],
    )
    for label, run in [("point-wise", point_run), ("columnar blocks", block_run)]:
        ingest.add_row(
            label,
            format_rate(run["goodput"]),
            int(run["written"]),
            int(run["failed"]),
            f"{run['sim_s'] * 1e3:.1f} ms",
            f"{run['wall_s'] * 1e3:.1f} ms",
        )
    reads_table = Table(
        f"Read-path ablation ({n_queries} random grouped queries)",
        ["assembler", "wall total", "identical results"],
    )
    reads_table.add_row(
        "columnar (default)", f"{reads['read_wall_block_s'] * 1e3:.1f} ms",
        "yes" if reads["read_identical"] == 1.0 else "NO",
    )
    reads_table.add_row(
        "per-cell reference", f"{reads['read_wall_pointwise_s'] * 1e3:.1f} ms", "—"
    )
    kernel_table = Table(
        "Batch parse kernel (wall-clock)",
        ["kernel", "wall", "speedup"],
    )
    kernel_table.add_row(
        "parse_lines (per line)", f"{kernels['parse_wall_lines_s'] * 1e3:.1f} ms", "1.0x"
    )
    kernel_table.add_row(
        "parse_block (columnar)",
        f"{kernels['parse_wall_block_s'] * 1e3:.1f} ms",
        f"{kernels['parse_speedup']:.1f}x",
    )

    numbers: Dict[str, float] = {}
    for slug, run in [("point", point_run), ("block", block_run)]:
        for key, value in run.items():
            numbers[f"{slug}_{key}"] = value
    numbers.update(reads)
    numbers.update(kernels)
    numbers["e12_baseline_goodput"] = E12_BASELINE_GOODPUT
    numbers["speedup_vs_e12_baseline"] = numbers["block_goodput"] / E12_BASELINE_GOODPUT
    numbers["speedup_vs_pointwise"] = numbers["block_goodput"] / max(
        numbers["point_goodput"], 1e-12
    )
    return ExperimentResult(
        "E15",
        "the columnar block path multiplies simulated ingest goodput",
        [ingest, reads_table, kernel_table],
        notes=[
            "expected shape: block-path goodput >= 5x the E12 22.5k pts/s fault-free "
            "baseline (and well above the same-workload point path), with the "
            "columnar read assembler bit-identical to the per-cell reference on "
            "every random query",
        ],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E16 — replicated reads: availability through RegionServer crashes
# ----------------------------------------------------------------------
#: Fault-free replication overhead budget: the fraction of rf=1 publish
#: goodput an rf=2 deployment may give up.  WAL shipping is
#: asynchronous and off the write critical path, so the budget is
#: deliberately tight.
E16_OVERHEAD_BUDGET = 0.10
#: Staleness bound a successful timeline probe must report (seconds).
E16_STALENESS_BOUND = 1.0
#: A probe must complete within this much simulated time to count as an
#: available read — a reply that only arrives after crash detection and
#: recovery is an outage, not availability.
E16_PROBE_BUDGET = 0.25
#: Crash window length and the master's detection delay.  Detection is
#: deliberately slower than the outage (the server restarts before the
#: master notices), so an unreplicated cluster cannot serve the crashed
#: regions at any point inside the window.
E16_CRASH_WINDOW = 1.0
E16_DETECTION_DELAY = 1.2


def _e16_points(n_points: int, seed: int) -> List[DataPoint]:
    rng = np.random.default_rng(seed)
    # Enough distinct series (unit x src) that every salt bucket holds
    # data — a crash then provably interrupts reads on every bucket.
    return [
        DataPoint.make(
            "energy", 1_000 + i, float(v),
            {"unit": f"u{i % 4}", "src": f"s{i % 7}"},
        )
        for i, v in enumerate(rng.normal(size=n_points))
    ]


def _e16_publish(
    replication_factor: int, points: Sequence[DataPoint], detection_delay: float = 0.0
) -> Tuple[TsdbCluster, float]:
    """A 3-node cluster loaded through the WAL-synced RPC publish path.

    Returns the cluster and its publish goodput (points per simulated
    second, replication shipping included in the elapsed time).
    """
    cluster = build_cluster(ClusterConfig(
        n_nodes=3,
        salt_buckets=6,
        retain_data=True,
        crash_on_overflow=False,
        replication_factor=replication_factor,
        failure_detection_delay=detection_delay,
    ))
    start = cluster.sim.now
    publisher = BatchPublisher(
        cluster, batch_size=100, max_in_flight_batches=8, ack_deadline=30.0
    )
    publisher.publish(points)
    report = publisher.flush()
    goodput = report.points_written / max(cluster.sim.now - start, 1e-9)
    # Let the asynchronous WAL-shipping apply loops drain fully.
    cluster.sim.run(until=cluster.sim.now + 1.0)
    return cluster, goodput


def _e16_query(n_points: int) -> TsdbQuery:
    return TsdbQuery("energy", 0, 1_000 + n_points + 1, aggregator="sum")


def _e16_probe_run(
    replication_factor: int, points: Sequence[DataPoint], n_probes: int
) -> Dict[str, float]:
    """Probe timeline reads through two sequential RegionServer crashes."""
    cluster, _ = _e16_publish(
        replication_factor, points, detection_delay=E16_DETECTION_DELAY
    )
    sim = cluster.sim
    client = HTableClient(
        sim, cluster.network, cluster.master, "probe-client",
        metrics=cluster.metrics, max_retries=3, backoff_base=0.02, rpc_timeout=2.0,
    )
    executor = AsyncQueryExecutor(sim, client, cluster.uids, cluster.codec)
    full_query = _e16_query(len(points))
    # Probes read a fixed-width slice so their cost stays constant as
    # the published workload grows — concurrent probes then cannot
    # overload the surviving servers on their own.  Full-dataset
    # completeness is checked separately through the strong read below.
    probe_query = TsdbQuery("energy", 1_000, 2_000, aggregator="sum")

    # Calibrate probe timing to the workload: the per-RPC deadline is a
    # small multiple of the healthy end-to-end latency, so a timeout
    # signals a dead replica rather than a legitimately large scan.
    # The warm probe also pins the expected point count for the slice.
    warm: List[object] = []
    executor.execute(probe_query, warm.append, consistency="timeline", deadline=None)
    sim.run(until=sim.now + 5.0)
    if not warm or not warm[0].complete:
        raise RuntimeError("E16 warm-up probe failed on a healthy cluster")
    expected = sum(len(s.timestamps) for s in warm[0].series)
    healthy_latency = warm[0].latency
    # Deadline leaves room for legitimately-degraded reads (post-crash
    # rebalancing concentrates load on the survivors); a timeout still
    # signals a dead replica an order of magnitude before detection.
    deadline = max(0.03, 2.5 * healthy_latency)
    # Hedge only once the healthy latency has elapsed: hedging sooner
    # fires duplicates on perfectly healthy reads, and that extra load
    # can tip the surviving servers into a metastable overload where
    # deadline misses beget retries beget more load.
    hedge_delay = healthy_latency
    probe_budget = max(E16_PROBE_BUDGET, 5.0 * deadline)

    # Two crash windows, each fully recovered (detection + failover or
    # reassignment) before the next begins.
    windows: List[Tuple[float, float]] = []
    events: List[FaultEvent] = []
    start = sim.now + 0.3
    for target in ("rs00", "rs01"):
        events.append(
            FaultEvent(at=start, action="rs_crash", target=target, duration=E16_CRASH_WINDOW)
        )
        windows.append((start, start + E16_CRASH_WINDOW))
        start += E16_DETECTION_DELAY + 0.6
    horizon = windows[-1][0] + E16_DETECTION_DELAY + 0.6
    # After the probe windows, one outage *longer* than the detection
    # delay exercises detection-time recovery: the master promotes the
    # most-caught-up follower (rf>=2) or replays the durable WAL onto
    # the survivors (rf=1).  Probes in flight then are out-of-window
    # and do not count toward availability.
    failover_at = horizon + 0.2
    failover_outage = E16_DETECTION_DELAY + 1.0
    events.append(
        FaultEvent(at=failover_at, action="rs_crash", target="rs02",
                   duration=failover_outage)
    )
    injector = Injector(cluster, FaultPlan(name="e16-rs-crash", events=tuple(events)))
    injector.arm()

    probes: List[Tuple[float, float, object, int]] = []

    # Closed-loop probing: one probe outstanding at a time, the next
    # issued a fixed gap after the previous resolves.  The probe stream
    # then cannot saturate the cluster it is measuring, no matter how
    # slow degraded reads get.
    probe_gap = 2.0 * healthy_latency

    def probe() -> None:
        issued = sim.now

        def done(res) -> None:
            total = sum(len(s.timestamps) for s in res.series)
            probes.append((issued, sim.now - issued, res, total))
            if sim.now + probe_gap < horizon and len(probes) < n_probes:
                sim.schedule(probe_gap, probe)

        executor.execute(
            probe_query, done, consistency="timeline",
            deadline=deadline, hedge_delay=hedge_delay,
        )

    sim.schedule(0.05, probe)
    sim.run(until=failover_at + failover_outage + E16_DETECTION_DELAY + 1.0)
    injector.finalize()

    def ok(entry: Tuple[float, float, object, int]) -> bool:
        _, latency, res, total = entry
        return (
            res.complete
            and latency <= probe_budget
            and total == expected
            and res.staleness <= E16_STALENESS_BOUND
        )

    in_window = [
        p for p in probes if any(lo <= p[0] < hi for lo, hi in windows)
    ]
    successes = [p for p in in_window if ok(p)]
    post_series = cluster.query_engine().run(full_query)
    return {
        "probes_total": float(len(probes)),
        "probes_in_window": float(len(in_window)),
        "healthy_latency": healthy_latency,
        "probe_deadline": deadline,
        "probe_budget": probe_budget,
        "availability": len(successes) / max(len(in_window), 1),
        "max_staleness": max((p[2].staleness for p in successes), default=0.0),
        "retries": float(sum(p[2].retries for p in probes)),
        "hedges": float(sum(p[2].hedges for p in probes)),
        "follower_reads": float(sum(p[2].follower_reads for p in probes)),
        "failovers": float(cluster.master.failovers),
        "synced_cells_lost": float(cluster.master.cells_lost_unsynced),
        "post_crash_strong_points": float(sum(len(s.timestamps) for s in post_series)),
    }


@REGISTRY.register("E16", "replicated reads — availability through RegionServer crashes")
def e16_replicated_reads(
    n_points: int = 4_000,
    n_probes: int = 48,
    quick: bool = False,
    seed: int = 29,
) -> ExperimentResult:
    """Read-path fault tolerance: region replicas + failover reads.

    Loads one WAL-synced workload, then crashes RegionServers under a
    slower-than-the-outage detection delay while probing deadline-
    bounded, hedged timeline reads.  Unreplicated, every in-window
    probe that touches the dead server's regions fails; with one
    follower per region, reads fail over within a deadline and the
    Master promotes the most-caught-up follower once detection fires.
    Fault-free, the asynchronous WAL shipping must stay near-free on
    publish goodput, and strong-mode gateway responses must remain
    bit-identical to the direct engine.
    """
    if quick:
        n_points, n_probes = 1_500, 24
    points = _e16_points(n_points, seed)
    query = _e16_query(n_points)

    # Fault-free: replication overhead + strong-mode bit-identity.
    _, goodput_rf1 = _e16_publish(1, points)
    repl_cluster, goodput_rf2 = _e16_publish(2, points)
    overhead_frac = (goodput_rf1 - goodput_rf2) / max(goodput_rf1, 1e-9)
    engine_series = repl_cluster.query_engine().run(query)
    gateway_series = repl_cluster.gateway().run(query)
    strong_identical = 1.0 if result_etag(gateway_series) == result_etag(engine_series) else 0.0

    unreplicated = _e16_probe_run(1, points, n_probes)
    replicated = _e16_probe_run(2, points, n_probes)

    availability = Table(
        f"Timeline reads under RegionServer crashes ({n_probes} probes, "
        f"{E16_CRASH_WINDOW:.1f}s windows, detection {E16_DETECTION_DELAY:.1f}s)",
        ["configuration", "in-window availability", "max staleness",
         "follower reads", "hedges", "failovers", "synced cells lost"],
    )
    for label, run in [("rf=1 (unreplicated)", unreplicated), ("rf=2 (1 follower)", replicated)]:
        availability.add_row(
            label,
            f"{run['availability'] * 100.0:.1f}%",
            f"{run['max_staleness'] * 1e3:.1f} ms",
            int(run["follower_reads"]),
            int(run["hedges"]),
            int(run["failovers"]),
            int(run["synced_cells_lost"]),
        )
    overhead = Table(
        f"Fault-free publish goodput ({n_points} points, batches of 100, 3 nodes)",
        ["configuration", "goodput", "overhead vs rf=1"],
    )
    overhead.add_row("rf=1", format_rate(goodput_rf1), "—")
    overhead.add_row("rf=2", format_rate(goodput_rf2), f"{overhead_frac * 100.0:.1f}%")

    numbers: Dict[str, float] = {}
    for slug, run in [("unreplicated", unreplicated), ("replicated", replicated)]:
        for key, value in run.items():
            numbers[f"{slug}_{key}"] = value
    numbers.update(
        goodput_rf1=goodput_rf1,
        goodput_rf2=goodput_rf2,
        overhead_frac=overhead_frac,
        overhead_budget=E16_OVERHEAD_BUDGET,
        strong_identical=strong_identical,
        points_expected=float(n_points),
    )
    return ExperimentResult(
        "E16",
        "follower replicas turn crash windows from outages into bounded-staleness reads",
        [availability, overhead],
        notes=[
            "expected shape: in-window timeline availability >= 99% with rf=2 "
            "(collapsing toward 0% unreplicated), zero WAL-synced cells lost across "
            "failover, fault-free replication overhead within the "
            f"{E16_OVERHEAD_BUDGET:.0%} budget, and strong-mode gateway responses "
            "bit-identical to the direct engine",
        ],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E17 — continuous detection + smart alerting
# ----------------------------------------------------------------------
#: Gated floor on alert-volume reduction: naive per-sensor firings per
#: operator-facing incident on the seeded correlated-fault workload.
E17_REDUCTION_FLOOR = 5.0


def _e17_generator(n_units: int, n_sensors: int, seed: int) -> FleetGenerator:
    """The E17 correlated-fault fleet.

    Strong factor-loaded faults (3–6 sigma, drifts fully developed
    within 100–200 s) on a 30/20/50 shift/drift/healthy mix — the
    regime where one physical fault lights up many sensors at once and
    naive per-sensor paging floods the operator.
    """
    return FleetGenerator(
        FleetConfig(
            n_units=n_units,
            n_sensors=n_sensors,
            seed=seed,
            fault_mix=(0.3, 0.2, 0.5),
            magnitude_range=(3.0, 6.0),
            drift_ramp_range=(100, 200),
        )
    )


def _e17_onsets(generator: FleetGenerator, n_train: int, n_eval: int) -> Dict[int, int]:
    """Absolute stream-time fault onset per faulted unit."""
    onsets: Dict[int, int] = {}
    for unit_id in generator.units():
        faults = generator.fault_for(unit_id, n_eval)
        if faults:
            onsets[unit_id] = n_train + min(f.onset for f in faults)
    return onsets


@REGISTRY.register("E17", "streaming — continuous detection + alert dedup/suppression")
def e17_streaming_alerting(
    n_units: int = 8,
    n_sensors: int = 12,
    n_train: int = 300,
    n_eval: int = 300,
    interval: int = 25,
    quick: bool = False,
    seed: int = 11,
) -> ExperimentResult:
    """The closed loop: micro-batch stream → detection → incidents.

    One seeded correlated-fault fleet is streamed end to end through
    :class:`~repro.alerting.StreamingDetector`: raw samples land as
    columnar blocks, flagged cells as ``anomaly`` points, and the
    alerting layer's incidents as ``alert.*`` series — every channel
    ack-tracked.  The headline numbers are alert-volume reduction
    (naive per-sensor firings per emitted incident), detection latency
    from injected fault onset to incident open, and the sustained
    stream→incident ingest rate.  Detection is deterministic per seed;
    only the wall-clock rows vary run to run.
    """
    del quick  # the paper-scale run is already CI-sized (and gated)
    from ..alerting import AlertingConfig, StreamingDetector
    from ..alerting.store import ALERT_INCIDENT_METRIC

    generator = _e17_generator(n_units, n_sensors, seed)
    cluster = build_cluster(ClusterConfig(n_nodes=2, salt_buckets=4, retain_data=True))
    detector = StreamingDetector(
        n_sensors,
        cluster,
        config=FDRDetectorConfig(q=0.005),
        alerting=AlertingConfig(open_after=3),
        min_samples=200,
        refresh_every=2,
    )
    report = detector.run_fleet(
        generator, n_train=n_train, n_eval=n_eval, interval=interval
    )

    onsets = _e17_onsets(generator, n_train, n_eval)
    latencies = report.detection_latencies(onsets)
    missed = sorted(set(onsets) - set(latencies))
    # Spurious pages: unit incidents on healthy units, or opened on a
    # faulted unit before its fault exists.
    spurious = sum(
        1
        for inc in report.incidents
        if inc.scope == "unit"
        and (inc.unit_id not in onsets or inc.opened_at < onsets[inc.unit_id])
    )
    stored = cluster.query_engine().run(
        TsdbQuery(
            ALERT_INCIDENT_METRIC, 0, n_train + n_eval + 1, group_by=("unit",)
        )
    )
    stored_incidents = sum(len(s.timestamps) for s in stored)

    alerting_table = Table(
        f"Alert volume and detection latency ({n_units} units x {n_sensors} sensors, "
        f"{len(onsets)} faulted)",
        ["readout", "naive per-sensor", "alerting layer"],
    )
    alerting_table.add_row("alerts raised", report.naive_alerts, report.incidents_opened)
    alerting_table.add_row(
        "reduction", "1.0x", f"{report.volume_reduction:.1f}x"
    )
    alerting_table.add_row(
        "faults detected", f"{len(onsets)}/{len(onsets)}",
        f"{len(latencies)}/{len(onsets)}" + (f" (missed {missed})" if missed else ""),
    )
    lat_values = sorted(latencies.values())
    alerting_table.add_row(
        "onset → open latency", "—",
        f"mean {np.mean(lat_values):.0f}s, max {max(lat_values)}s" if lat_values else "—",
    )
    alerting_table.add_row("spurious unit incidents", "—", spurious)

    stream_table = Table(
        "Sustained stream → incident path",
        ["intervals", "samples", "samples/s (wall)", "model swaps", "quarantines"],
    )
    stream_table.add_row(
        report.intervals,
        report.samples_streamed,
        format_rate(report.samples_per_second),
        report.model_swaps,
        report.quarantines,
    )

    publish_table = Table(
        "Publish conservation (ack-tracked channels)",
        ["channel", "submitted", "written", "unaccounted"],
    )
    channel_numbers: Dict[str, float] = {}
    for label, pub in [
        ("data blocks", report.data_publish),
        ("anomaly points", report.anomaly_publish),
        ("alert series", report.alert_publish),
    ]:
        if pub is None:
            continue
        unaccounted = pub.points_submitted - pub.points_accounted
        publish_table.add_row(
            label, pub.points_submitted, pub.points_written, unaccounted
        )
        slug = label.split(" ")[0]
        channel_numbers[f"{slug}_submitted"] = float(pub.points_submitted)
        channel_numbers[f"{slug}_unaccounted"] = float(unaccounted)

    numbers: Dict[str, float] = {
        "naive_alerts": float(report.naive_alerts),
        "incidents_opened": float(report.incidents_opened),
        "volume_reduction": report.volume_reduction,
        "reduction_floor": E17_REDUCTION_FLOOR,
        "faulted_units": float(len(onsets)),
        "detected_units": float(len(latencies)),
        "missed_units": float(len(missed)),
        "spurious_unit_incidents": float(spurious),
        "latency_mean": float(np.mean(lat_values)) if lat_values else float("nan"),
        "latency_max": float(max(lat_values)) if lat_values else float("nan"),
        "intervals": float(report.intervals),
        "samples_streamed": float(report.samples_streamed),
        "samples_scored": float(report.samples_scored),
        "samples_per_second": report.samples_per_second,
        "wall_s": report.wall_seconds,
        "model_swaps": float(report.model_swaps),
        "quarantines": float(report.quarantines),
        "stored_alert_incidents": float(stored_incidents),
        **channel_numbers,
    }
    return ExperimentResult(
        "E17",
        "the alerting layer collapses per-sensor firings into a handful of incidents",
        [alerting_table, stream_table, publish_table],
        notes=[
            f"expected shape: every injected fault opens exactly one incident "
            f"(zero missed, zero spurious) at >= {E17_REDUCTION_FLOOR:.0f}x volume "
            "reduction over naive per-sensor firing, with every publish channel "
            "conserving points end to end",
            "detection numbers are deterministic per seed; only wall-clock varies",
        ],
        numbers=numbers,
    )


# ----------------------------------------------------------------------
# E18: data lifecycle — rollup tiers under a fleet-growth soak
# ----------------------------------------------------------------------
E18_FLAT_FACTOR = 2.0
E18_SUPERLINEAR_MARGIN = 1.2
E18_RAW_REDUCTION_FLOOR = 5.0


def _e18_cells(engine, query: TsdbQuery) -> int:
    """Cells scanned by one run of ``query`` (the deterministic cost proxy)."""
    before = engine.scan_cells
    engine.run(query)
    return engine.scan_cells - before


def _e18_long(horizon: int) -> TsdbQuery:
    """The long-horizon dashboard: fleet min at 1 h resolution, full history."""
    return TsdbQuery(
        FLEET_METRIC,
        0,
        horizon,
        aggregator="min",
        downsample_window=3600,
        downsample_aggregator="min",
    )


def _e18_short(horizon: int) -> TsdbQuery:
    """The short-horizon baseline: last hour at 1 m resolution (raw-served)."""
    return TsdbQuery(
        FLEET_METRIC,
        horizon - 3600,
        horizon,
        aggregator="min",
        downsample_window=60,
        downsample_aggregator="min",
    )


@REGISTRY.register(
    "E18", "lifecycle — rollup tiers keep long-horizon dashboards flat under soak"
)
def e18_lifecycle_soak(
    start_units: int = 100,
    end_units: int = 10_000,
    duration: int = 6 * 3600,
    cadence: int = 60,
    raw_ttl: int = 3 * 3600,
    maintenance_every: int = 1800,
    query_reps: int = 5,
    quick: bool = False,
    seed: int = 0,
) -> ExperimentResult:
    """The lifecycle soak: a geometrically growing fleet vs a fixed dashboard.

    :func:`~repro.simdata.workload.soak_stream` grows the fleet from
    ``start_units`` to ``end_units`` (diurnal values, periodic ingest
    bursts, sensor churn) while the lifecycle tier materializes 1 h
    rollups and expires raw cells past ``raw_ttl``.  At three
    checkpoints the same two dashboard queries are replayed:

    * **long horizon** — fleet-wide min at 1 h resolution over the whole
      soak history, tier-routed (and pooled once raw expires);
    * **short horizon** — the last hour at 1 m resolution, raw-served:
      the cost an operator already accepts for a live view.

    The cost proxy is cells scanned (deterministic per seed; wall-clock
    rows are recorded but not gated).  The gates: the raw-only ablation
    of the long query grows super-linearly in time as the fleet grows,
    while the tier-routed plan stays within ``E18_FLAT_FACTOR`` of the
    short-horizon baseline; tier answers over unexpired raw are
    bit-identical; out-of-order writes injected mid-soak are
    re-materialized; and conservation holds through TTL expiry.
    """
    from ..lifecycle import LifecyclePolicy, TierSpec

    if quick:
        start_units, end_units = 10, 120
        duration, raw_ttl = 4 * 3600, 2 * 3600
        query_reps = 3

    cluster = build_cluster(
        ClusterConfig(
            n_nodes=2,
            salt_buckets=4,
            retain_data=True,
            # A single 1 h tier: at a 60 s soak cadence a 1 m tier would
            # hold as many windows as raw holds points — pure overhead.
            lifecycle=LifecyclePolicy(tiers=(TierSpec("1h", 3600),), raw_ttl=raw_ttl),
        )
    )
    lm = cluster.lifecycle
    routed = cluster.query_engine()
    raw_engine = cluster.query_engine()
    raw_engine.lifecycle = None  # ablation: same storage, no tier routing

    checkpoint_rows: List[Dict[str, float]] = []

    def measure() -> None:
        horizon = lm.rollup.watermark(FLEET_METRIC, "1h")
        hwm = lm.rollup.high_water(FLEET_METRIC)
        long_q, short_q = _e18_long(horizon), _e18_short(horizon)
        long_walls: List[float] = []
        short_walls: List[float] = []
        routed_cells = short_cells = 0
        for _ in range(query_reps):
            t0 = time.perf_counter()
            routed_cells = _e18_cells(routed, long_q)
            long_walls.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            short_cells = _e18_cells(routed, short_q)
            short_walls.append(time.perf_counter() - t0)
        raw_cells = _e18_cells(raw_engine, long_q)
        checkpoint_rows.append(
            {
                "end": float(hwm + 1),
                "units": float(
                    soak_units(min(hwm, duration), duration, start_units, end_units)
                ),
                "raw_cells": float(raw_cells),
                "routed_cells": float(routed_cells),
                "short_cells": float(short_cells),
                "long_p99_ms": float(np.percentile(long_walls, 99) * 1e3),
                "short_p99_ms": float(np.percentile(short_walls, 99) * 1e3),
            }
        )

    checkpoints = [duration // 3, 2 * duration // 3]
    points = 0
    passes = 0
    late_writes = 0
    next_maintenance = maintenance_every
    ci = 0
    wall0 = time.perf_counter()
    for batch in soak_stream(
        start_units=start_units,
        end_units=end_units,
        n_sensors=2,
        duration=duration,
        cadence=cadence,
        seed=seed,
    ):
        cluster.direct_put(batch)
        points += len(batch)
        hwm = lm.rollup.high_water(FLEET_METRIC)
        while hwm + 1 >= next_maintenance:
            lm.run_maintenance()
            passes += 1
            next_maintenance += maintenance_every
        if ci < len(checkpoints) and hwm >= checkpoints[ci]:
            lm.run_maintenance(purge=True)
            passes += 1
            measure()
            if ci == 1:
                # Out-of-order writes behind the 1 h watermark: off the
                # 60 s grid and the burst offsets, so no (series, ts)
                # pair collides with the stream (a duplicate would
                # overwrite, breaking the point accounting).
                horizon = lm.rollup.watermark(FLEET_METRIC, "1h")
                late = [
                    DataPoint.make(
                        FLEET_METRIC,
                        horizon - off,
                        500.0,
                        {"unit": unit_tag(0), "sensor": sensor_tag(0)},
                    )
                    for off in (1801, 1861, 1921)
                ]
                cluster.direct_put(late)
                late_writes = len(late)
            ci += 1
    ingest_wall = time.perf_counter() - wall0
    lm.run_maintenance(purge=True)
    passes += 1
    measure()

    # Bit-identity probes: every pair combo over the unexpired window.
    floor = lm.retention.raw_floor(FLEET_METRIC)
    horizon = lm.rollup.watermark(FLEET_METRIC, "1h")
    probes = identical_probes = mismatches = 0
    for agg, ds in (("min", "min"), ("max", "max"), ("count", "sum")):
        probe = TsdbQuery(
            FLEET_METRIC,
            floor,
            horizon,
            aggregator=agg,
            downsample_window=3600,
            downsample_aggregator=ds,
        )
        probes += 1
        if lm.plan(probe, record=False).mode == "identical":
            identical_probes += 1
        got, want = routed.run(probe), raw_engine.run(probe)
        exact = len(got) == len(want) and all(
            a.tags == b.tags
            and np.array_equal(a.timestamps, b.timestamps)
            and np.array_equal(a.values, b.values, equal_nan=True)
            for a, b in zip(got, want)
        )
        if not exact:
            mismatches += 1

    conservation = lm.verify_conservation(FLEET_METRIC)
    backfill_windows = lm.metrics.counter("lifecycle.backfill.windows").get()

    t1, t2, final = checkpoint_rows[0], checkpoint_rows[1], checkpoint_rows[2]
    raw_growth = t2["raw_cells"] / t1["raw_cells"]
    time_growth = t2["end"] / t1["end"]
    flat_ratio = final["routed_cells"] / final["short_cells"]
    raw_reduction = final["raw_cells"] / final["routed_cells"]

    growth_table = Table(
        f"Soak growth ({start_units} -> {end_units} units x 2 sensors, "
        f"{duration // 3600} h at {cadence} s cadence)",
        [
            "checkpoint",
            "sim hours",
            "units",
            "raw cells (ablation)",
            "tier cells (routed)",
            "last-hour cells",
        ],
    )
    for i, row in enumerate(checkpoint_rows, start=1):
        growth_table.add_row(
            f"T{i}",
            f"{row['end'] / 3600.0:.1f}",
            int(row["units"]),
            int(row["raw_cells"]),
            int(row["routed_cells"]),
            int(row["short_cells"]),
        )

    gate_table = Table("Lifecycle gates (deterministic per seed)", ["gate", "measured", "bound"])
    gate_table.add_row(
        "long-horizon cost vs short baseline",
        f"{flat_ratio:.3f}x",
        f"<= {E18_FLAT_FACTOR:.1f}x",
    )
    gate_table.add_row(
        "raw ablation growth T1 -> T2",
        f"{raw_growth:.2f}x cells in {time_growth:.2f}x time",
        f"> {E18_SUPERLINEAR_MARGIN:.2f}x time",
    )
    gate_table.add_row(
        "tier scan reduction at T3",
        f"{raw_reduction:.1f}x",
        f">= {E18_RAW_REDUCTION_FLOOR:.1f}x",
    )
    gate_table.add_row(
        "bit-identity vs raw (unexpired)",
        f"{probes - mismatches}/{probes} probes exact",
        "0 mismatches",
    )
    gate_table.add_row(
        "conservation through expiry",
        "ok" if conservation["ok"] else "VIOLATED",
        f"ok ({conservation['expired_raw']} raw cells expired)",
    )
    gate_table.add_row(
        "late-write backfill", f"{backfill_windows} windows re-materialized", ">= 1"
    )

    wall_table = Table(
        "Soak ingest and query wall-clock (recorded, not gated)",
        [
            "points",
            "ingest wall",
            "points/s",
            "maintenance passes",
            "long p99",
            "short p99",
        ],
    )
    wall_table.add_row(
        points,
        f"{ingest_wall:.1f}s",
        format_rate(points / ingest_wall),
        passes,
        f"{final['long_p99_ms']:.1f}ms",
        f"{final['short_p99_ms']:.1f}ms",
    )

    numbers: Dict[str, float] = {
        "start_units": float(start_units),
        "end_units": float(end_units),
        "final_units": final["units"],
        "duration_s": float(duration),
        "raw_ttl_s": float(raw_ttl),
        "points_ingested": float(points),
        "maintenance_passes": float(passes),
        "raw_cells_t1": t1["raw_cells"],
        "raw_cells_t2": t2["raw_cells"],
        "raw_cells_final": final["raw_cells"],
        "routed_cells_final": final["routed_cells"],
        "short_cells_final": final["short_cells"],
        "raw_growth": raw_growth,
        "time_growth": time_growth,
        "superlinear_margin": E18_SUPERLINEAR_MARGIN,
        "flat_ratio": flat_ratio,
        "flat_factor": E18_FLAT_FACTOR,
        "raw_reduction": raw_reduction,
        "reduction_floor": E18_RAW_REDUCTION_FLOOR,
        "bitident_probes": float(probes),
        "bitident_identical_plans": float(identical_probes),
        "bitident_mismatches": float(mismatches),
        "conservation_ok": 1.0 if conservation["ok"] else 0.0,
        "ingested": float(conservation["ingested"]),
        "live_raw": float(conservation["live_raw"]),
        "expired_raw": float(conservation["expired_raw"]),
        "too_late": float(conservation["too_late"]),
        "late_writes": float(late_writes),
        "backfill_windows": float(backfill_windows),
        "ingest_wall_s": ingest_wall,
        "ingest_rate": points / ingest_wall,
        "long_p99_ms": final["long_p99_ms"],
        "short_p99_ms": final["short_p99_ms"],
    }
    return ExperimentResult(
        "E18",
        "rollup tiers hold long-horizon query cost flat while raw scans grow with the fleet",
        [growth_table, gate_table, wall_table],
        notes=[
            "expected shape: the raw-only ablation's full-history scan grows "
            "super-linearly in time (the fleet grows geometrically) while the "
            f"tier-routed plan stays within {E18_FLAT_FACTOR:.0f}x of the "
            "last-hour baseline; tier answers over unexpired raw are "
            "bit-identical; conservation holds through TTL expiry and "
            "late-write backfill",
            "cell counts and conservation are deterministic per seed; "
            "wall-clock rows vary run to run",
        ],
        numbers=numbers,
    )
