"""Experiment harness: tables, registries and the paper-comparison layout.

Every experiment produces one or more :class:`Table` objects whose rows
mirror what the paper reports (plus a ``paper`` column with the
published value where one exists), so a bench run reads as a direct
side-by-side.  EXPERIMENTS.md is generated from the same tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

__all__ = [
    "Table",
    "ExperimentResult",
    "ExperimentRegistry",
    "format_rate",
    "write_json_result",
]


def format_rate(samples_per_second: float) -> str:
    """Human throughput formatting: ``399.0k/s`` / ``1.2M/s``."""
    if samples_per_second >= 1e6:
        return f"{samples_per_second / 1e6:.2f}M/s"
    if samples_per_second >= 1e3:
        return f"{samples_per_second / 1e3:.1f}k/s"
    return f"{samples_per_second:.0f}/s"


class Table:
    """A fixed-column ASCII table with aligned rendering."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> "Table":
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells; table has {len(self.headers)} columns"
            )
        self.rows.append([str(c) for c in cells])
        return self

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def column(self, header: str) -> List[str]:
        """One column's cells (for programmatic assertions in tests)."""
        try:
            idx = self.headers.index(header)
        except ValueError:
            raise KeyError(header) from None
        return [row[idx] for row in self.rows]


@dataclass
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    description: str
    tables: List[Table]
    notes: List[str] = field(default_factory=list)
    numbers: Dict[str, float] = field(default_factory=dict)  # machine-readable headline values

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.description} =="]
        for table in self.tables:
            parts.append(table.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def to_markdown(self) -> str:
        parts = [f"## {self.experiment_id} — {self.description}", ""]
        for table in self.tables:
            parts.append(table.to_markdown())
            parts.append("")
        for note in self.notes:
            parts.append(f"> {note}")
        return "\n".join(parts)

    def to_json(self) -> Dict[str, object]:
        """Machine-readable form: headline numbers plus the raw tables."""
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "numbers": dict(self.numbers),
            "notes": list(self.notes),
            "tables": [
                {
                    "title": table.title,
                    "headers": list(table.headers),
                    "rows": [list(row) for row in table.rows],
                }
                for table in self.tables
            ],
        }


def write_json_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Persist an experiment's machine-readable record (``BENCH_*.json``).

    Regression gates read the ``numbers`` mapping back without parsing
    rendered tables.
    """
    target = Path(path)
    target.write_text(json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n")
    return target


class ExperimentRegistry:
    """Name → experiment-callable registry behind the CLI."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Callable[..., ExperimentResult]] = {}
        self._descriptions: Dict[str, str] = {}

    def register(self, experiment_id: str, description: str):
        def decorator(fn: Callable[..., ExperimentResult]):
            key = experiment_id.lower()
            if key in self._experiments:
                raise ValueError(f"duplicate experiment {experiment_id}")
            self._experiments[key] = fn
            self._descriptions[key] = description
            return fn

        return decorator

    def run(self, experiment_id: str, **kwargs) -> ExperimentResult:
        key = experiment_id.lower()
        if key not in self._experiments:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; available: {sorted(self._experiments)}"
            )
        return self._experiments[key](**kwargs)

    def available(self) -> Dict[str, str]:
        return dict(self._descriptions)
