"""Streaming workload adapters: fleet data as TSDB ingestion batches.

Bridges the dataset generator to the ingestion layer: sensor samples
become :class:`~repro.tsdb.tsd.DataPoint` batches under the paper's
schema — metric ``energy`` with ``unit`` and ``sensor`` tags ("The
simulated data generated for this project is stored into a metric
called 'energy' with tags for 'unit' and 'sensor'").

Three generators are provided:

* :func:`fleet_stream` — real generated values, for end-to-end runs
  where the data is read back (detection + dashboard examples);
* :func:`ingest_stream` — cheap synthetic values cycling the same
  series schema, for pure-throughput studies where generating
  megasamples of Gaussians would only burn benchmark wall-time;
* :func:`soak_stream` — long-horizon lifecycle soak: the fleet grows
  geometrically (100 → 10,000 units in the E18 configuration), values
  follow a diurnal cycle, ingest is periodically bursty, and sensors
  are added/removed mid-stream — the arrival pattern the rollup/
  retention tier must absorb.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..tsdb.tsd import DataPoint
from .generator import FleetGenerator, UnitData

__all__ = [
    "METRIC",
    "unit_tag",
    "sensor_tag",
    "fleet_stream",
    "ingest_stream",
    "unit_points",
    "soak_stream",
    "soak_units",
]

METRIC = "energy"


def unit_tag(unit_id: int) -> str:
    """The ``unit`` tag value for a unit id (zero-padded: sorts numerically)."""
    return f"unit{unit_id:03d}"


def sensor_tag(sensor_id: int) -> str:
    """The ``sensor`` tag value for a sensor index (zero-padded)."""
    return f"s{sensor_id:04d}"


def unit_points(unit: UnitData, stride: int = 1) -> Iterator[DataPoint]:
    """All samples of one unit window in time-major order.

    ``stride`` thins sensors (every ``stride``-th) for quick demos.
    """
    utag = ("unit", unit_tag(unit.unit_id))
    sensor_ids = range(0, unit.n_sensors, stride)
    stags = [(("sensor", sensor_tag(s)), utag) for s in sensor_ids]
    for row in range(unit.n_samples):
        t = unit.start_time + row
        values = unit.values[row]
        for tags, s in zip(stags, sensor_ids):
            yield DataPoint(METRIC, t, float(values[s]), tags)


def fleet_stream(
    generator: FleetGenerator,
    unit_ids: Optional[List[int]] = None,
    n_samples: int = 600,
    batch_size: int = 50,
    evaluation: bool = True,
    sensor_stride: int = 1,
) -> Iterator[List[DataPoint]]:
    """Batches of real generated samples, unit by unit."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    units = unit_ids if unit_ids is not None else list(generator.units())
    batch: List[DataPoint] = []
    for unit_id in units:
        window = (
            generator.evaluation_window(unit_id, n_samples)
            if evaluation
            else generator.training_window(unit_id, n_samples)
        )
        for point in unit_points(window, stride=sensor_stride):
            batch.append(point)
            if len(batch) >= batch_size:
                yield batch
                batch = []
    if batch:
        yield batch


def ingest_stream(
    n_units: int = 100,
    n_sensors: int = 1000,
    batch_size: int = 50,
    start_time: int = 0,
    values: str = "constant",
    seed: int = 0,
) -> Iterator[List[DataPoint]]:
    """Endless round-robin stream over the fleet's series schema.

    Cycles all ``n_units × n_sensors`` series at 1 Hz — every series
    emits one sample, then the timestamp advances — exactly the arrival
    pattern of a real fleet reporting once per second.  ``values`` is
    ``"constant"`` (cheapest) or ``"noise"`` (seeded Gaussians).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    tag_pairs = [
        (("sensor", sensor_tag(s)), ("unit", unit_tag(u)))
        for u in range(n_units)
        for s in range(n_sensors)
    ]
    rng = np.random.default_rng(seed)
    n_series = len(tag_pairs)
    t = start_time
    i = 0
    while True:
        batch: List[DataPoint] = []
        if values == "noise":
            vals = rng.standard_normal(batch_size)
        else:
            vals = None
        for j in range(batch_size):
            tags = tag_pairs[i % n_series]
            v = float(vals[j]) if vals is not None else 1.0
            batch.append(DataPoint(METRIC, t, v, tags))
            i += 1
            if i % n_series == 0:
                t += 1
        yield batch


def soak_units(elapsed: float, duration: float, start_units: int, end_units: int) -> int:
    """Active fleet size ``elapsed`` seconds into a geometric ramp.

    Interpolates ``start_units → end_units`` geometrically over
    ``duration`` — the fleet roughly doubles at fixed intervals, the way
    real deployments grow, so late soak phases dominate total volume.
    """
    if elapsed <= 0 or duration <= 0:
        return start_units
    if elapsed >= duration:
        return end_units
    ratio = end_units / start_units
    size = int(round(start_units * ratio ** (elapsed / duration)))
    return min(end_units, max(start_units, size))


def soak_stream(
    start_units: int = 100,
    end_units: int = 10_000,
    n_sensors: int = 2,
    duration: int = 43_200,
    cadence: int = 60,
    start_time: int = 0,
    batch_size: int = 2_000,
    churn_period: int = 3_600,
    burst_period: int = 1_800,
    burst_factor: int = 3,
    seed: int = 0,
) -> Iterator[List[DataPoint]]:
    """Lifecycle-soak arrival pattern: growth + diurnal + bursts + churn.

    One tick every ``cadence`` seconds for ``duration`` simulated
    seconds.  At each tick every active ``(unit, sensor)`` series emits
    one sample; the active fleet grows geometrically from
    ``start_units`` to ``end_units`` (:func:`soak_units`).  Values ride
    a diurnal sine (period 24 h) plus seeded Gaussian noise.  Every
    ``burst_period`` seconds a tick turns bursty — each series emits
    ``burst_factor`` samples at consecutive timestamps instead of one.
    Every ``churn_period`` seconds the per-unit sensor set rotates one
    slot through a pool of ``n_sensors + 2`` ids, so sensors appear and
    disappear mid-stream.

    Fully deterministic: noise is seeded per-tick from ``(seed, tick)``
    so results are independent of ``batch_size``.  No ``(series, ts)``
    pair is ever emitted twice (burst offsets stay within a tick), which
    keeps the lifecycle conservation accounting exact.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if start_units < 1 or end_units < start_units:
        raise ValueError("need 1 <= start_units <= end_units")
    if not 1 <= burst_factor <= cadence:
        raise ValueError("burst_factor must be in [1, cadence]")
    pool = n_sensors + 2
    n_ticks = duration // cadence
    batch: List[DataPoint] = []
    for tick in range(n_ticks):
        elapsed = tick * cadence
        t = start_time + elapsed
        units = soak_units(elapsed, duration, start_units, end_units)
        epoch = elapsed // churn_period
        sensor_ids = [(epoch + s) % pool for s in range(n_sensors)]
        stags = [("sensor", sensor_tag(s)) for s in sensor_ids]
        bursty = burst_period > 0 and tick > 0 and elapsed % burst_period == 0
        offsets = range(burst_factor if bursty else 1)
        rng = np.random.default_rng([seed, tick])
        noise = rng.standard_normal(len(offsets) * units * n_sensors)
        base = 100.0 + 25.0 * math.sin(2.0 * math.pi * (t % 86_400) / 86_400.0)
        i = 0
        for off in offsets:
            ts = t + off
            for u in range(units):
                utag = ("unit", unit_tag(u))
                for stag in stags:
                    batch.append(
                        DataPoint(METRIC, ts, base + float(noise[i]), (stag, utag))
                    )
                    i += 1
                    if len(batch) >= batch_size:
                        yield batch
                        batch = []
    if batch:
        yield batch
