"""Fault models for the synthetic evaluation dataset.

The paper (§II-A) models three primary fault categories:

* **pure random noise** — no fault, the control class;
* **gradual degradation** — a mean drift that grows linearly from the
  fault onset (bearing wear, fouling);
* **sharp shift** — a step change in the mean at onset (breakage,
  sudden blockage).

A fault affects a *correlated group* of sensors ("injected faults are
correlated across sensors"): each affected sensor sees the fault signal
scaled by a per-sensor loading weight.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = ["FaultKind", "FaultSpec", "fault_signal"]


class FaultKind(enum.Enum):
    """The paper's three §II-A categories."""

    NONE = "none"
    DRIFT = "drift"  # noise + gradual degradation signal
    SHIFT = "shift"  # noise + sharp shift

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault on one unit.

    Parameters
    ----------
    kind:
        DRIFT or SHIFT (a NONE spec is never instantiated; healthy
        units simply carry no specs).
    onset:
        Sample index (seconds at 1 Hz) at which the fault begins.
    magnitude:
        Fault severity in units of the sensor noise std.  For SHIFT it
        is the step height; for DRIFT the mean reached after
        ``ramp_seconds`` of degradation.
    ramp_seconds:
        DRIFT only: seconds over which the drift grows from 0 to
        ``magnitude`` (continues growing at the same rate after).
    sensor_weights:
        Mapping sensor index -> loading in (0, 1]; the fault signal on
        sensor ``j`` is ``magnitude * weight_j`` scaled by that
        sensor's noise std.
    """

    kind: FaultKind
    onset: int
    magnitude: float
    ramp_seconds: int = 300
    sensor_weights: Tuple[Tuple[int, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind is FaultKind.NONE:
            raise ValueError("FaultSpec is only for actual faults")
        if self.onset < 0:
            raise ValueError("onset must be non-negative")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")
        if self.kind is FaultKind.DRIFT and self.ramp_seconds < 1:
            raise ValueError("ramp_seconds must be >= 1 for drift faults")
        for sensor, weight in self.sensor_weights:
            if sensor < 0:
                raise ValueError("sensor indices must be non-negative")
            if not 0.0 < weight <= 1.0:
                raise ValueError("weights must be in (0, 1]")

    @property
    def sensors(self) -> Tuple[int, ...]:
        return tuple(s for s, _ in self.sensor_weights)

    def weights_dict(self) -> Dict[int, float]:
        return dict(self.sensor_weights)


def fault_signal(spec: FaultSpec, times: np.ndarray) -> np.ndarray:
    """Unit-amplitude fault waveform at the given sample times.

    Returns the *shape* (0 before onset; for SHIFT, 1 after onset; for
    DRIFT, a ramp reaching 1 at ``onset + ramp_seconds`` and continuing
    to grow).  Callers multiply by ``magnitude × weight × noise_std``.
    """
    t = np.asarray(times, dtype=np.float64)
    active = t >= spec.onset
    if spec.kind is FaultKind.SHIFT:
        return active.astype(np.float64)
    if spec.kind is FaultKind.DRIFT:
        return np.where(active, (t - spec.onset) / spec.ramp_seconds, 0.0)
    raise ValueError(f"unsupported fault kind {spec.kind}")  # pragma: no cover
