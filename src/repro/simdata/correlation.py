"""Cross-sensor correlation structure.

Physical sensor suites are correlated: a pressure excursion shows up in
temperatures downstream.  We model each unit's sensors with a low-rank
factor model — sensors load onto a small number of latent *physical
factors* (shaft speed, combustion temperature, ...) plus independent
noise::

    x_t = L f_t + ε_t,   f_t ~ N(0, I_k),   ε_t ~ N(0, diag(ψ))

which gives covariance ``Σ = L Lᵀ + diag(ψ)`` — dense correlation at
O(n·k) simulation cost, so a 1000-sensor unit stays cheap.

The factor structure also defines the *correlated sensor groups* that
faults propagate through (§II-A: "injected faults are correlated across
sensors"): a fault attacks one factor's sensor group with loadings
proportional to their factor weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["CorrelationModel"]


@dataclass
class CorrelationModel:
    """Low-rank factor model for one unit's sensor suite.

    Parameters
    ----------
    n_sensors:
        Number of sensors on the unit.
    n_factors:
        Number of latent physical factors.
    factor_strength:
        Fraction of each sensor's variance explained by its factor
        (0 = independent sensors, → 1 = perfectly correlated groups).
    """

    n_sensors: int
    n_factors: int = 10
    factor_strength: float = 0.5

    def __post_init__(self) -> None:
        if self.n_sensors < 1:
            raise ValueError("n_sensors must be >= 1")
        if not 1 <= self.n_factors <= self.n_sensors:
            raise ValueError("n_factors must be in [1, n_sensors]")
        if not 0.0 <= self.factor_strength < 1.0:
            raise ValueError("factor_strength must be in [0, 1)")

    # ------------------------------------------------------------------
    def build(self, rng: np.random.Generator) -> "_Realized":
        """Draw a concrete loading matrix (deterministic given the rng)."""
        # Each sensor belongs to exactly one factor group (round-robin
        # with shuffled membership), with a random positive loading.
        membership = rng.permutation(self.n_sensors) % self.n_factors
        raw = rng.uniform(0.5, 1.0, size=self.n_sensors)
        loadings = np.zeros((self.n_sensors, self.n_factors))
        loadings[np.arange(self.n_sensors), membership] = raw
        # Normalise so factor_strength of unit variance is factor-driven.
        scale = np.sqrt(self.factor_strength) / np.maximum(
            np.linalg.norm(loadings, axis=1), 1e-12
        )
        loadings *= scale[:, None]
        psi = 1.0 - np.sum(loadings**2, axis=1)  # residual variances
        return _Realized(self, loadings, psi, membership)


class _Realized:
    """A drawn factor model: can simulate noise and expose groups."""

    def __init__(
        self,
        model: CorrelationModel,
        loadings: np.ndarray,
        psi: np.ndarray,
        membership: np.ndarray,
    ) -> None:
        self.model = model
        self.loadings = loadings  # (p, k)
        self.psi = psi  # (p,) residual variances
        self.membership = membership  # (p,) factor index per sensor

    @property
    def n_sensors(self) -> int:
        return self.model.n_sensors

    @property
    def n_factors(self) -> int:
        return self.model.n_factors

    def covariance(self) -> np.ndarray:
        """Implied (unit-variance) sensor covariance ``L Lᵀ + diag(ψ)``."""
        return self.loadings @ self.loadings.T + np.diag(self.psi)

    def simulate(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``(n_samples, p)`` of correlated unit-variance noise."""
        factors = rng.standard_normal((n_samples, self.n_factors))
        eps = rng.standard_normal((n_samples, self.n_sensors)) * np.sqrt(self.psi)
        return factors @ self.loadings.T + eps

    def factor_group(self, factor: int) -> np.ndarray:
        """Sensor indices loading on ``factor`` (a correlated group)."""
        if not 0 <= factor < self.n_factors:
            raise ValueError("factor index out of range")
        return np.flatnonzero(self.membership == factor)

    def fault_weights(self, factor: int, rng: np.random.Generator,
                      min_sensors: int = 1) -> List[Tuple[int, float]]:
        """Loading weights for a fault attacking one factor's group.

        Weights are the sensors' relative factor loadings normalised to
        a max of 1, so strongly coupled sensors shift the most — the
        correlated fault signature the detector must exploit.
        """
        group = self.factor_group(factor)
        if len(group) < min_sensors:
            raise ValueError(f"factor {factor} has fewer than {min_sensors} sensors")
        raw = np.abs(self.loadings[group, factor])
        top = raw.max()
        if top <= 0:
            raise ValueError("degenerate factor loadings")  # pragma: no cover
        del rng  # reserved for future stochastic weight jitter
        return [(int(s), float(w / top)) for s, w in zip(group, raw)]
