"""Fleet generator: the paper's §II-A evaluation dataset.

"The training dataset contains 100 simulated units, each with 1000
sensors ... We modeled three primary categories of faults: pure random
noise for comparison, pure random noise plus gradual degradation
signal, pure random noise plus sharp shift.  Injected faults are
correlated across sensors."

Every unit is generated independently and deterministically from
``(seed, unit_id)``, so the full 100 × 1000 fleet never has to be in
memory at once — the paper's own system "can deal with one machine at
a time".
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .correlation import CorrelationModel
from .faults import FaultKind, FaultSpec, fault_signal

__all__ = ["FleetConfig", "UnitData", "FleetGenerator"]


@dataclass(frozen=True)
class FleetConfig:
    """Shape and statistics of the simulated fleet.

    Defaults are the paper's scale (100 units × 1000 sensors at 1 Hz);
    tests and examples pass smaller values.
    """

    n_units: int = 100
    n_sensors: int = 1000
    seed: int = 7
    # sensor statistics: per-sensor mean drawn U[lo, hi], std U[lo, hi]
    mean_range: Tuple[float, float] = (20.0, 480.0)
    std_range: Tuple[float, float] = (0.5, 5.0)
    # correlation structure
    n_factors: int = 10
    factor_strength: float = 0.5
    # fault mix over units: P(none), P(drift), P(shift)
    fault_mix: Tuple[float, float, float] = (0.4, 0.3, 0.3)
    # fault severity in noise-std units
    magnitude_range: Tuple[float, float] = (1.5, 4.0)
    drift_ramp_range: Tuple[int, int] = (200, 600)

    def __post_init__(self) -> None:
        if self.n_units < 1 or self.n_sensors < 1:
            raise ValueError("fleet must have at least one unit and one sensor")
        if abs(sum(self.fault_mix) - 1.0) > 1e-9:
            raise ValueError("fault_mix must sum to 1")
        if any(p < 0 for p in self.fault_mix):
            raise ValueError("fault_mix probabilities must be non-negative")
        if self.mean_range[0] > self.mean_range[1] or self.std_range[0] > self.std_range[1]:
            raise ValueError("ranges must be (lo, hi) with lo <= hi")
        if self.std_range[0] <= 0:
            raise ValueError("sensor stds must be positive")


@dataclass
class UnitData:
    """One generated window for one unit.

    ``values`` is ``(n_samples, n_sensors)``; ``truth`` marks
    sample×sensor cells where an injected fault signal is non-zero
    (ground truth for power/false-alarm measurements); ``faults`` lists
    the injected specs (empty for healthy windows).
    """

    unit_id: int
    start_time: int
    values: np.ndarray
    truth: np.ndarray
    faults: List[FaultSpec]
    means: np.ndarray
    stds: np.ndarray

    @property
    def n_samples(self) -> int:
        return self.values.shape[0]

    @property
    def n_sensors(self) -> int:
        return self.values.shape[1]


class FleetGenerator:
    """Deterministic generator for the simulated fleet."""

    def __init__(self, config: Optional[FleetConfig] = None, **overrides) -> None:
        if config is None:
            config = FleetConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config

    # ------------------------------------------------------------------
    # per-unit deterministic state
    # ------------------------------------------------------------------
    def _unit_rng(self, unit_id: int, stream: str) -> np.random.Generator:
        # crc32, not hash(): Python's str hash is salted per process and
        # would break cross-run reproducibility.
        return np.random.default_rng(
            (self.config.seed, unit_id, zlib.crc32(stream.encode("ascii")))
        )

    def unit_profile(self, unit_id: int):
        """Static truth about a unit: sensor stats, correlation, fault class."""
        cfg = self.config
        if not 0 <= unit_id < cfg.n_units:
            raise ValueError(f"unit_id must be in [0, {cfg.n_units})")
        rng = self._unit_rng(unit_id, "profile")
        means = rng.uniform(*cfg.mean_range, size=cfg.n_sensors)
        stds = rng.uniform(*cfg.std_range, size=cfg.n_sensors)
        corr = CorrelationModel(
            cfg.n_sensors, min(cfg.n_factors, cfg.n_sensors), cfg.factor_strength
        ).build(rng)
        kind = rng.choice(
            [FaultKind.NONE, FaultKind.DRIFT, FaultKind.SHIFT], p=list(cfg.fault_mix)
        )
        return means, stds, corr, kind

    def fault_for(self, unit_id: int, window_seconds: int) -> List[FaultSpec]:
        """The fault specs injected into a unit's evaluation window."""
        cfg = self.config
        means, stds, corr, kind = self.unit_profile(unit_id)
        del means, stds
        if kind is FaultKind.NONE:
            return []
        rng = self._unit_rng(unit_id, "fault")
        onset = int(rng.integers(window_seconds // 4, (3 * window_seconds) // 4))
        magnitude = float(rng.uniform(*cfg.magnitude_range))
        factor = int(rng.integers(corr.n_factors))
        weights = corr.fault_weights(factor, rng)
        ramp = int(rng.integers(cfg.drift_ramp_range[0], cfg.drift_ramp_range[1] + 1))
        return [
            FaultSpec(
                kind=kind,
                onset=onset,
                magnitude=magnitude,
                ramp_seconds=ramp,
                sensor_weights=tuple(weights),
            )
        ]

    # ------------------------------------------------------------------
    # window generation
    # ------------------------------------------------------------------
    def training_window(self, unit_id: int, n_samples: int = 600) -> UnitData:
        """Fault-free data for offline model estimation."""
        return self._window(unit_id, n_samples, start_time=0, with_faults=False, stream="train")

    def evaluation_window(
        self, unit_id: int, n_samples: int = 600, start_time: Optional[int] = None
    ) -> UnitData:
        """Held-out data with the unit's fault (if any) injected."""
        if start_time is None:
            start_time = n_samples  # evaluation follows training by convention
        return self._window(
            unit_id, n_samples, start_time=start_time, with_faults=True, stream="eval"
        )

    def _window(
        self, unit_id: int, n_samples: int, start_time: int, with_faults: bool, stream: str
    ) -> UnitData:
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        means, stds, corr, _kind = self.unit_profile(unit_id)
        rng = self._unit_rng(unit_id, stream)
        noise = corr.simulate(n_samples, rng)  # unit-variance correlated noise
        values = means + noise * stds
        truth = np.zeros((n_samples, self.config.n_sensors), dtype=bool)
        faults: List[FaultSpec] = []
        if with_faults:
            faults = self.fault_for(unit_id, n_samples)
            rel_times = np.arange(n_samples, dtype=np.int64)
            for spec in faults:
                shape = fault_signal(spec, rel_times)  # (n_samples,)
                for sensor, weight in spec.sensor_weights:
                    signal = spec.magnitude * weight * stds[sensor] * shape
                    values[:, sensor] += signal
                    truth[:, sensor] |= shape > 0
        return UnitData(
            unit_id=unit_id,
            start_time=start_time,
            values=values,
            truth=truth,
            faults=faults,
            means=means,
            stds=stds,
        )

    # ------------------------------------------------------------------
    # fleet-level iteration
    # ------------------------------------------------------------------
    def units(self) -> range:
        return range(self.config.n_units)

    def fault_census(self, window_seconds: int = 600) -> Dict[FaultKind, int]:
        """How many units fall in each fault class (deterministic)."""
        census: Dict[FaultKind, int] = {k: 0 for k in FaultKind}
        for unit_id in self.units():
            faults = self.fault_for(unit_id, window_seconds)
            census[faults[0].kind if faults else FaultKind.NONE] += 1
        return census
