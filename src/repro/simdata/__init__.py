"""Synthetic evaluation dataset (§II-A of the paper).

100 simulated units × 1000 sensors with three fault classes (pure
noise / gradual degradation / sharp shift), cross-sensor correlation
via a low-rank factor model, and streaming adapters that feed the
ingestion layer.
"""

from .correlation import CorrelationModel
from .faults import FaultKind, FaultSpec, fault_signal
from .generator import FleetConfig, FleetGenerator, UnitData
from .workload import (
    METRIC,
    fleet_stream,
    ingest_stream,
    sensor_tag,
    unit_points,
    unit_tag,
)

__all__ = [
    "CorrelationModel",
    "FaultKind",
    "FaultSpec",
    "FleetConfig",
    "FleetGenerator",
    "METRIC",
    "UnitData",
    "fault_signal",
    "fleet_stream",
    "ingest_stream",
    "sensor_tag",
    "unit_points",
    "unit_tag",
]
