"""Alert history persisted into the TSDB itself, as ``alert.*`` series.

The paper's platform stores *everything* queryable in OpenTSDB —
sensor data, anomalies, even the platform's own self-telemetry.  The
alerting tier follows suit: every incident open and resolve becomes a
data point, written through the same ack-tracked, backpressured
:class:`~repro.tsdb.publish.BatchPublisher` ingress as everything else
(channel ``publish.alerts``, so delivery stays separately accounted
and the conservation invariant covers alerts too).

Series schema::

    alert.incident  @ opened_at   value = peak |z| severity score
                    tags: scope=unit|fleet, severity=info|warning|critical,
                          unit=unitNNN (or "fleet")
    alert.resolve   @ resolved_at value = incident duration (seconds)
                    tags: same

Both are ordinary series: queryable through the
:class:`~repro.serve.gateway.QueryGateway`, visible on the dashboard's
incident panel, and aggregatable like any other metric.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.metrics import MetricsRegistry
from ..tsdb.ingest import TsdbCluster
from ..tsdb.publish import BatchPublisher, PublishReport
from ..tsdb.tsd import DataPoint
from .events import AlertingConfig, Incident

__all__ = ["ALERT_INCIDENT_METRIC", "ALERT_RESOLVE_METRIC", "AlertStore", "alert_unit_tag"]

ALERT_INCIDENT_METRIC = "alert.incident"
ALERT_RESOLVE_METRIC = "alert.resolve"


def alert_unit_tag(incident: Incident) -> str:
    """The ``unit`` tag value for an incident (fleet scope is literal)."""
    if incident.scope == "fleet":
        return "fleet"
    return f"unit{incident.unit_id:03d}"


class AlertStore:
    """Writes incident lifecycle transitions into the TSDB.

    Parameters
    ----------
    cluster:
        The deployment to persist into.
    metrics:
        Registry for the publisher's ``publish.alerts.*`` counters.
    batch_size:
        Points per put batch; alerts are low-volume, so the default is
        small to keep persistence latency low.
    use_proxy_path:
        Route through the buffering reverse proxy (the default), or
        ``direct_put`` for storage-less unit tests.
    """

    def __init__(
        self,
        cluster: TsdbCluster,
        *,
        metrics: Optional[MetricsRegistry] = None,
        batch_size: int = 25,
        use_proxy_path: bool = True,
    ) -> None:
        self.cluster = cluster
        self.publisher = BatchPublisher(
            cluster,
            batch_size=batch_size,
            use_proxy_path=use_proxy_path,
            metrics=metrics,
            channel="publish.alerts",
        )
        self.records_written = 0

    # ------------------------------------------------------------------
    def record_incident(self, incident: Incident, config: AlertingConfig) -> None:
        """Persist an incident open as one ``alert.incident`` point."""
        self.publisher.publish([self._point(ALERT_INCIDENT_METRIC, incident, config,
                                            incident.opened_at,
                                            incident.severity_score)])
        self.records_written += 1

    def record_resolve(self, incident: Incident, config: AlertingConfig) -> None:
        """Persist a resolve as one ``alert.resolve`` point (value = duration)."""
        assert incident.resolved_at is not None
        self.publisher.publish([self._point(ALERT_RESOLVE_METRIC, incident, config,
                                            incident.resolved_at,
                                            float(incident.duration))])
        self.records_written += 1

    def flush(self) -> PublishReport:
        """Drain pending alert writes; enforces delivery conservation."""
        return self.publisher.flush()

    # ------------------------------------------------------------------
    def _point(
        self,
        metric: str,
        incident: Incident,
        config: AlertingConfig,
        timestamp: int,
        value: float,
    ) -> DataPoint:
        return DataPoint(
            metric,
            timestamp,
            value,
            (
                ("scope", incident.scope),
                ("severity", incident.severity(config)),
                ("unit", alert_unit_tag(incident)),
            ),
        )
