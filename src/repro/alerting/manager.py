"""The smart-alerting core: dedup, hysteresis, flap suppression, roll-up.

:class:`AlertManager` consumes per-interval batches of
:class:`~repro.alerting.events.AnomalyEvent` and maintains one
lifecycle tracker per unit plus a fleet-scope roll-up.  Everything an
operator would page on funnels through here — ``repro-lint``'s
``unsuppressed-alert-emit`` rule forbids any other module from minting
``alert.*`` series or incidents directly.

Design decisions, in alerting-literature terms:

* **Dedup / correlation window** — all events for one unit inside one
  interval, and all intervals while an incident stays open, fold into a
  single :class:`Incident` (``absorb``).  The incident remembers the
  distinct sensor set and peak score, so nothing operator-relevant is
  lost by the folding.
* **Hysteresis** — ``open_after`` consecutive anomalous intervals to
  open, ``close_after`` consecutive clean intervals to resolve.  The
  opening gate discards one-interval transients entirely (counted, not
  paged).
* **Flap suppression** — a unit that re-opens within ``flap_window``
  of resolving is flapping; after ``max_flaps`` such cycles the unit is
  SUPPRESSED: still tracked, still counted, but emitting no operator
  transitions until it holds quiet for a full ``flap_window``.
* **Hierarchical roll-up** — when ``fleet_threshold`` units are OPEN
  simultaneously, one fleet-scope incident replaces the individual
  pages conceptually (unit incidents stay queryable; the fleet incident
  is the operator entry point for a common-cause event).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..cluster.metrics import MetricsRegistry
from ..obs.telemetry import component_registry
from .events import AlertingConfig, AnomalyEvent, Incident, IncidentState
from .store import AlertStore

__all__ = ["AlertManager"]

FLEET_UNIT_ID = -1


@dataclass
class _ScopeTracker:
    """Per-unit lifecycle state (the state machine's mutable half)."""

    state: IncidentState = IncidentState.CLEAR
    pending_intervals: int = 0
    clean_intervals: int = 0
    flaps: int = 0
    last_resolved_at: Optional[int] = None
    last_anomalous_at: Optional[int] = None
    first_event_at: Optional[int] = None
    pending_events: List[AnomalyEvent] = field(default_factory=list)
    incident: Optional[Incident] = None


class AlertManager:
    """Turns anomaly events into deduplicated, suppressed incidents.

    Call :meth:`observe` once per stream interval with every event the
    detection tier flagged in that interval (an empty list is a *clean*
    interval and drives the closing hysteresis).  Newly opened
    incidents are returned and, when a ``store`` is attached, written
    into the TSDB as ``alert.*`` series.
    """

    def __init__(
        self,
        config: Optional[AlertingConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        store: Optional[AlertStore] = None,
    ) -> None:
        self.config = config if config is not None else AlertingConfig()
        self.metrics = metrics if metrics is not None else component_registry("alerting")
        self.store = store
        #: Full incident history, unit and fleet scopes interleaved in
        #: open order (the alert-history ledger; resolved stay listed).
        self.incidents: List[Incident] = []
        self.events_total = 0
        self.events_deduped = 0
        self.transients_discarded = 0
        self.events_suppressed = 0
        self._trackers: Dict[int, _ScopeTracker] = {}
        self._fleet_incident: Optional[Incident] = None
        self._fleet_clean_intervals = 0
        self._next_id = 0

    # ------------------------------------------------------------------
    # the per-interval entry point
    # ------------------------------------------------------------------
    def observe(
        self, timestamp: int, events: Sequence[AnomalyEvent]
    ) -> List[Incident]:
        """Fold one interval's events in; returns incidents opened now.

        ``timestamp`` is the interval's end time in stream seconds and
        must be non-decreasing across calls.
        """
        by_unit: Dict[int, List[AnomalyEvent]] = {}
        for event in events:
            by_unit.setdefault(event.unit_id, []).append(event)
        self.events_total += len(events)
        self.metrics.counter("alerting.events").inc(len(events))

        opened: List[Incident] = []
        for unit_id in set(self._trackers) | set(by_unit):
            tracker = self._trackers.setdefault(unit_id, _ScopeTracker())
            incident = self._step_unit(
                unit_id, tracker, timestamp, by_unit.get(unit_id, [])
            )
            if incident is not None:
                opened.append(incident)
        fleet = self._step_fleet(timestamp)
        if fleet is not None:
            opened.append(fleet)
        self.metrics.gauge("alerting.open_incidents").set(
            float(len(self.open_incidents()))
        )
        return opened

    # ------------------------------------------------------------------
    # unit-scope state machine
    # ------------------------------------------------------------------
    def _step_unit(
        self,
        unit_id: int,
        tracker: _ScopeTracker,
        timestamp: int,
        events: List[AnomalyEvent],
    ) -> Optional[Incident]:
        anomalous = bool(events)
        if anomalous:
            tracker.last_anomalous_at = timestamp
        state = tracker.state

        if state is IncidentState.SUPPRESSED:
            if anomalous:
                self.events_suppressed += len(events)
                self.metrics.counter("alerting.suppressed_events").inc(len(events))
            elif (
                tracker.last_anomalous_at is None
                or timestamp - tracker.last_anomalous_at >= self.config.flap_window
            ):
                # Held quiet for a full flap window: forgiven.
                tracker.state = IncidentState.CLEAR
                tracker.flaps = 0
            return None

        if state in (IncidentState.CLEAR, IncidentState.RESOLVED):
            if not anomalous:
                if (
                    tracker.last_resolved_at is not None
                    and timestamp - tracker.last_resolved_at >= self.config.flap_window
                ):
                    tracker.flaps = 0  # flap memory decays once stable
                return None
            tracker.state = IncidentState.PENDING
            tracker.pending_intervals = 1
            tracker.first_event_at = min(e.timestamp for e in events)
            tracker.pending_events = list(events)
            if tracker.pending_intervals >= self.config.open_after:
                return self._open_unit(unit_id, tracker, timestamp)
            return None

        if state is IncidentState.PENDING:
            if not anomalous:
                # A transient: evaporates without ever paging.
                self.transients_discarded += len(tracker.pending_events)
                self.metrics.counter("alerting.transients").inc(
                    len(tracker.pending_events)
                )
                tracker.state = IncidentState.CLEAR
                tracker.pending_intervals = 0
                tracker.pending_events = []
                tracker.first_event_at = None
                return None
            tracker.pending_intervals += 1
            tracker.pending_events.extend(events)
            if tracker.pending_intervals >= self.config.open_after:
                return self._open_unit(unit_id, tracker, timestamp)
            return None

        # state is OPEN
        incident = tracker.incident
        assert incident is not None
        if anomalous:
            tracker.clean_intervals = 0
            for event in events:
                incident.absorb(event)
            self.events_deduped += len(events)
            self.metrics.counter("alerting.deduped").inc(len(events))
            return None
        tracker.clean_intervals += 1
        if tracker.clean_intervals >= self.config.close_after:
            self._resolve(incident, timestamp)
            tracker.state = IncidentState.RESOLVED
            tracker.incident = None
            tracker.clean_intervals = 0
            tracker.last_resolved_at = timestamp
        return None

    def _open_unit(
        self, unit_id: int, tracker: _ScopeTracker, timestamp: int
    ) -> Optional[Incident]:
        first_event_at = tracker.first_event_at
        assert first_event_at is not None
        flapping = (
            tracker.last_resolved_at is not None
            and first_event_at - tracker.last_resolved_at < self.config.flap_window
        )
        if flapping:
            tracker.flaps += 1
            self.metrics.counter("alerting.flaps").inc()
            if tracker.flaps >= self.config.max_flaps:
                # Into the penalty box: no incident, no page.
                tracker.state = IncidentState.SUPPRESSED
                self.events_suppressed += len(tracker.pending_events)
                self.metrics.counter("alerting.suppressed").inc()
                self.metrics.counter("alerting.suppressed_events").inc(
                    len(tracker.pending_events)
                )
                tracker.pending_events = []
                tracker.pending_intervals = 0
                return None
        incident = Incident(
            incident_id=self._take_id(),
            scope="unit",
            unit_id=unit_id,
            opened_at=timestamp,
            first_event_at=first_event_at,
            flaps=tracker.flaps,
        )
        for event in tracker.pending_events:
            incident.absorb(event)
        # The first event is the alert; the rest were deduplicated.
        self.events_deduped += max(0, len(tracker.pending_events) - 1)
        self.metrics.counter("alerting.deduped").inc(
            max(0, len(tracker.pending_events) - 1)
        )
        tracker.pending_events = []
        tracker.pending_intervals = 0
        tracker.clean_intervals = 0
        tracker.state = IncidentState.OPEN
        tracker.incident = incident
        self._record_open(incident, timestamp)
        return incident

    # ------------------------------------------------------------------
    # fleet-scope roll-up
    # ------------------------------------------------------------------
    def _step_fleet(self, timestamp: int) -> Optional[Incident]:
        open_units = {
            unit_id
            for unit_id, tracker in self._trackers.items()
            if tracker.state is IncidentState.OPEN
        }
        incident = self._fleet_incident
        if incident is None:
            if len(open_units) < self.config.fleet_threshold:
                return None
            members = self._member_incidents(open_units)
            incident = Incident(
                incident_id=self._take_id(),
                scope="fleet",
                unit_id=FLEET_UNIT_ID,
                opened_at=timestamp,
                first_event_at=min(m.first_event_at for m in members),
                severity_score=max(m.severity_score for m in members),
                member_units=set(open_units),
            )
            self._fleet_incident = incident
            self._fleet_clean_intervals = 0
            self.metrics.counter("alerting.fleet_opened").inc()
            self._record_open(incident, timestamp)
            return incident
        if len(open_units) >= self.config.fleet_threshold:
            self._fleet_clean_intervals = 0
            incident.member_units |= open_units
            for member in self._member_incidents(open_units):
                if member.severity_score > incident.severity_score:
                    incident.severity_score = member.severity_score
            return None
        self._fleet_clean_intervals += 1
        if self._fleet_clean_intervals >= self.config.close_after:
            self._resolve(incident, timestamp)
            self.metrics.counter("alerting.fleet_resolved").inc()
            self._fleet_incident = None
            self._fleet_clean_intervals = 0
        return None

    def _member_incidents(self, open_units: Set[int]) -> List[Incident]:
        out = []
        for unit_id in open_units:
            incident = self._trackers[unit_id].incident
            if incident is not None:
                out.append(incident)
        return out

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _record_open(self, incident: Incident, timestamp: int) -> None:
        self.incidents.append(incident)
        self.metrics.counter("alerting.opened").inc()
        self.metrics.histogram("alerting.detection_delay").observe(
            float(timestamp - incident.first_event_at)
        )
        if self.store is not None:
            self.store.record_incident(incident, self.config)

    def _resolve(self, incident: Incident, timestamp: int) -> None:
        incident.resolved_at = timestamp
        self.metrics.counter("alerting.resolved").inc()
        if self.store is not None:
            self.store.record_resolve(incident, self.config)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def open_incidents(self) -> List[Incident]:
        """Incidents (unit and fleet) currently open, in open order."""
        return [i for i in self.incidents if i.open]

    def incidents_for_unit(self, unit_id: int) -> List[Incident]:
        """A unit's incident history (unit scope only), in open order."""
        return [
            i for i in self.incidents if i.scope == "unit" and i.unit_id == unit_id
        ]

    def state_of(self, unit_id: int) -> IncidentState:
        tracker = self._trackers.get(unit_id)
        return tracker.state if tracker is not None else IncidentState.CLEAR

    @property
    def incidents_opened(self) -> int:
        return len(self.incidents)

    def volume_reduction(self) -> float:
        """Raw anomaly events per emitted incident (the smart-alerting
        headline number; ``inf`` when events arrived but nothing ever
        had to page)."""
        if not self.incidents:
            return float("inf") if self.events_total else 1.0
        return self.events_total / len(self.incidents)
