"""Smart alerting: anomaly points → deduplicated fleet incidents.

The operator-facing tier on top of streaming detection.  Raw
per-sensor discoveries are folded into :class:`Incident` objects —
deduplicated across sensors and intervals, severity-scored,
hysteresis-gated against transients, flap-suppressed, and rolled up
sensor → unit → fleet — then persisted into the TSDB as ``alert.*``
series so incidents are queryable like any other metric.

Entry points:

* :class:`AlertManager` — the dedup/suppression/roll-up state machine
  (feed it per-interval :class:`AnomalyEvent` batches);
* :class:`StreamingDetector` — the full continuous path: micro-batch
  DStream → online evaluation with hot-swapped models → alerting →
  ack-tracked publishing;
* :class:`AlertStore` — the ``alert.incident`` / ``alert.resolve``
  write-back channel.

All alert emission routes through this package — ``repro-lint``'s
``unsuppressed-alert-emit`` rule rejects ``alert.*`` writes or
incident construction anywhere else in ``repro``.
"""

from .events import AlertingConfig, AnomalyEvent, Incident, IncidentState, severity_for
from .manager import AlertManager
from .store import ALERT_INCIDENT_METRIC, ALERT_RESOLVE_METRIC, AlertStore, alert_unit_tag
from .stream import StreamingDetectionReport, StreamingDetector, fleet_microbatches

__all__ = [
    "ALERT_INCIDENT_METRIC",
    "ALERT_RESOLVE_METRIC",
    "AlertManager",
    "AlertStore",
    "AlertingConfig",
    "AnomalyEvent",
    "Incident",
    "IncidentState",
    "StreamingDetectionReport",
    "StreamingDetector",
    "alert_unit_tag",
    "fleet_microbatches",
    "severity_for",
]
