"""Alerting domain objects: events, incidents, lifecycle, severity.

The detection tier produces *anomaly points* — one flagged
``(time, unit, sensor)`` cell per discovery.  At fleet scale that is
the wrong operator currency: a single correlated fault lights up dozens
of sensors for hundreds of intervals, and naive per-sensor firing turns
one physical problem into thousands of pages.  The alerting tier (per
DeCorus and the smart-alerting literature in PAPERS.md) folds anomaly
events into **incidents**: deduplicated per unit, severity-scored,
hysteresis-gated, flap-suppressed, and rolled up sensor → unit → fleet.

The incident lifecycle is a small explicit state machine::

    CLEAR ──anomalous──▶ PENDING ──open_after──▶ OPEN
      ▲                     │                      │
      └────────clean────────┘        clean × close_after
      ▲                                            │
      └──────────────── RESOLVED ◀─────────────────┘

    OPEN/RESOLVED ──rapid re-open × max_flaps──▶ SUPPRESSED
    SUPPRESSED ──flap_window quiet──▶ CLEAR

``PENDING`` is the opening hysteresis (one noisy interval never pages);
``close_after`` is the closing hysteresis (one quiet interval never
closes a real fault); ``SUPPRESSED`` absorbs flapping units — they keep
being tracked, but stop emitting operator-facing transitions until they
hold quiet for a full ``flap_window``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Set

__all__ = [
    "AlertingConfig",
    "AnomalyEvent",
    "Incident",
    "IncidentState",
    "severity_for",
]


class IncidentState(enum.Enum):
    """Lifecycle states of a tracked scope (unit or fleet)."""

    CLEAR = "clear"
    PENDING = "pending"
    OPEN = "open"
    SUPPRESSED = "suppressed"
    RESOLVED = "resolved"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AnomalyEvent:
    """One flagged detection cell entering the alerting tier.

    ``score`` is the standardised (windowed z) magnitude at the flagged
    instant — the severity currency.  ``timestamp`` is stream time
    (seconds at 1 Hz), not wall clock, so detection latency is
    measured in the same units faults are injected in.
    """

    unit_id: int
    sensor_id: int
    timestamp: int
    score: float


@dataclass(frozen=True)
class AlertingConfig:
    """Knobs of the dedup/suppression/roll-up layer.

    Parameters
    ----------
    open_after:
        Consecutive anomalous intervals before a PENDING scope opens
        (opening hysteresis; 1 disables it).
    close_after:
        Consecutive clean intervals before an OPEN scope resolves
        (closing hysteresis).
    flap_window:
        Seconds after a resolve within which a re-open counts as a
        flap.  Also the quiet period a SUPPRESSED scope must hold
        before returning to CLEAR.
    max_flaps:
        Flaps tolerated before the scope is SUPPRESSED.
    fleet_threshold:
        Simultaneously OPEN units that escalate to one fleet-scope
        incident (the hierarchical roll-up).
    warning_z / critical_z:
        Peak |z| thresholds mapping an incident's score to a severity
        label (below ``warning_z`` is "info").
    """

    open_after: int = 2
    close_after: int = 3
    flap_window: int = 60
    max_flaps: int = 3
    fleet_threshold: int = 3
    warning_z: float = 4.0
    critical_z: float = 8.0

    def __post_init__(self) -> None:
        if self.open_after < 1:
            raise ValueError("open_after must be >= 1")
        if self.close_after < 1:
            raise ValueError("close_after must be >= 1")
        if self.flap_window < 1:
            raise ValueError("flap_window must be >= 1")
        if self.max_flaps < 1:
            raise ValueError("max_flaps must be >= 1")
        if self.fleet_threshold < 2:
            raise ValueError("fleet_threshold must be >= 2")
        if not 0 < self.warning_z <= self.critical_z:
            raise ValueError("need 0 < warning_z <= critical_z")


def severity_for(score: float, config: AlertingConfig) -> str:
    """Map a peak |z| score to an operator-facing severity label."""
    if score >= config.critical_z:
        return "critical"
    if score >= config.warning_z:
        return "warning"
    return "info"


@dataclass
class Incident:
    """One deduplicated operator-facing incident.

    ``scope`` is ``"unit"`` or ``"fleet"``; fleet incidents carry
    ``unit_id = -1`` and track the member units instead of sensors.
    ``first_event_at`` is the earliest contributing event (before the
    opening hysteresis cleared), so detection latency measures from the
    first evidence, not from when the hysteresis let it page.
    """

    incident_id: int
    scope: str
    unit_id: int
    opened_at: int
    first_event_at: int
    severity_score: float = 0.0
    sensors: Set[int] = field(default_factory=set)
    member_units: Set[int] = field(default_factory=set)
    events: int = 0
    flaps: int = 0
    resolved_at: Optional[int] = None

    def absorb(self, event: AnomalyEvent) -> None:
        """Fold one more anomaly event into this incident (the dedup)."""
        self.events += 1
        self.sensors.add(event.sensor_id)
        score = abs(event.score)
        if score > self.severity_score:
            self.severity_score = score

    def severity(self, config: AlertingConfig) -> str:
        return severity_for(self.severity_score, config)

    @property
    def open(self) -> bool:
        return self.resolved_at is None

    @property
    def duration(self) -> int:
        """Seconds open (0 while still open)."""
        return 0 if self.resolved_at is None else self.resolved_at - self.opened_at


def latest_open(incidents: List[Incident]) -> Optional[Incident]:
    """The most recent still-open incident in a history list, if any."""
    for incident in reversed(incidents):
        if incident.open:
            return incident
    return None
