"""The continuous path: micro-batch stream → detection → incidents.

This is the closed loop the paper's §VI names as ongoing work, built
from pieces that already exist separately:

* a :class:`~repro.sparklet.streaming.DStream` of ``(unit_id,
  start_time, values)`` micro-batch records drives the intervals;
* :class:`~repro.core.streaming.StreamingTrainer` folds each batch
  into per-unit moments and periodically refreshes models, which are
  **hot-swapped** into per-unit
  :class:`~repro.core.online.OnlineEvaluator` fast paths via
  ``on_model`` — scoring never pauses for training;
* raw samples are published as columnar
  :class:`~repro.tsdb.blocks.SeriesBlock` batches and flagged
  anomalies as ``anomaly`` points, both through ack-tracked
  :class:`~repro.tsdb.publish.BatchPublisher` channels;
* flagged cells become :class:`~repro.alerting.events.AnomalyEvent`
  feeding the :class:`~repro.alerting.manager.AlertManager`, whose
  incidents land back in the TSDB as ``alert.*`` series.

Training reads only rows the current model did *not* flag, so an
active fault does not poison the very statistics used to detect it
(before a unit has any model, everything trains — the cold-start data
is the stream's own early history).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.fdr import FDRDetectorConfig
from ..core.model import UnitModel
from ..core.pipeline import ANOMALY_METRIC
from ..core.online import OnlineEvaluator
from ..core.streaming import StreamingTrainer
from ..obs.telemetry import Telemetry
from ..simdata.generator import FleetGenerator
from ..simdata.workload import METRIC, sensor_tag, unit_tag
from ..sparklet.context import SparkletContext
from ..sparklet.rdd import RDD
from ..sparklet.streaming import DStream, StreamingContext
from ..tsdb.blocks import BlockBatch, SeriesBlock
from ..tsdb.ingest import TsdbCluster
from ..tsdb.publish import BatchPublisher, PublishReport
from ..tsdb.tsd import DataPoint
from .events import AlertingConfig, AnomalyEvent, Incident
from .manager import AlertManager
from .store import AlertStore

__all__ = ["StreamingDetector", "StreamingDetectionReport", "fleet_microbatches"]

#: One stream record: (unit_id, start_time, values (T, p)).
StreamRecord = Tuple[int, int, np.ndarray]


def fleet_microbatches(
    generator: FleetGenerator,
    unit_ids: Optional[Sequence[int]] = None,
    *,
    n_train: int = 300,
    n_eval: int = 300,
    interval: int = 25,
) -> Iterator[List[StreamRecord]]:
    """The fleet as a deterministic micro-batch stream.

    Each interval yields one record per unit covering ``interval``
    rows; the first ``n_train`` rows are the fault-free training
    window, followed seamlessly by the evaluation window (faults
    injected at their per-unit onsets) — exactly the arrival order a
    live fleet would produce.
    """
    if interval < 1:
        raise ValueError("interval must be >= 1")
    units = list(unit_ids) if unit_ids is not None else list(generator.units())
    windows = {
        u: np.vstack(
            [
                generator.training_window(u, n_train).values,
                generator.evaluation_window(u, n_eval, start_time=n_train).values,
            ]
        )
        for u in units
    }
    total = n_train + n_eval
    for start in range(0, total, interval):
        stop = min(start + interval, total)
        yield [(u, start, windows[u][start:stop]) for u in units]


@dataclass
class StreamingDetectionReport:
    """Everything one streaming run produced (returned by ``finalize``)."""

    intervals: int = 0
    samples_streamed: int = 0
    samples_scored: int = 0
    naive_alerts: int = 0
    incidents: List[Incident] = field(default_factory=list)
    model_swaps: int = 0
    quarantines: int = 0
    wall_seconds: float = 0.0
    data_publish: Optional[PublishReport] = None
    anomaly_publish: Optional[PublishReport] = None
    alert_publish: Optional[PublishReport] = None

    @property
    def incidents_opened(self) -> int:
        return len(self.incidents)

    @property
    def volume_reduction(self) -> float:
        """Naive per-sensor firings per emitted incident."""
        if not self.incidents:
            return float("inf") if self.naive_alerts else 1.0
        return self.naive_alerts / len(self.incidents)

    @property
    def samples_per_second(self) -> float:
        """End-to-end sustained ingest rate (stream → incident), wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.samples_streamed / self.wall_seconds

    def unit_incidents(self, unit_id: int) -> List[Incident]:
        return [
            i for i in self.incidents if i.scope == "unit" and i.unit_id == unit_id
        ]

    def detection_latencies(self, onsets: Dict[int, int]) -> Dict[int, int]:
        """Stream-time latency from fault onset to incident open.

        ``onsets`` maps unit id → absolute onset time.  A unit with no
        incident opened at/after its onset is *missed* and omitted —
        callers compare the result's keys against ``onsets`` to count
        misses.
        """
        out: Dict[int, int] = {}
        for unit_id, onset in onsets.items():
            opened = [
                i.opened_at
                for i in self.unit_incidents(unit_id)
                if i.opened_at >= onset
            ]
            if opened:
                out[unit_id] = min(opened) - onset
        return out


class StreamingDetector:
    """Continuous detection + alerting over a micro-batch stream.

    Parameters
    ----------
    n_sensors:
        Per-unit sensor count (the fleet schema).
    cluster:
        Deployment to publish data/anomalies/alerts into (optional —
        without it the run is storage-less: detection and alerting
        only).
    config:
        Detector configuration shared by trainer and evaluators.
    alerting:
        Alerting-layer knobs (hysteresis, suppression, roll-up).
    refresh_every / min_samples:
        :class:`StreamingTrainer` cadence.
    telemetry:
        Shared telemetry; counters land under the ``alerting`` tree
        (``alerting.model_swaps``, ``alerting.quarantines``, …) next to
        the manager's own counters.
    publish:
        Write data + anomalies + alerts back to the cluster.
    publish_batch_size:
        Points per put batch on each publisher channel.
    """

    def __init__(
        self,
        n_sensors: int,
        cluster: Optional[TsdbCluster] = None,
        *,
        config: Optional[FDRDetectorConfig] = None,
        alerting: Optional[AlertingConfig] = None,
        refresh_every: int = 3,
        min_samples: int = 50,
        telemetry: Optional[Telemetry] = None,
        publish: bool = True,
        publish_batch_size: int = 400,
    ) -> None:
        self.n_sensors = n_sensors
        self.cluster = cluster
        self.config = config if config is not None else FDRDetectorConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.metrics = self.telemetry.registry("alerting")
        store = None
        self._data_pub: Optional[BatchPublisher] = None
        self._anomaly_pub: Optional[BatchPublisher] = None
        if cluster is not None and publish:
            store = AlertStore(cluster, metrics=self.metrics)
            self._data_pub = BatchPublisher(
                cluster,
                batch_size=publish_batch_size,
                metrics=self.metrics,
                channel="publish.data",
            )
            self._anomaly_pub = BatchPublisher(
                cluster,
                batch_size=publish_batch_size,
                metrics=self.metrics,
                channel="publish.anomaly",
            )
        self.manager = AlertManager(alerting, metrics=self.metrics, store=store)
        self.trainer = StreamingTrainer(
            n_sensors,
            config=self.config,
            refresh_every=refresh_every,
            min_samples=min_samples,
            on_model=self._swap_model,
            on_quarantine=self._on_quarantine,
        )
        self._evaluators: Dict[int, OnlineEvaluator] = {}
        self.report = StreamingDetectionReport()
        self._clock = 0  # stream time at the end of the last interval
        self._finalized = False

    # ------------------------------------------------------------------
    # model hot-swap (StreamingTrainer.on_model)
    # ------------------------------------------------------------------
    def _swap_model(self, model: UnitModel) -> None:
        self._evaluators[model.unit_id] = OnlineEvaluator(model, self.config)
        self.report.model_swaps += 1
        self.metrics.counter("alerting.model_swaps").inc()

    def _on_quarantine(self, unit_id: int) -> None:
        self.report.quarantines += 1
        self.metrics.counter("alerting.quarantines").inc()

    # ------------------------------------------------------------------
    # stream wiring
    # ------------------------------------------------------------------
    def attach(self, stream: DStream) -> None:
        """Register this detector as an output on a record stream."""
        stream.foreach_rdd(self._on_interval)

    def _on_interval(self, _time_index: int, rdd: RDD) -> None:
        t0 = time.perf_counter()
        records: List[StreamRecord] = rdd.collect()
        events: List[AnomalyEvent] = []
        blocks: List[SeriesBlock] = []
        anomaly_points: List[DataPoint] = []
        for unit_id, start_time, values in records:
            x = np.asarray(values, dtype=np.float64)
            if x.ndim != 2 or x.shape[0] == 0:
                continue
            self.report.samples_streamed += x.size
            self._clock = max(self._clock, start_time + x.shape[0])
            if self._data_pub is not None:
                self._collect_blocks(unit_id, start_time, x, blocks)
            evaluator = self._evaluators.get(unit_id)
            if evaluator is None:
                # Cold start: everything trains until the first model.
                self.trainer.ingest(unit_id, x)
                continue
            flags, unit_alarm, z = evaluator.evaluate_scored(x)
            self.report.samples_scored += x.size
            rows, cols = np.nonzero(flags)
            self.report.naive_alerts += rows.size
            utag = ("unit", unit_tag(unit_id))
            for row, sensor in zip(rows.tolist(), cols.tolist()):
                score = float(z[row, sensor])
                t = start_time + row
                events.append(AnomalyEvent(unit_id, sensor, t, score))
                anomaly_points.append(
                    DataPoint(
                        ANOMALY_METRIC,
                        t,
                        score,
                        (("sensor", sensor_tag(sensor)), utag),
                    )
                )
            # Train on what the current model considers clean, so an
            # in-progress fault does not drag the baseline toward it.
            clean = ~flags.any(axis=1)
            self.trainer.ingest(unit_id, x[clean] if not clean.all() else x)
        if self._data_pub is not None and blocks:
            self._data_pub.publish_blocks(BlockBatch(blocks))
        if self._anomaly_pub is not None and anomaly_points:
            self._anomaly_pub.publish(anomaly_points)
        self.manager.observe(self._clock, events)
        self.report.intervals += 1
        self.metrics.counter("alerting.intervals").inc()
        self.metrics.histogram("alerting.interval_seconds").observe(
            time.perf_counter() - t0
        )

    def _collect_blocks(
        self, unit_id: int, start_time: int, x: np.ndarray, out: List[SeriesBlock]
    ) -> None:
        """Columnarise one record (one block per sensor column)."""
        utag = ("unit", unit_tag(unit_id))
        ts = range(start_time, start_time + x.shape[0])
        for sensor in range(x.shape[1]):
            out.append(
                SeriesBlock.from_columns(
                    METRIC,
                    (("sensor", sensor_tag(sensor)), utag),
                    ts,
                    x[:, sensor],
                )
            )

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run_fleet(
        self,
        generator: FleetGenerator,
        unit_ids: Optional[Sequence[int]] = None,
        *,
        n_train: int = 300,
        n_eval: int = 300,
        interval: int = 25,
        ctx: Optional[SparkletContext] = None,
    ) -> StreamingDetectionReport:
        """Stream a generated fleet end to end and finalize.

        Convenience wrapper: builds the micro-batch source with
        :func:`fleet_microbatches`, attaches this detector, runs the
        stream to exhaustion, and returns the finalized report.
        """
        sc = ctx if ctx is not None else SparkletContext(parallelism=2)
        ssc = StreamingContext(sc)
        stream = ssc.generator_stream(
            fleet_microbatches(
                generator, unit_ids, n_train=n_train, n_eval=n_eval, interval=interval
            )
        )
        self.attach(stream)
        t0 = time.perf_counter()
        ssc.run()
        self.report.wall_seconds = time.perf_counter() - t0
        return self.finalize()

    def finalize(self) -> StreamingDetectionReport:
        """Flush every publisher channel and seal the report.

        Conservation is enforced per channel by each publisher's own
        ``flush`` — a lost alert or anomaly point raises rather than
        vanishing.
        """
        if self._finalized:
            return self.report
        self._finalized = True
        if self._data_pub is not None:
            self.report.data_publish = self._data_pub.flush()
        if self._anomaly_pub is not None:
            self.report.anomaly_publish = self._anomaly_pub.flush()
        if self.manager.store is not None:
            self.report.alert_publish = self.manager.store.flush()
        self.report.incidents = list(self.manager.incidents)
        return self.report
