"""Discrete-event cluster simulation substrate.

Provides the event loop, machines/servers, network latency model,
failure injection and metrics used to simulate the paper's 32-node
HBase/OpenTSDB ingestion cluster on a single host.
"""

from .failures import OverflowCrashPolicy, RandomCrashInjector
from .metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    TimeSeriesRecorder,
    skew_ratio,
)
from .network import LatencyModel, Network
from .node import Node, Server, ServerStopped
from .simulation import EventHandle, SimulationError, Simulator

__all__ = [
    "Counter",
    "EventHandle",
    "Gauge",
    "LatencyHistogram",
    "LatencyModel",
    "MetricsRegistry",
    "Network",
    "Node",
    "OverflowCrashPolicy",
    "RandomCrashInjector",
    "Server",
    "ServerStopped",
    "SimulationError",
    "Simulator",
    "TimeSeriesRecorder",
    "skew_ratio",
]
