"""Simulated machines and single-threaded service loops.

A :class:`Node` models one cluster machine.  The unit of computation is
the :class:`Server`: a serial service loop with a bounded FIFO queue,
which is exactly the abstraction needed to reproduce the paper's two
systems findings — RegionServer RPC-queue overflow (bounded queue,
rejects) and per-machine service capacity (serial loop with a service
time per request, so a machine saturates at ``1 / service_time``
requests per second).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from ..obs.telemetry import component_registry
from .metrics import MetricsRegistry
from .simulation import Simulator

__all__ = ["Node", "Server", "ServerStopped"]


class ServerStopped(RuntimeError):
    """Raised when work is submitted to a stopped server."""


class Node:
    """A machine in the simulated cluster.

    Nodes are mostly bookkeeping: they own a hostname, an up/down flag
    and the servers running on them.  Capacity lives in the servers.
    """

    def __init__(self, sim: Simulator, hostname: str) -> None:
        self.sim = sim
        self.hostname = hostname
        self.up = True
        self.servers: list["Server"] = []

    def add_server(self, server: "Server") -> None:
        self.servers.append(server)

    def fail(self) -> None:
        """Take the node (and every server on it) down."""
        self.up = False
        for server in self.servers:
            server.stop()

    def restart(self) -> None:
        self.up = True
        for server in self.servers:
            server.start()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "down"
        return f"<Node {self.hostname} {state} servers={len(self.servers)}>"


class Server:
    """Serial service loop with a bounded FIFO queue.

    Jobs are ``(payload, service_time, on_done)`` tuples.  The server
    processes one job at a time; a job submitted while busy waits in the
    queue.  If the queue is full the job is *rejected*: ``submit``
    returns ``False`` and the optional ``on_reject`` callback fires.
    Rejection is the hook the RegionServer uses to model RPC-queue
    overflow (see :mod:`repro.hbase.regionserver`).

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Diagnostic name (also the metrics label).
    queue_capacity:
        Maximum number of queued (not in-service) jobs; ``None`` means
        unbounded.
    metrics:
        Optional shared registry; the server records ``<name>.served``,
        ``<name>.rejected`` and a busy-time counter for utilisation.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        queue_capacity: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if queue_capacity is not None and queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0 or None")
        self.sim = sim
        self.name = name
        self.queue_capacity = queue_capacity
        self.metrics = metrics if metrics is not None else component_registry()
        self._queue: Deque[Tuple[Any, float, Optional[Callable[[Any], None]]]] = deque()
        self._busy = False
        self._stopped = False
        self._busy_since: Optional[float] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop serving.  Queued jobs are dropped (counted as ``dropped``)."""
        self._stopped = True
        dropped = len(self._queue)
        if dropped:
            self.metrics.counter("server.dropped").inc(dropped, label=self.name)
        self._queue.clear()

    def start(self) -> None:
        self._stopped = False

    @property
    def stopped(self) -> bool:
        return self._stopped

    # ------------------------------------------------------------------
    # queueing
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    def submit(
        self,
        payload: Any,
        service_time: float,
        on_done: Optional[Callable[[Any], None]] = None,
        on_reject: Optional[Callable[[Any], None]] = None,
    ) -> bool:
        """Enqueue a job.  Returns True if accepted, False if rejected.

        ``on_done(payload)`` fires when service completes.  A submission
        to a stopped server is rejected (never an exception — the caller
        is a remote client that can only observe failure).
        """
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        if self._stopped:
            self.metrics.counter("server.rejected").inc(label=self.name)
            if on_reject is not None:
                on_reject(payload)
            return False
        if (
            self.queue_capacity is not None
            and self._busy
            and len(self._queue) >= self.queue_capacity
        ):
            self.metrics.counter("server.rejected").inc(label=self.name)
            if on_reject is not None:
                on_reject(payload)
            return False
        self._queue.append((payload, service_time, on_done))
        self._pump()
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self._busy or self._stopped or not self._queue:
            return
        payload, service_time, on_done = self._queue.popleft()
        self._busy = True
        self._busy_since = self.sim.now
        self.sim.schedule(service_time, self._complete, payload, on_done)

    def _complete(self, payload: Any, on_done: Optional[Callable[[Any], None]]) -> None:
        self._busy = False
        if self._busy_since is not None:
            self.metrics.counter("server.busy_time").inc(
                self.sim.now - self._busy_since, label=self.name
            )
            self._busy_since = None
        if self._stopped:
            # The server died mid-service; the in-flight job is lost.
            self.metrics.counter("server.dropped").inc(label=self.name)
            return
        self.metrics.counter("server.served").inc(label=self.name)
        if on_done is not None:
            on_done(payload)
        self._pump()

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` spent busy (current busy period excluded)."""
        if horizon <= 0:
            return 0.0
        return self.metrics.counter("server.busy_time").get(self.name) / horizon

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Server {self.name} depth={self.queue_depth} busy={self._busy}>"
