"""Measurement primitives for simulated components.

Counters, gauges and time-series recorders used by the ingestion
benchmarks.  The Figure 2 (right) reproduction needs cumulative
"samples ingested vs time" curves, which :class:`TimeSeriesRecorder`
captures; per-server skew measurements for the salting ablation use
:class:`Counter` families keyed by label.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "TimeSeriesRecorder",
    "LatencyHistogram",
    "MetricsRegistry",
    "skew_ratio",
]


class Counter:
    """Monotonic counter with optional per-label children."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._children: Dict[str, float] = defaultdict(float)

    def inc(self, amount: float = 1.0, label: str | None = None) -> None:
        if amount < 0:
            raise ValueError("Counter can only increase")
        self.value += amount
        if label is not None:
            self._children[label] += amount

    def get(self, label: str | None = None) -> float:
        if label is None:
            return self.value
        return self._children.get(label, 0.0)

    def labels(self) -> Dict[str, float]:
        """Snapshot of per-label counts."""
        return dict(self._children)


class Gauge:
    """Point-in-time value with max/min watermarks.

    Watermarks read 0.0 until the first ``set()`` — a never-touched
    gauge must not leak ``±inf`` sentinels into reports or the
    self-metric write-back.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._max: float | None = None
        self._min: float | None = None

    @property
    def max_value(self) -> float:
        return 0.0 if self._max is None else self._max

    @property
    def min_value(self) -> float:
        return 0.0 if self._min is None else self._min

    def set(self, value: float) -> None:
        self.value = value
        self._max = value if self._max is None else max(self._max, value)
        self._min = value if self._min is None else min(self._min, value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class TimeSeriesRecorder:
    """Record ``(time, value)`` observations of a quantity over a run.

    Used to capture cumulative-ingested curves (Figure 2 right).  The
    ``resample`` helper turns the irregular event-time observations into
    a regular grid for table/plot output.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("observations must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Tuple[float, float]:
        if not self.times:
            raise IndexError("no observations recorded")
        return self.times[-1], self.values[-1]

    def resample(self, step: float, until: float | None = None) -> List[Tuple[float, float]]:
        """Step-function resampling onto a regular grid of period ``step``.

        Returns ``[(t, v)]`` where ``v`` is the last observation at or
        before ``t`` (0.0 before the first observation).
        """
        if step <= 0:
            raise ValueError("step must be positive")
        if not self.times:
            return []
        end = until if until is not None else self.times[-1]
        out: List[Tuple[float, float]] = []
        idx = 0
        t = 0.0
        current = 0.0
        n = len(self.times)
        while t <= end + 1e-12:
            while idx < n and self.times[idx] <= t + 1e-12:
                current = self.values[idx]
                idx += 1
            out.append((t, current))
            t += step
        return out

    def rate(self) -> float:
        """Average rate of change between the first and last observation."""
        if len(self.times) < 2:
            return 0.0
        dt = self.times[-1] - self.times[0]
        if dt <= 0:
            return 0.0
        return (self.values[-1] - self.values[0]) / dt


class LatencyHistogram:
    """Fixed-boundary latency histogram with summary statistics."""

    DEFAULT_BOUNDS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)

    def __init__(self, name: str, bounds: Sequence[float] | None = None) -> None:
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else self.DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0

    def observe(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.count += 1
        self.total += latency
        self.max_seen = max(self.max_seen, latency)
        for i, b in enumerate(self.bounds):
            if latency <= b:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds.

        Strict accumulation over *occupied* buckets only: empty leading
        buckets never satisfy ``acc >= target`` (with ``q=0`` the old
        code returned ``bounds[0]`` regardless of where observations
        landed), so ``quantile(0.0)`` is the smallest occupied bucket's
        bound and ``quantile(1.0)`` the largest occupied bucket's bound
        (``max_seen`` for the overflow bucket).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        acc = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            acc += n
            if acc >= target:
                return self.bounds[i] if i < len(self.bounds) else self.max_seen
        return self.max_seen


@dataclass
class MetricsRegistry:
    """Namespace of metrics owned by one simulated component tree."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    series: Dict[str, TimeSeriesRecorder] = field(default_factory=dict)
    histograms: Dict[str, LatencyHistogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def timeseries(self, name: str) -> TimeSeriesRecorder:
        if name not in self.series:
            self.series[name] = TimeSeriesRecorder(name)
        return self.series[name]

    def histogram(self, name: str, bounds: Sequence[float] | None = None) -> LatencyHistogram:
        if name not in self.histograms:
            self.histograms[name] = LatencyHistogram(name, bounds)
        return self.histograms[name]


def skew_ratio(per_label_counts: Iterable[float]) -> float:
    """Load-imbalance measure: max / mean of per-label counts.

    1.0 means perfectly balanced; for a single hot shard among ``n``
    shards the ratio approaches ``n``.  Used by the salting ablation
    (E6) to quantify RegionServer write skew.

    Empty input is a caller bug and raises ``ValueError``; all-zero
    counts are a legitimate "no load yet" state and return ``nan``
    (the ratio is genuinely undefined, not an error).
    """
    counts = list(per_label_counts)
    if not counts:
        raise ValueError("skew_ratio of zero labels is undefined")
    mean = sum(counts) / len(counts)
    if mean == 0:
        return float("nan")
    return max(counts) / mean
