"""Network latency model for simulated RPC.

RPCs between simulated components are function calls delivered after a
latency drawn from a simple model: a deterministic base (propagation +
protocol overhead) plus optional exponential jitter.  Local calls
(same hostname) use a much smaller base.

The model is deliberately coarse — the paper's throughput results are
dominated by server-side service capacity, not by the wire — but
having *some* latency matters: it gives in-flight windows a meaning,
which the backpressure proxy (E7) relies on.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from .simulation import EventHandle, Simulator

__all__ = ["Network", "LatencyModel"]


class LatencyModel:
    """Base-plus-jitter one-way latency.

    Parameters
    ----------
    base:
        Deterministic one-way latency in seconds for remote calls.
    jitter:
        Mean of an exponential jitter term added on top (0 disables).
    local_base:
        Latency for same-host calls (loopback).
    """

    def __init__(
        self,
        base: float = 0.0005,
        jitter: float = 0.0,
        local_base: float = 0.00005,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if base < 0 or jitter < 0 or local_base < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base = base
        self.jitter = jitter
        self.local_base = local_base
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def sample(self, src_host: str, dst_host: str) -> float:
        base = self.local_base if src_host == dst_host else self.base
        if self.jitter > 0:
            return base + float(self.rng.exponential(self.jitter))
        return base


class Network:
    """Message-passing fabric: deliver callbacks after modelled latency.

    Components address each other by hostname only for latency purposes;
    delivery is a direct callback invocation.  Partitions can be
    injected for failure testing: messages to/from a partitioned host
    are silently dropped, as on a real network.
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else LatencyModel()
        self._partitioned: set[str] = set()
        self._slowdowns: dict[str, float] = {}
        self.messages_sent = 0
        self.messages_dropped = 0

    def partition(self, host: str) -> None:
        """Cut a host off from the network."""
        self._partitioned.add(host)

    def heal(self, host: str) -> None:
        """Restore a partitioned host."""
        self._partitioned.discard(host)

    def is_partitioned(self, host: str) -> bool:
        return host in self._partitioned

    # ------------------------------------------------------------------
    # degraded links (chaos: latency inflation without full partition)
    # ------------------------------------------------------------------
    def slow_host(self, host: str, factor: float) -> None:
        """Inflate latency on every link touching ``host`` by ``factor``."""
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        self._slowdowns[host] = factor

    def restore_host(self, host: str) -> None:
        """Remove a latency inflation previously set by :meth:`slow_host`."""
        self._slowdowns.pop(host, None)

    def slowdown(self, host: str) -> float:
        """Current latency multiplier for ``host`` (1.0 when healthy)."""
        return self._slowdowns.get(host, 1.0)

    def send(
        self,
        src_host: str,
        dst_host: str,
        callback: Callable[..., Any],
        *args: Any,
    ) -> Optional[EventHandle]:
        """Deliver ``callback(*args)`` at the destination after latency.

        Returns the event handle, or ``None`` if the message was dropped
        because either endpoint is partitioned.
        """
        if src_host in self._partitioned or dst_host in self._partitioned:
            self.messages_dropped += 1
            return None
        self.messages_sent += 1
        delay = self.latency.sample(src_host, dst_host)
        if self._slowdowns:
            delay *= max(self.slowdown(src_host), self.slowdown(dst_host))
        return self.sim.schedule(delay, callback, *args)
