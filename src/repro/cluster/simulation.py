"""Discrete-event simulation kernel.

This module provides the event loop that underpins the simulated
HBase/OpenTSDB cluster (:mod:`repro.hbase`, :mod:`repro.tsdb`).  The
paper's ingestion results (Figure 2) are *systems* effects — service
capacity, queueing, key-range routing — so the substrate is a classic
calendar-queue discrete-event simulator: a heap of timestamped events,
each a plain Python callback.

Design notes
------------
* Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
  increasing tie-breaker, so simultaneous events fire in scheduling
  order and runs are deterministic.
* Cancellation is *lazy*: :meth:`EventHandle.cancel` marks the handle
  and the main loop skips cancelled entries when they surface.  This
  keeps ``schedule`` / ``cancel`` at ``O(log n)`` / ``O(1)``.
* There is no implicit wall-clock coupling; simulated time is a float
  in seconds and advances only through the event heap.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Entry:
    """Internal heap entry; ordering is by (time, seq) only."""

    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled event that may be cancelled before it fires.

    Instances are returned by :meth:`Simulator.schedule`.  ``callback``
    is invoked with ``*args`` when simulated time reaches ``time``
    unless :meth:`cancel` was called first.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; a no-op if already fired."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled/fired."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.time:.6f} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(1.0, seen.append, "a")
    >>> _ = sim.schedule(0.5, seen.append, "b")
    >>> sim.run()
    >>> seen
    ['b', 'a']
    >>> sim.now
    1.0
    """

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after the
        current event completes, in scheduling order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, before current time t={self._now!r}"
            )
        handle = EventHandle(time, callback, args)
        heapq.heappush(self._heap, _Entry(time, next(self._seq), handle))
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the heap is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            handle = entry.handle
            if handle.cancelled:
                continue
            self._now = entry.time
            handle.fired = True
            handle.callback(*handle.args)
            self.events_processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` on return even if the last event fired earlier, so
        rate computations over a fixed horizon are well defined.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    return
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if self.step():
                    fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def _peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, discarding cancelled heads."""
        while self._heap:
            head = self._heap[0]
            if head.handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return head.time
        return None

    @property
    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for e in self._heap if not e.handle.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} pending={self.pending_events}>"
