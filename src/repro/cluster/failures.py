"""Failure-injection policies for simulated components.

The paper reports that RegionServers "frequently crashed due to
overloaded RPC queues" until a buffering reverse proxy added
backpressure.  :class:`OverflowCrashPolicy` models exactly that
mechanism: a component that sheds load too often within a window is
declared crashed and (optionally) restarts after a recovery delay.
:class:`RandomCrashInjector` provides unrelated background failures for
robustness tests.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

import numpy as np

from .simulation import Simulator

__all__ = ["OverflowCrashPolicy", "RandomCrashInjector"]


class OverflowCrashPolicy:
    """Crash a component when queue-overflow rejections exceed a budget.

    A real RegionServer under sustained RPC-queue overflow exhausts
    heap/handlers and aborts.  We model this as: if more than
    ``reject_budget`` rejections occur within any ``window`` seconds,
    ``on_crash`` fires; ``on_restart`` fires ``restart_delay`` seconds
    later (if set).  Rejections while crashed are not counted.

    Parameters
    ----------
    sim: owning simulator.
    reject_budget: rejections tolerated per window before crashing.
    window: sliding window length in seconds.
    restart_delay: seconds until automatic restart; ``None`` = stay down.
    """

    def __init__(
        self,
        sim: Simulator,
        on_crash: Callable[[], None],
        on_restart: Optional[Callable[[], None]] = None,
        reject_budget: int = 100,
        window: float = 1.0,
        restart_delay: Optional[float] = 10.0,
    ) -> None:
        if reject_budget < 1:
            raise ValueError("reject_budget must be >= 1")
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.on_crash = on_crash
        self.on_restart = on_restart
        self.reject_budget = reject_budget
        self.window = window
        self.restart_delay = restart_delay
        self._reject_times: Deque[float] = deque()
        self.crashed = False
        self.crash_count = 0

    def record_rejection(self) -> bool:
        """Note one overflow rejection.  Returns True if this crashed the component."""
        if self.crashed:
            return False
        now = self.sim.now
        self._reject_times.append(now)
        cutoff = now - self.window
        while self._reject_times and self._reject_times[0] < cutoff:
            self._reject_times.popleft()
        if len(self._reject_times) > self.reject_budget:
            self._crash()
            return True
        return False

    def _crash(self) -> None:
        self.crashed = True
        self.crash_count += 1
        self._reject_times.clear()
        self.on_crash()
        if self.restart_delay is not None:
            self.sim.schedule(self.restart_delay, self._restart)

    def _restart(self) -> None:
        self.crashed = False
        if self.on_restart is not None:
            self.on_restart()


class RandomCrashInjector:
    """Poisson-process crash injector for robustness testing.

    Schedules crashes with exponential inter-arrival times (mean
    ``mtbf`` seconds) on a target, restarting after ``mttr`` seconds.
    Deterministic given the seed.
    """

    def __init__(
        self,
        sim: Simulator,
        crash: Callable[[], None],
        restart: Callable[[], None],
        mtbf: float,
        mttr: float,
        seed: int = 0,
    ) -> None:
        if mtbf <= 0 or mttr < 0:
            raise ValueError("mtbf must be positive and mttr non-negative")
        self.sim = sim
        self.crash = crash
        self.restart = restart
        self.mtbf = mtbf
        self.mttr = mttr
        self.rng = np.random.default_rng(seed)
        self.injected = 0
        self._armed = False

    def arm(self) -> None:
        """Start injecting failures."""
        if self._armed:
            return
        self._armed = True
        self._schedule_next()

    def disarm(self) -> None:
        self._armed = False

    def _schedule_next(self) -> None:
        delay = float(self.rng.exponential(self.mtbf))
        self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if not self._armed:
            return
        self.injected += 1
        self.crash()
        self.sim.schedule(self.mttr, self._recover)

    def _recover(self) -> None:
        self.restart()
        if self._armed:
            self._schedule_next()
