"""Unified observability layer: telemetry trees, tracing, self-reporting.

Three pieces, mirroring how the paper's platform is operated through
its own store and dashboard:

* :mod:`repro.obs.telemetry` — the process-wide :class:`Telemetry`
  facade owning one metrics registry per component tree, replacing the
  scattered per-module ``MetricsRegistry()`` defaults.
* :mod:`repro.obs.trace` — span-based tracing with parent/child links
  and batch-id correlation across the proxy → TSD → HBase →
  RegionServer ingest path; zero-cost when disabled.
* :mod:`repro.obs.selfreport` — the :class:`SelfReporter` that flushes
  telemetry snapshots back into the simulated OpenTSDB as queryable
  ``{component}.{metric}`` self-metric series.
"""

from .telemetry import (
    DEFAULT_ROUTES,
    MetricSample,
    ScopedRegistry,
    Telemetry,
    component_registry,
)
from .trace import NULL_SPAN, NullSpan, Span, SpanRecord, Tracer
from .selfreport import SelfReporter

__all__ = [
    "DEFAULT_ROUTES",
    "MetricSample",
    "NULL_SPAN",
    "NullSpan",
    "ScopedRegistry",
    "SelfReporter",
    "Span",
    "SpanRecord",
    "Telemetry",
    "Tracer",
    "component_registry",
]
