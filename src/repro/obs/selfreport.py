"""Self-telemetry write-back: the platform monitors itself.

OpenTSDB famously ingests its own ``tsd.*`` self-metrics, and the
paper's control-center is a pure read-side consumer of the same store
it monitors.  :class:`SelfReporter` reproduces that loop: it
periodically snapshots one or more :class:`~repro.obs.telemetry.Telemetry`
trees into the simulated TSDB as ``{component}.{metric}`` series tagged
``host=<component-or-label>``, so platform health (``proxy.ack_latency.p99``,
``tsd.batches_rejected``, ``engine.units_scored``, …) is queryable
through the very :class:`~repro.tsdb.query.QueryEngine` the dashboard
uses for fleet data.

Chaos integration: when constructed with a
:class:`~repro.chaos.report.ChaosReport`, each flush also emits
``chaos.components_down`` (gauge of currently open outages) and a
``chaos.down`` 0/1 edge series per component via
:meth:`write_chaos_windows`, so injected-fault windows line up with the
self-metric dips they cause.

Writes go through :meth:`~repro.tsdb.ingest.TsdbCluster.direct_put`
(the sanctioned offline write-back path) so self-reporting never
competes with the ingest workload under study.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..chaos.report import ChaosReport
    from ..tsdb.ingest import TsdbCluster
    from ..tsdb.tsd import DataPoint

__all__ = ["SelfReporter"]


def _datapoint(name: str, ts: int, value: float, host: str) -> "DataPoint":
    # Imported lazily: the TSD module itself imports ``repro.obs`` for
    # its registry/tracer defaults, so a module-level import here would
    # close an import cycle through the ``repro.obs`` package init.
    from ..tsdb.tsd import DataPoint

    return DataPoint(name, ts, value, (("host", host),))


class SelfReporter:
    """Periodically flush telemetry snapshots back into the TSDB."""

    def __init__(
        self,
        cluster: "TsdbCluster",
        telemetry: Optional[Telemetry] = None,
        extra: Sequence[Telemetry] = (),
        interval: float = 0.25,
        chaos_report: Optional["ChaosReport"] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.cluster = cluster
        primary = telemetry if telemetry is not None else cluster.telemetry
        self.telemetries: List[Telemetry] = [primary, *extra]
        self.interval = interval
        self.chaos_report = chaos_report
        self.flushes = 0
        self.points_written = 0
        self._running = False
        self._handle: Optional[object] = None
        self._last_ts = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic flushing on the cluster's simulator clock."""
        if self._running:
            return
        self._running = True
        self._handle = self.cluster.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Stop the periodic flush (a final explicit flush is still fine)."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()  # type: ignore[attr-defined]
            self._handle = None

    def _tick(self) -> None:
        self._handle = None
        if not self._running:
            return
        self.flush()
        self._handle = self.cluster.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    # write-back
    # ------------------------------------------------------------------
    def _next_ts(self) -> int:
        """A strictly monotonic integer timestamp on the sim clock.

        TSDB points are keyed at second granularity; flushes inside the
        same sim-second must not overwrite each other, so the reporter
        enforces ``ts > last`` even when ``sim.now`` has not advanced a
        full second.
        """
        ts = max(int(self.cluster.sim.now), self._last_ts + 1)
        self._last_ts = ts
        return ts

    def flush(self) -> int:
        """Write one snapshot of every telemetry tree; returns points written."""
        ts = self._next_ts()
        points: List["DataPoint"] = []
        for telemetry in self.telemetries:
            for sample in telemetry.samples():
                points.append(_datapoint(sample.name, ts, sample.value, sample.host))
        points.extend(self._chaos_points(ts))
        written = self.cluster.direct_put(points) if points else 0
        self.flushes += 1
        self.points_written += written
        return written

    def _chaos_points(self, ts: int) -> List["DataPoint"]:
        report = self.chaos_report
        if report is None:
            return []
        down = report.still_down()
        points = [_datapoint("chaos.components_down", ts, float(len(down)), "chaos")]
        for component in down:
            points.append(_datapoint("chaos.down", ts, 1.0, component))
        return points

    def write_chaos_windows(self, report: Optional["ChaosReport"] = None) -> int:
        """Write ``chaos.down`` 0/1 edge series for every fault window.

        Call after the run (post :meth:`ChaosReport.close`) so the
        dashboard and queries can overlay exact outage windows on the
        self-metrics.  Returns points written.
        """
        report = report if report is not None else self.chaos_report
        if report is None:
            return 0
        points: List["DataPoint"] = []
        for at, component, state in report.edges(now=self.cluster.sim.now):
            points.append(
                _datapoint("chaos.down", self._edge_ts(at), float(state), component)
            )
        written = self.cluster.direct_put(points) if points else 0
        self.points_written += written
        return written

    def _edge_ts(self, at: float) -> int:
        ts = max(int(at), self._last_ts + 1)
        self._last_ts = ts
        return ts

    def series_written(self) -> Tuple[str, ...]:
        """Distinct self-metric names available for querying, sorted."""
        names = set()
        for telemetry in self.telemetries:
            for sample in telemetry.samples():
                names.add(sample.name)
        if self.chaos_report is not None:
            names.update({"chaos.components_down", "chaos.down"})
        return tuple(sorted(names))
